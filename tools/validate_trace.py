#!/usr/bin/env python3
"""Validate a trace file written by `apls --trace` / `apls serve --trace`.

Accepts both formats the telemetry layer emits:

* JSON-lines (`.jsonl`): one Chrome `trace_event` object per line;
* a Chrome trace document (`.json`): `{"traceEvents": [...], ...}`.

Each event must carry the fields the Chrome trace viewer and `apls trace`
rely on: `name`/`cat` strings, a known `ph` phase, integer `ts`/`pid`/`tid`,
`dur` exactly on complete (`X`) events, and an object `args` when present.
Exits non-zero (with one message per defect) on any violation, so CI can gate
on "the instrumented run produced a well-formed trace".

Usage: validate_trace.py <trace-file> [--min-events N]
"""

import json
import sys

KNOWN_PHASES = {"X", "i", "C"}


def check_event(event, where, errors):
    if not isinstance(event, dict):
        errors.append(f"{where}: event is not a JSON object")
        return
    for key in ("name", "cat"):
        if not isinstance(event.get(key), str):
            errors.append(f"{where}: missing or non-string '{key}'")
    ph = event.get("ph")
    if ph not in KNOWN_PHASES:
        errors.append(f"{where}: unknown phase {ph!r} (expected one of {sorted(KNOWN_PHASES)})")
    for key in ("ts", "pid", "tid"):
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(f"{where}: missing or invalid '{key}' ({value!r})")
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, int) or isinstance(dur, bool) or dur < 0:
            errors.append(f"{where}: complete event needs an integer 'dur' ({dur!r})")
    elif "dur" in event:
        errors.append(f"{where}: only complete events may carry 'dur'")
    if "args" in event and not isinstance(event["args"], dict):
        errors.append(f"{where}: 'args' must be an object")


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    min_events = 1
    if "--min-events" in sys.argv:
        min_events = int(sys.argv[sys.argv.index("--min-events") + 1])

    text = open(path, encoding="utf-8").read()
    errors = []
    events = 0

    stripped = text.strip()
    if stripped.startswith("{") and "\n" not in stripped:
        # one line: either a Chrome document or a single-event JSONL file
        try:
            doc = json.loads(stripped)
        except json.JSONDecodeError as err:
            print(f"{path}: not valid JSON: {err}", file=sys.stderr)
            return 1
        if "traceEvents" in doc:
            trace_events = doc["traceEvents"]
            if not isinstance(trace_events, list):
                print(f"{path}: 'traceEvents' is not an array", file=sys.stderr)
                return 1
            for i, event in enumerate(trace_events):
                check_event(event, f"{path}: traceEvents[{i}]", errors)
                events += 1
        else:
            check_event(doc, f"{path}:1", errors)
            events += 1
    else:
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as err:
                errors.append(f"{path}:{lineno}: not valid JSON: {err}")
                continue
            check_event(event, f"{path}:{lineno}", errors)
            events += 1

    for message in errors:
        print(message, file=sys.stderr)
    if events < min_events:
        print(f"{path}: {events} event(s), expected at least {min_events}", file=sys.stderr)
        return 1
    if errors:
        return 1
    print(f"{path}: {events} well-formed trace event(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
