#!/usr/bin/env python3
"""Validate a Prometheus text-format exposition scraped from `/metrics`.

Checks the contract the sidecar promises scrapers (DESIGN.md §14):

* every sample line parses as `name[{labels}] value` with a float value;
* every sample's metric family carries a `# TYPE` declaration, and sample
  names match the declared kind (`_bucket`/`_sum`/`_count` only under a
  histogram family);
* histogram buckets appear in strictly increasing `le` order, end with the
  `le="+Inf"` bucket, have non-decreasing cumulative counts, and the `+Inf`
  bucket equals the family's `_count` sample;
* required families for an `apls` scrape are present (`--require` may extend
  the list with family names or histogram sample names like `foo_ms_bucket`;
  pass `--prefix` to validate a differently-prefixed exposition).

Exits non-zero with one message per defect, so CI can gate on "the metrics
endpoint serves a well-formed exposition".

Usage: validate_metrics.py <metrics-file> [--prefix apls_] [--require NAME ...]
"""

import math
import re
import sys

SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')
KNOWN_TYPES = {"counter", "gauge", "histogram"}


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def family_of(name, types):
    """Maps a sample name to its declared family (stripping histogram suffixes)."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        base = name.removesuffix(suffix)
        if base != name and types.get(base) == "histogram":
            return base
    return None


def main() -> int:
    args = sys.argv[1:]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = args[0]
    prefix = "apls_"
    required = []
    if "--prefix" in args:
        prefix = args[args.index("--prefix") + 1]
    if "--require" in args:
        required = args[args.index("--require") + 1 :]

    errors = []
    types = {}
    # histogram family -> list of (le, cumulative count); other family -> sample count
    buckets = {}
    counts = {}
    samples = 0

    lines = open(path, encoding="utf-8").read().splitlines()
    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"{where}: malformed TYPE line: {line!r}")
                    continue
                name, kind = parts[2], parts[3]
                if kind not in KNOWN_TYPES:
                    errors.append(f"{where}: unknown metric type {kind!r}")
                if name in types:
                    errors.append(f"{where}: duplicate TYPE declaration for {name}")
                types[name] = kind
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"{where}: unparseable sample line: {line!r}")
            continue
        samples += 1
        name, labels_text, value_text = match.groups()
        value = parse_value(value_text)
        if value is None:
            errors.append(f"{where}: non-float sample value {value_text!r}")
            continue
        family = family_of(name, types)
        if family is None:
            errors.append(f"{where}: sample {name} has no TYPE declaration")
            continue
        labels = dict(LABEL_RE.findall(labels_text or ""))
        if name == f"{family}_bucket":
            le = labels.get("le")
            if le is None:
                errors.append(f"{where}: histogram bucket without an 'le' label")
                continue
            bound = parse_value(le)
            if bound is None or math.isnan(bound):
                errors.append(f"{where}: bucket has unparseable le={le!r}")
                continue
            buckets.setdefault(family, []).append((where, bound, value))
        elif name == f"{family}_count":
            counts[family] = (where, value)

    for family, rows in sorted(buckets.items()):
        bounds = [bound for _, bound, _ in rows]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            errors.append(f"{family}: bucket le bounds are not strictly increasing: {bounds}")
        if not bounds or not math.isinf(bounds[-1]):
            errors.append(f"{family}: bucket list does not end with le=\"+Inf\"")
        cumulative = [count for _, _, count in rows]
        if any(b < a for a, b in zip(cumulative, cumulative[1:])):
            errors.append(f"{family}: cumulative bucket counts decrease: {cumulative}")
        if family in counts and cumulative and cumulative[-1] != counts[family][1]:
            errors.append(
                f"{family}: +Inf bucket ({cumulative[-1]}) disagrees with "
                f"{family}_count ({counts[family][1]})"
            )
        if family not in counts:
            errors.append(f"{family}: histogram family is missing its _count sample")

    for name in [f"{prefix}requests_total", f"{prefix}build_info", f"{prefix}uptime_seconds"]:
        if name not in types:
            errors.append(f"{path}: required family {name} is absent")
    for name in required:
        if family_of(name, types) is None:
            errors.append(f"{path}: required family {name} is absent")

    if samples == 0:
        errors.append(f"{path}: exposition contains no samples")
    if errors:
        for message in errors:
            print(f"error: {message}", file=sys.stderr)
        return 1
    histograms = sum(1 for kind in types.values() if kind == "histogram")
    print(f"{path}: {samples} samples across {len(types)} families ({histograms} histograms) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
