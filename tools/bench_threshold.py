#!/usr/bin/env python3
"""Fail if the seqpair hot-path bench regressed vs the recorded trajectory.

Reads the latest run in BENCH_hotpath.json (the file every evaluation-pipeline
PR appends a run to), re-reads a fresh `cargo bench` log, and exits non-zero
if `engine_moves/seqpair_2000/10` is more than THRESHOLD slower than the
checked-in number. Criterion noise on shared CI runners is real (±15% is
common), so the gate is deliberately loose: it catches "someone re-introduced
a clone per move", not single-digit drift.

Usage: bench_threshold.py <bench-log-file> [bench-json] [threshold] [bench-name]

`bench-name` defaults to the seqpair hot path; pass e.g.
`service_cache_hit/round_trip` with BENCH_service.json to gate the service's
cache-hit round trip instead.
"""

import json
import re
import sys

BENCH_NAME = "engine_moves/seqpair_2000/10"
SCALE = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}


def main() -> int:
    log_path = sys.argv[1]
    json_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_hotpath.json"
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 1.25
    bench_name = sys.argv[4] if len(sys.argv) > 4 else BENCH_NAME

    runs = json.load(open(json_path))["runs"]
    recorded = runs[-1]["results"][bench_name]

    text = open(log_path, encoding="utf-8").read()
    m = re.search(
        re.escape(bench_name) + r":\s*([0-9.]+)\s*(ns|µs|us|ms|s)/iter", text
    )
    if not m:
        print(f"error: no '{bench_name}' line in {log_path}", file=sys.stderr)
        return 2
    measured = float(m.group(1)) * SCALE[m.group(2)]

    limit = recorded * threshold
    verdict = "OK" if measured <= limit else "REGRESSION"
    print(
        f"{bench_name}: measured {measured:.0f} ns/iter, "
        f"recorded {recorded} ns/iter, limit {limit:.0f} ({threshold:.2f}x) -> {verdict}"
    )
    return 0 if measured <= limit else 1


if __name__ == "__main__":
    sys.exit(main())
