//! Cross-crate integration tests: every engine, every benchmark circuit,
//! exercised through the public facade.

use analog_layout_synthesis::circuit::benchmarks;
use analog_layout_synthesis::layoutaware::model::Specs;
use analog_layout_synthesis::layoutaware::sizing::{SizingConfig, SizingMode, SizingOptimizer};
use analog_layout_synthesis::shapefn::{DeterministicPlacer, ShapeModel};
use analog_layout_synthesis::{AnalogPlacer, Engine};

#[test]
fn all_engines_place_the_quickstart_circuit_legally() {
    let circuit = benchmarks::miller_opamp_fig6();
    for engine in [Engine::SequencePair, Engine::HbTree, Engine::Deterministic] {
        let report =
            AnalogPlacer::new(engine).with_seed(123).with_fast_schedule(true).place(&circuit);
        assert!(report.placement.is_complete(), "{engine:?}");
        assert_eq!(report.metrics.overlap_area, 0, "{engine:?}");
        assert!(report.metrics.area_usage >= 1.0, "{engine:?}");
    }
}

#[test]
fn constraint_aware_engines_hold_symmetry_on_every_table1_circuit() {
    // the two annealing engines must keep symmetry groups exact on all six
    // benchmark circuits (fast schedules keep the test quick)
    for circuit in benchmarks::table1_circuits() {
        for engine in [Engine::SequencePair, Engine::HbTree] {
            let report =
                AnalogPlacer::new(engine).with_seed(5).with_fast_schedule(true).place(&circuit);
            assert_eq!(report.metrics.overlap_area, 0, "{engine:?} on {}", circuit.name);
            assert!(
                report.constraints.symmetry_satisfied,
                "{engine:?} breaks symmetry on {} (error {})",
                circuit.name, report.constraints.symmetry_error
            );
        }
    }
}

#[test]
fn deterministic_placer_is_legal_on_every_table1_circuit() {
    for circuit in benchmarks::table1_circuits() {
        let report = AnalogPlacer::new(Engine::Deterministic).place(&circuit);
        assert!(report.placement.is_complete(), "{}", circuit.name);
        assert_eq!(report.metrics.overlap_area, 0, "{}", circuit.name);
    }
}

#[test]
fn enhanced_shape_functions_beat_regular_ones_on_the_larger_circuits() {
    // the Table I trend: the ESF advantage exists and tends to grow with size;
    // here we assert the weaker, robust form (never worse, strictly better on
    // at least one of the larger circuits)
    let mut strictly_better = 0;
    for circuit in [benchmarks::folded_cascode(), benchmarks::buffer()] {
        let placer = DeterministicPlacer::new(&circuit);
        let esf = placer.run(ShapeModel::Enhanced);
        let rsf = placer.run(ShapeModel::Regular);
        assert!(
            esf.area_usage <= rsf.area_usage + 1e-9,
            "{}: ESF {} worse than RSF {}",
            circuit.name,
            esf.area_usage,
            rsf.area_usage
        );
        if esf.area_usage < rsf.area_usage - 1e-9 {
            strictly_better += 1;
        }
    }
    assert!(strictly_better >= 1, "ESF never strictly improved over RSF");
}

#[test]
fn layout_aware_sizing_closes_the_spec_gap_left_by_electrical_sizing() {
    let optimizer = SizingOptimizer::new(Specs::default());
    let electrical = optimizer.run(&SizingConfig {
        mode: SizingMode::ElectricalOnly,
        iterations: 800,
        seed: 17,
    });
    let aware =
        optimizer.run(&SizingConfig { mode: SizingMode::LayoutAware, iterations: 800, seed: 17 });
    // the electrical flow believes it meets the specs...
    assert!(electrical.specs_met_pre_layout);
    // ...and is degraded once its layout's parasitics are included
    assert!(electrical.post_layout.gbw_hz < electrical.pre_layout.gbw_hz);
    // the layout-aware flow meets the specs with the parasitics included
    assert!(aware.specs_met_post_layout);
    // and its layout is more compact (closer to square), as in Fig. 10
    assert!(aware.layout.aspect_ratio() < electrical.layout.aspect_ratio());
}

#[test]
fn search_space_numbers_match_the_paper() {
    use analog_layout_synthesis::btree::counting::btree_count;
    use analog_layout_synthesis::seqpair::counting::{sf_upper_bound, total_sequence_pairs};
    assert_eq!(total_sequence_pairs(7) as u64, 25_401_600);
    assert_eq!(sf_upper_bound(7, &[(2, 2)]).round() as u64, 35_280);
    assert_eq!(btree_count(8), Some(57_657_600));
}
