//! Integration tests of the multi-start portfolio through the public facade:
//! thread-count independence and the best-of-portfolio guarantee.

use analog_layout_synthesis::circuit::benchmarks;
use analog_layout_synthesis::portfolio::stats::placement_cost;
use analog_layout_synthesis::portfolio::{run_portfolio, PortfolioConfig};
use analog_layout_synthesis::{AnalogPlacer, Engine};

/// The acceptance bar of the portfolio subsystem: the same root seed yields
/// an identical report whether the pool has 1 worker thread or several.
#[test]
fn portfolio_reports_are_identical_across_thread_counts() {
    let circuit = benchmarks::miller_opamp_fig6();
    let base = PortfolioConfig::new(1234).with_restarts(4).with_fast_schedule(true);
    let single = run_portfolio(&circuit, &base.clone().with_threads(1));
    let parallel = run_portfolio(&circuit, &base.with_threads(8));

    assert_eq!(single.best_cost(), parallel.best_cost());
    assert_eq!(single.best_index, parallel.best_index);
    assert_eq!(single.best().placement, parallel.best().placement);
    assert_eq!(single.restarts.len(), parallel.restarts.len());
    for (a, b) in single.restarts.iter().zip(&parallel.restarts) {
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.restart, b.restart);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.placement, b.placement);
    }
    assert_eq!(single.histogram, parallel.histogram);
}

/// Best-of-portfolio can never lose to the best single-engine run with the
/// same seed and settings, on any bundled benchmark circuit.
#[test]
fn portfolio_beats_or_matches_single_engines_on_every_bundled_circuit() {
    let weight = 0.5;
    for name in benchmarks::names() {
        let circuit = benchmarks::by_name(name).expect("bundled name resolves");
        let portfolio = AnalogPlacer::new(Engine::HbTree)
            .with_seed(7)
            .with_fast_schedule(true)
            .place_portfolio(&circuit, 2);
        let best_single = [Engine::SequencePair, Engine::HbTree, Engine::Deterministic]
            .into_iter()
            .map(|engine| {
                let report =
                    AnalogPlacer::new(engine).with_seed(7).with_fast_schedule(true).place(&circuit);
                placement_cost(&report.metrics, weight)
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            portfolio.best_cost() <= best_single + 1e-9,
            "portfolio lost on {name}: {} vs {best_single}",
            portfolio.best_cost(),
        );
        assert!(portfolio.best().placement.is_complete(), "{name}");
        assert_eq!(portfolio.best().metrics.overlap_area, 0, "{name}");
    }
}

/// The facade's portfolio entry point honours the builder settings and wires
/// the circuit name through to the report.
#[test]
fn facade_portfolio_report_carries_builder_settings() {
    let circuit = benchmarks::comparator_v2();
    let report = AnalogPlacer::new(Engine::SequencePair)
        .with_seed(99)
        .with_fast_schedule(true)
        .place_portfolio(&circuit, 3);
    assert_eq!(report.root_seed, 99);
    assert_eq!(report.restarts_scheduled, 3);
    assert_eq!(report.circuit_name, "comparator_v2");
    // 3 restarts for each of the four stochastic engines + 1 deterministic
    assert_eq!(report.restarts.len(), 13);
    // restart 0 of each engine reuses the root seed verbatim
    assert!(report.restarts.iter().filter(|r| r.restart == 0).all(|r| r.seed == 99));
}
