//! Pinned-seed equivalence of the zero-allocation hot path.
//!
//! The annealing evaluation pipeline was rearchitected (single evaluation per
//! proposal, undo-log rollback, scratch-buffer packing, CSR wirelength); the
//! refactor must not change a single trajectory. These tests re-implement the
//! *pre-refactor* evaluator — clone-per-move backup, full `Placement::metrics`
//! per evaluation, re-evaluating `commit` — drive it with the exact RNG
//! discipline of the old driver, and assert that every engine produces a
//! placement identical to the reference on every named benchmark circuit.

use analog_layout_synthesis::anneal::rng::SeededRng;
use analog_layout_synthesis::anneal::Schedule;
use analog_layout_synthesis::btree::{
    pack_btree, BStarTree, BTreePlacer, HbTree, HbTreePlacer, HbTreePlacerConfig,
};
use analog_layout_synthesis::circuit::benchmarks;
use analog_layout_synthesis::circuit::{ModuleId, Netlist, Placement};
use analog_layout_synthesis::geometry::Orientation;
use analog_layout_synthesis::seqpair::place::SymmetricPlacer;
use analog_layout_synthesis::seqpair::symmetry::{canonical_symmetric_feasible, SymmetricMoveSet};
use analog_layout_synthesis::seqpair::{SeqPairPlacer, SeqPairPlacerConfig, SequencePair};
use rand::Rng;

const SEED: u64 = 0xC0FFEE;
const WIRELENGTH_WEIGHT: f64 = 0.5;

/// The pre-refactor `AnnealState` shape: `cost` on `&self`, clone-based
/// rollback, and a `commit` that re-evaluates from scratch.
trait RefState {
    fn cost(&self) -> f64;
    fn propose(&mut self, rng: &mut SeededRng);
    fn rollback(&mut self);
    fn commit(&mut self);
}

/// The pre-refactor annealing loop: identical Metropolis discipline and RNG
/// consumption to `Annealer::run`, with the old double-evaluating protocol.
fn reference_anneal<S: RefState>(seed: u64, state: &mut S, schedule: &Schedule) {
    let mut rng = SeededRng::new(seed);
    let mut current = state.cost();
    let mut temperature = schedule.t_start();
    let mut attempted = 0u64;
    'outer: while temperature >= schedule.t_end() {
        for _ in 0..schedule.moves_per_step() {
            if let Some(cap) = schedule.max_moves() {
                if attempted >= cap {
                    break 'outer;
                }
            }
            attempted += 1;
            state.propose(&mut rng);
            let new_cost = state.cost();
            let delta = new_cost - current;
            let accept =
                if delta <= 0.0 { true } else { rng.gen::<f64>() < (-delta / temperature).exp() };
            if accept {
                current = new_cost;
                state.commit();
            } else {
                state.rollback();
            }
        }
        temperature *= schedule.alpha();
    }
}

/// A schedule sized so the whole matrix (3 engines × 7 circuits × 2 runs)
/// stays fast while still exercising thousands of accept/reject decisions.
fn schedule_for(module_count: usize) -> Schedule {
    let moves = if module_count > 40 { 120 } else { 400 };
    Schedule::geometric(1e6, 1.0, 0.92, 50).with_max_moves(moves)
}

// --- flat B*-tree reference ------------------------------------------------

fn old_flat_placement(netlist: &Netlist, tree: &BStarTree) -> Placement {
    let packed = pack_btree(tree, &netlist.default_dims());
    let mut placement = Placement::new(netlist);
    for &(m, r) in packed.rects() {
        let orientation = if tree.is_rotated(m) { Orientation::R90 } else { Orientation::R0 };
        placement.place(m, r, orientation, 0);
    }
    placement
}

struct RefFlat<'a> {
    tree: BStarTree,
    backup: Option<BStarTree>,
    best: Option<(BStarTree, f64)>,
    netlist: &'a Netlist,
    rotatable: Vec<bool>,
}

impl RefFlat<'_> {
    fn evaluate(&self, tree: &BStarTree) -> f64 {
        let metrics = old_flat_placement(self.netlist, tree).metrics(self.netlist);
        metrics.bounding_area as f64 + WIRELENGTH_WEIGHT * metrics.wirelength
    }
}

impl RefState for RefFlat<'_> {
    fn cost(&self) -> f64 {
        self.evaluate(&self.tree)
    }
    fn propose(&mut self, rng: &mut SeededRng) {
        self.backup = Some(self.tree.clone());
        let rotatable = self.rotatable.clone();
        self.tree.perturb(rng, |m| rotatable[m.index()]);
    }
    fn rollback(&mut self) {
        if let Some(prev) = self.backup.take() {
            self.tree = prev;
        }
    }
    fn commit(&mut self) {
        let cost = self.evaluate(&self.tree);
        if self.best.as_ref().is_none_or(|(_, c)| cost < *c) {
            self.best = Some((self.tree.clone(), cost));
        }
    }
}

// --- HB*-tree reference ----------------------------------------------------

struct RefHb<'a> {
    tree: HbTree,
    backup: Option<HbTree>,
    best: Option<(HbTree, f64)>,
    netlist: &'a Netlist,
}

impl RefHb<'_> {
    fn evaluate(&self, tree: &HbTree) -> f64 {
        let metrics = tree.pack().metrics(self.netlist);
        metrics.bounding_area as f64 + WIRELENGTH_WEIGHT * metrics.wirelength
    }
}

impl RefState for RefHb<'_> {
    fn cost(&self) -> f64 {
        self.evaluate(&self.tree)
    }
    fn propose(&mut self, rng: &mut SeededRng) {
        self.backup = Some(self.tree.clone());
        self.tree.perturb(rng);
    }
    fn rollback(&mut self) {
        if let Some(prev) = self.backup.take() {
            self.tree = prev;
        }
    }
    fn commit(&mut self) {
        let cost = self.evaluate(&self.tree);
        if self.best.as_ref().is_none_or(|(_, c)| cost < *c) {
            self.best = Some((self.tree.clone(), cost));
        }
    }
}

// --- sequence-pair reference (exact symmetry mode) -------------------------

struct RefSp<'a> {
    sp: SequencePair,
    backup: Option<SequencePair>,
    best: Option<(SequencePair, f64)>,
    placer: SymmetricPlacer<'a>,
    netlist: &'a Netlist,
    moves: SymmetricMoveSet,
}

impl RefSp<'_> {
    fn evaluate(&self, sp: &SequencePair) -> f64 {
        let metrics = self.placer.place(sp).metrics(self.netlist);
        metrics.bounding_area as f64 + WIRELENGTH_WEIGHT * metrics.wirelength
    }
}

impl RefState for RefSp<'_> {
    fn cost(&self) -> f64 {
        self.evaluate(&self.sp)
    }
    fn propose(&mut self, rng: &mut SeededRng) {
        self.backup = Some(self.sp.clone());
        for _ in 0..8 {
            if self.moves.perturb(&mut self.sp, rng) {
                break;
            }
        }
    }
    fn rollback(&mut self) {
        if let Some(prev) = self.backup.take() {
            self.sp = prev;
        }
    }
    fn commit(&mut self) {
        let cost = self.evaluate(&self.sp);
        if self.best.as_ref().is_none_or(|(_, c)| cost < *c) {
            self.best = Some((self.sp.clone(), cost));
        }
    }
}

// --- the equivalence matrix ------------------------------------------------

#[test]
fn flat_btree_hot_path_matches_pre_refactor_evaluator_on_all_benchmarks() {
    for name in benchmarks::names() {
        let circuit = benchmarks::by_name(name).expect("bundled name resolves");
        let schedule = schedule_for(circuit.module_count());

        let config =
            HbTreePlacerConfig { seed: SEED, schedule, wirelength_weight: WIRELENGTH_WEIGHT };
        let new = BTreePlacer::new(&circuit.netlist, &circuit.constraints).run(&config);

        let modules: Vec<ModuleId> = circuit.netlist.module_ids().collect();
        let rotatable: Vec<bool> =
            circuit.netlist.modules().map(|(_, m)| m.rotation_allowed()).collect();
        let mut reference = RefFlat {
            tree: BStarTree::balanced(&modules),
            backup: None,
            best: None,
            netlist: &circuit.netlist,
            rotatable,
        };
        reference_anneal(SEED, &mut reference, &schedule);
        let best_tree = reference.best.map(|(t, _)| t).unwrap_or(reference.tree);
        let expected = old_flat_placement(&circuit.netlist, &best_tree);

        assert_eq!(new.placement, expected, "flat B*-tree diverged on {name}");
        assert_eq!(new.metrics, expected.metrics(&circuit.netlist), "{name}");
    }
}

#[test]
fn hbtree_hot_path_matches_pre_refactor_evaluator_on_all_benchmarks() {
    for name in benchmarks::names() {
        let circuit = benchmarks::by_name(name).expect("bundled name resolves");
        let schedule = schedule_for(circuit.module_count());

        let config =
            HbTreePlacerConfig { seed: SEED, schedule, wirelength_weight: WIRELENGTH_WEIGHT };
        let new = HbTreePlacer::new(&circuit).run(&config);

        let mut reference = RefHb {
            tree: HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints),
            backup: None,
            best: None,
            netlist: &circuit.netlist,
        };
        reference_anneal(SEED, &mut reference, &schedule);
        let best_tree = reference.best.map(|(t, _)| t).unwrap_or(reference.tree);
        let expected = best_tree.pack();

        assert_eq!(new.placement, expected, "HB*-tree diverged on {name}");
        assert_eq!(new.metrics, expected.metrics(&circuit.netlist), "{name}");
    }
}

#[test]
fn seqpair_hot_path_matches_pre_refactor_evaluator_on_all_benchmarks() {
    for name in benchmarks::names() {
        let circuit = benchmarks::by_name(name).expect("bundled name resolves");
        let schedule = schedule_for(circuit.module_count());

        let config = SeqPairPlacerConfig {
            seed: SEED,
            schedule,
            wirelength_weight: WIRELENGTH_WEIGHT,
            ..SeqPairPlacerConfig::default()
        };
        let new = SeqPairPlacer::new(&circuit.netlist, &circuit.constraints).run(&config);

        let modules: Vec<ModuleId> = circuit.netlist.module_ids().collect();
        let mut reference = RefSp {
            sp: canonical_symmetric_feasible(&modules, &circuit.constraints),
            backup: None,
            best: None,
            placer: SymmetricPlacer::new(&circuit.netlist, &circuit.constraints),
            netlist: &circuit.netlist,
            moves: SymmetricMoveSet::new(circuit.constraints.clone()),
        };
        reference_anneal(SEED, &mut reference, &schedule);
        let (best_sp, _) = reference.best.clone().unwrap_or((reference.sp.clone(), f64::MAX));
        let expected = reference.placer.place(&best_sp);

        assert_eq!(new.sequence_pair, best_sp, "sequence-pair encoding diverged on {name}");
        assert_eq!(new.placement, expected, "sequence-pair placement diverged on {name}");
        assert_eq!(new.metrics, expected.metrics(&circuit.netlist), "{name}");
    }
}
