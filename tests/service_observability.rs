//! The production observability surface (DESIGN.md §14): the Prometheus
//! sidecar must expose honest metrics without becoming a second stateful
//! protocol, readiness must track recovery and queue pressure, and the
//! always-on flight recorder must produce a parseable dump after the exact
//! failures it exists for — worker panics and hard kills.

use analog_layout_synthesis::service::json::Json;
use analog_layout_synthesis::service::{
    FaultPlan, JobSpec, PlacementService, ServiceClient, ServiceConfig,
};
use std::io::{BufRead, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A fresh flight-recorder path under a per-test temp directory.
struct TempDump {
    dir: PathBuf,
    path: PathBuf,
}

impl TempDump {
    fn new(tag: &str) -> TempDump {
        let dir =
            std::env::temp_dir().join(format!("apls-observability-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("flight.jsonl");
        TempDump { dir, path }
    }
}

impl Drop for TempDump {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// One blocking HTTP/1.1 GET against the sidecar; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("sidecar accepts");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Every complete line of a flight-recorder file must round-trip through the
/// service's own JSON parser; a final torn line (no trailing newline) is
/// tolerated because a hard kill can cut the last write short.
fn assert_dump_parses(path: &Path) -> usize {
    let text = std::fs::read_to_string(path).expect("dump file readable");
    let complete = match text.strip_suffix('\n') {
        Some(whole) => whole,
        None => text.rsplit_once('\n').map_or("", |(head, _torn)| head),
    };
    let mut events = 0;
    for line in complete.lines() {
        let event = Json::parse(line).unwrap_or_else(|e| panic!("bad dump line {line:?}: {e}"));
        assert!(event.get("name").and_then(Json::as_str).is_some(), "unnamed event: {line}");
        assert!(event.get("cat").and_then(Json::as_str).is_some(), "uncategorised event: {line}");
        events += 1;
    }
    events
}

#[test]
fn metrics_sidecar_serves_exposition_health_and_readiness() {
    let service = PlacementService::start(ServiceConfig {
        workers: 1,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let sidecar = service.metrics_addr().expect("sidecar bound");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    let spec = JobSpec::bundled("miller_opamp_fig6").with_seed(7).with_restarts(1).with_fast(true);
    assert!(client.place(&spec).expect("solves").is_ok());

    let (status, body) = http_get(sidecar, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("# TYPE apls_requests_total counter"), "{body}");
    assert!(body.contains("apls_build_info{"), "{body}");
    assert!(body.contains("apls_uptime_seconds"), "{body}");
    assert!(body.contains("apls_total_ms_bucket{le=\"+Inf\"} 1"), "{body}");
    assert!(body.contains("apls_total_ms_count 1"), "{body}");

    let (status, body) = http_get(sidecar, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, body) = http_get(sidecar, "/readyz");
    assert_eq!((status, body.as_str()), (200, "ready\n"));
    let (status, _) = http_get(sidecar, "/nope");
    assert_eq!(status, 404);

    // the stats reply carries the same readiness and uptime surface
    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"ready\":true"), "{stats}");
    assert!(stats.contains("\"uptime_seconds\":"), "{stats}");

    service.shutdown();
    service.join();
}

#[test]
fn readyz_goes_unready_while_the_queue_sits_at_high_water() {
    // One worker pinned on a slow job plus queue_capacity 1 puts the queue at
    // its high-water mark (max(1, 0.9 * 1) = 1) while the second job waits.
    let service = PlacementService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 0,
        job_delay: Some(Duration::from_millis(800)),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let sidecar = service.metrics_addr().expect("sidecar bound");
    let addr = service.local_addr();

    let submit = |seed: u64| {
        std::thread::spawn(move || {
            let mut client = ServiceClient::connect(addr).expect("connects");
            let spec = JobSpec::bundled("miller_opamp_fig6")
                .with_seed(seed)
                .with_restarts(1)
                .with_fast(true);
            client.place(&spec).expect("solves")
        })
    };
    let first = submit(1);
    // wait for the worker to own job 1 before queueing job 2, so the second
    // submission can never race job 1 for the single queue slot (a full
    // queue would answer `retry` instead of waiting at high-water)
    let mut stats_client = ServiceClient::connect(addr).expect("connects");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = stats_client.stats().expect("stats");
        if stats.contains("\"in_flight\":1") {
            break;
        }
        assert!(Instant::now() < deadline, "job 1 never reached a worker: {stats}");
        std::thread::sleep(Duration::from_millis(5));
    }
    let second = submit(2);

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut saw_unready = false;
    while Instant::now() < deadline {
        let (status, body) = http_get(sidecar, "/readyz");
        if status == 503 {
            assert_eq!(body, "job queue above high-water\n");
            saw_unready = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_unready, "readiness never dipped while the queue was full");

    assert!(first.join().expect("no panic").is_ok());
    assert!(second.join().expect("no panic").is_ok());
    let (status, _) = http_get(sidecar, "/readyz");
    assert_eq!(status, 200, "readiness must recover once the queue drains");

    service.shutdown();
    service.join();
}

#[test]
fn dump_op_writes_a_parseable_flight_recorder_file() {
    let dump = TempDump::new("dump-op");
    let service = PlacementService::start(ServiceConfig {
        workers: 1,
        flight_recorder_path: Some(dump.path.clone()),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    let spec = JobSpec::bundled("miller_opamp_fig6").with_seed(3).with_restarts(1).with_fast(true);
    assert!(client.place(&spec).expect("solves").is_ok());

    let reply = client.dump().expect("dump round-trips");
    let reply = Json::parse(&reply).expect("dump reply is JSON");
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        reply.get("path").and_then(Json::as_str),
        Some(dump.path.to_str().expect("utf-8 path"))
    );
    let reported = reply.get("events").and_then(Json::as_usize).expect("event count");
    assert!(reported > 0, "an active service must have recorded events");
    assert_eq!(assert_dump_parses(&dump.path), reported);

    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"flight_dumps_total\":1"), "{stats}");

    service.shutdown();
    service.join();
}

#[test]
fn dump_op_without_a_recorder_answers_unavailable() {
    let service =
        PlacementService::start(ServiceConfig { flight_recorder: 0, ..ServiceConfig::default() })
            .expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    let reply = client.dump().expect("round-trips");
    assert!(reply.contains("\"kind\":\"unavailable\""), "{reply}");
    service.shutdown();
    service.join();
}

#[test]
fn a_worker_panic_dumps_the_flight_recorder() {
    let dump = TempDump::new("panic");
    let service = PlacementService::start(ServiceConfig {
        workers: 1,
        fault_plan: Some(FaultPlan::new().with_panic_job(0)),
        flight_recorder_path: Some(dump.path.clone()),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    let spec = JobSpec::bundled("miller_opamp_fig6").with_seed(5).with_restarts(1).with_fast(true);
    let response = client.place(&spec).expect("round-trips");
    assert!(!response.is_ok(), "job 0 is the sacrificial panic: {response:?}");

    assert!(dump.path.exists(), "a worker panic must leave a dump on disk");
    assert!(assert_dump_parses(&dump.path) > 0);
    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"flight_dumps_total\":1"), "{stats}");

    service.shutdown();
    service.join();
}

/// A SIGKILL leaves no chance to dump, so the recorder's continuous spill
/// files must carry the story: every complete line parses, and a torn final
/// line is tolerated (each event is a single `write_all`, so only the very
/// last line can tear).
#[test]
fn sigkilled_daemon_leaves_a_parseable_spill_file() {
    let dump = TempDump::new("sigkill");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_apls"))
        .args(["serve", "--host", "127.0.0.1", "--port", "0", "--workers", "1"])
        .arg("--flight-recorder")
        .arg(&dump.path)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("piped");
    let mut daemon_lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = daemon_lines.next().expect("daemon prints its address").expect("readable");
        if let Some(rest) = line.strip_prefix("apls service listening on ") {
            break rest.split_whitespace().next().expect("address").to_string();
        }
    };
    let drain = std::thread::spawn(move || while let Some(Ok(_)) = daemon_lines.next() {});

    let mut client = ServiceClient::connect(addr.as_str()).expect("connects");
    let spec = JobSpec::bundled("miller_opamp_fig6").with_seed(9).with_restarts(1).with_fast(true);
    assert!(client.place(&spec).expect("solves").is_ok());

    child.kill().expect("SIGKILL delivered");
    let _ = child.wait();
    drain.join().expect("drain thread exits");

    let spill_a = {
        let mut os = dump.path.clone().into_os_string();
        os.push(".a");
        PathBuf::from(os)
    };
    assert!(spill_a.exists(), "the always-on recorder must have been spilling");
    let events = assert_dump_parses(&spill_a);
    assert!(events > 0, "the spill must carry the pre-kill service events");
}
