//! Fault-injection matrix for the placement service: deterministic
//! [`FaultPlan`]s degrade the daemon at pinned points — worker panics,
//! forced-slow solves, dropped connections — and the service must keep
//! serving, answer the affected jobs with typed envelopes, count every
//! fault, and preserve the determinism contract for everything else.

use analog_layout_synthesis::service::{
    FaultPlan, JobSpec, PlacementService, RetryPolicy, ServiceClient, ServiceConfig,
};
use std::time::Duration;

fn fast_spec(circuit: &str, seed: u64) -> JobSpec {
    JobSpec::bundled(circuit).with_seed(seed).with_restarts(1).with_fast(true)
}

/// The report a healthy, fault-free service produces for `spec` — the
/// reference every degraded run is compared against.
fn reference_report(spec: &JobSpec) -> String {
    let service = PlacementService::start(ServiceConfig::default()).expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    let response = client.place(spec).expect("round-trips");
    assert!(response.is_ok());
    service.shutdown();
    service.join();
    response.report.expect("report")
}

#[test]
fn a_worker_panic_is_isolated_answered_and_counted() {
    // Job index 0 panics mid-solve; the same worker must go on to solve the
    // next job, and the resubmitted spec (now index 1+) must match a clean
    // service byte for byte.
    let service = PlacementService::start(ServiceConfig {
        workers: 1,
        fault_plan: Some(FaultPlan::new().with_panic_job(0)),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");

    let spec = fast_spec("miller_opamp_fig6", 11);
    let failed = client.place(&spec).expect("the envelope still round-trips");
    assert_eq!(failed.status, "error", "{failed:?}");
    assert_eq!(failed.kind.as_deref(), Some("internal"), "{failed:?}");
    assert!(failed.report.is_none());

    let healed = client.place(&spec).expect("round-trips");
    assert!(healed.is_ok(), "the worker must survive the panic: {healed:?}");
    assert_eq!(healed.report.as_deref(), Some(reference_report(&spec).as_str()));

    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"worker_panics_total\":1"), "{stats}");

    service.shutdown();
    service.join();
}

#[test]
fn deadlines_time_out_slow_jobs_and_never_touch_the_cache_key() {
    // An injected 30s solve against a 50ms deadline must answer `timeout`
    // (cooperative cancellation, not 30s later), and a generous deadline on
    // an identical spec must still share the no-deadline cache entry.
    let service = PlacementService::start(ServiceConfig {
        workers: 1,
        fault_plan: Some(FaultPlan::new().with_slow_solve(0, 200)),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");

    let spec = fast_spec("folded_cascode", 5);
    let timed_out =
        client.place(&spec.clone().with_deadline_ms(50)).expect("the envelope round-trips");
    assert!(timed_out.is_timeout(), "{timed_out:?}");
    assert_eq!(timed_out.kind.as_deref(), Some("deadline"), "{timed_out:?}");

    // job 1 has no injected latency: solves normally, no deadline
    let computed = client.place(&spec).expect("round-trips");
    assert!(computed.is_ok() && !computed.cache_hit, "{computed:?}");

    // deadline_ms is excluded from the cache key: the deadlined resubmission
    // must be a cache hit with the byte-identical report
    let cached = client.place(&spec.clone().with_deadline_ms(60_000)).expect("round-trips");
    assert!(cached.is_ok() && cached.cache_hit, "{cached:?}");
    assert_eq!(cached.report, computed.report);

    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"timeouts_total\":1"), "{stats}");

    service.shutdown();
    service.join();
}

#[test]
fn dropped_connections_are_counted_and_the_next_one_serves() {
    let service = PlacementService::start(ServiceConfig {
        fault_plan: Some(FaultPlan::new().with_drop_connection(0)),
        ..ServiceConfig::default()
    })
    .expect("service starts");

    // accepted connection #0 is dropped on the floor: the client sees EOF
    // (or a reset) instead of a ping response
    let mut doomed = ServiceClient::connect(service.local_addr()).expect("tcp connects");
    assert!(doomed.ping().is_err(), "connection 0 must be dropped");

    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    assert!(client.ping().expect("connection 1 serves").contains("\"status\":\"ok\""));
    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"connections_dropped_total\":1"), "{stats}");

    service.shutdown();
    service.join();
}

#[test]
fn a_saturated_queue_answers_retry_and_place_with_retry_rides_it_out() {
    // One worker pinned down by a 400ms injected solve, a queue of depth 1:
    // the first job occupies the worker, the second fills the queue, the
    // third must be refused with `retry` — and a retrying client must
    // eventually land it.
    let service = PlacementService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        fault_plan: Some(FaultPlan::new().with_slow_solve(0, 400)),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let addr = service.local_addr();

    let slow = fast_spec("miller_opamp_fig6", 1);
    let queued = fast_spec("miller_v2", 2);
    let refused_spec = fast_spec("comparator_v2", 3);

    let slow_handle = {
        let slow = slow.clone();
        std::thread::spawn(move || {
            let mut client = ServiceClient::connect(addr).expect("connects");
            client.place(&slow).expect("round-trips")
        })
    };
    // let the slow job reach the worker before filling the queue behind it
    std::thread::sleep(Duration::from_millis(100));
    let queued_handle = {
        let queued = queued.clone();
        std::thread::spawn(move || {
            let mut client = ServiceClient::connect(addr).expect("connects");
            client.place(&queued).expect("round-trips")
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    let mut client = ServiceClient::connect(addr).expect("connects");
    let refused = client.place(&refused_spec).expect("the envelope round-trips");
    assert!(refused.is_retry(), "a full queue must answer retry: {refused:?}");

    // bounded backoff with deterministic jitter outlasts the 400ms clog
    let policy = RetryPolicy {
        max_attempts: 10,
        base: Duration::from_millis(100),
        cap: Duration::from_millis(400),
        jitter_seed: 7,
    };
    let landed = ServiceClient::place_with_retry(addr, &refused_spec, &policy)
        .expect("retries must eventually land");
    assert!(landed.is_ok(), "{landed:?}");
    assert!(landed.attempts >= 1);

    assert!(slow_handle.join().expect("no panic").is_ok());
    assert!(queued_handle.join().expect("no panic").is_ok());
    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"retries_total\":"), "{stats}");

    service.shutdown();
    service.join();
}

#[test]
fn the_connection_limit_refuses_with_an_error_line() {
    let service =
        PlacementService::start(ServiceConfig { max_connections: 1, ..ServiceConfig::default() })
            .expect("service starts");

    let mut first = ServiceClient::connect(service.local_addr()).expect("connects");
    // ensure the first handler is registered before probing the limit
    assert!(first.ping().expect("serves").contains("\"status\":\"ok\""));

    let mut refused = ServiceClient::connect(service.local_addr()).expect("tcp connects");
    // the service writes the refusal line without reading a request, then
    // closes; request_line surfaces either the line or the hangup
    match refused.request_line("{\"op\":\"ping\"}") {
        Ok(line) => {
            assert!(line.contains("connection limit"), "{line}");
            assert!(line.starts_with("{\"status\":\"error\""), "{line}");
        }
        Err(e) => panic!("expected the refusal line, got {e}"),
    }

    // the slot frees once the first connection closes
    drop(first);
    for _ in 0..50 {
        let mut again = ServiceClient::connect(service.local_addr()).expect("tcp connects");
        if again.ping().is_ok_and(|line| line.contains("\"status\":\"ok\"")) {
            service.shutdown();
            service.join();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("connection slot never freed after the first client disconnected");
}

#[test]
fn oversized_requests_are_refused_and_the_connection_closed() {
    let service = PlacementService::start(ServiceConfig {
        max_request_bytes: 1024,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");

    // a small request still round-trips under the tiny cap
    assert!(client.ping().expect("serves").contains("\"status\":\"ok\""));

    let huge = format!("{{\"op\":\"place\",\"circuit\":\"{}\"}}", "x".repeat(4096));
    let line = client.request_line(&huge).expect("the refusal line arrives");
    assert!(line.starts_with("{\"status\":\"error\""), "{line}");
    assert!(line.contains("\"kind\":\"request_too_large\""), "{line}");

    // the contract says the connection closes after the refusal
    assert!(client.ping().is_err(), "connection must be closed after an oversized request");

    // a fresh connection is unaffected
    let mut fresh = ServiceClient::connect(service.local_addr()).expect("connects");
    assert!(fresh.ping().expect("serves").contains("\"status\":\"ok\""));

    service.shutdown();
    service.join();
}

#[test]
fn fault_runs_preserve_determinism_for_unaffected_jobs() {
    // A degraded service (panic on job 0, slow job 1, dropped connection 2)
    // must still answer every *unaffected* job byte-identically to a clean
    // service.
    let specs = [fast_spec("miller_opamp_fig6", 21), fast_spec("folded_cascode", 22)];
    let references: Vec<String> = specs.iter().map(reference_report).collect();

    let service = PlacementService::start(ServiceConfig {
        workers: 2,
        fault_plan: Some(
            FaultPlan::new().with_panic_job(0).with_slow_solve(1, 50).with_drop_connection(2),
        ),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");

    // job 0: sacrificial panic
    let sacrificial = client.place(&fast_spec("miller_v2", 20)).expect("envelope round-trips");
    assert_eq!(sacrificial.kind.as_deref(), Some("internal"));

    // job 1 runs slow but completes; job 2 is untouched
    for (spec, reference) in specs.iter().zip(&references) {
        let response = client.place(spec).expect("round-trips");
        assert!(response.is_ok(), "{response:?}");
        assert_eq!(response.report.as_deref(), Some(reference.as_str()), "{spec:?}");
    }

    service.shutdown();
    service.join();
}
