//! The telemetry contract (DESIGN.md §11): telemetry *observes* and never
//! *participates*. Attaching a recording collector must not change a single
//! byte of any deterministic report body — portfolio runs and service
//! responses alike — because telemetry holds no RNG, consumes no `SeedStream`
//! lane, and instrumented code paths branch only on whether to *record*.

use std::sync::Arc;

use analog_layout_synthesis::circuit::benchmarks;
use analog_layout_synthesis::portfolio::{run_portfolio, run_portfolio_traced, PortfolioConfig};
use analog_layout_synthesis::service::{JobSpec, PlacementService, ServiceClient, ServiceConfig};
use analog_layout_synthesis::telemetry::{RecordingCollector, Telemetry};

/// Every bundled circuit's portfolio report is byte-identical whether the
/// run records a full trace or runs with the no-op handle.
#[test]
fn portfolio_reports_are_byte_identical_with_and_without_telemetry() {
    for name in benchmarks::names() {
        let circuit = benchmarks::by_name(name).expect("bundled name resolves");
        let config = PortfolioConfig::new(13).with_restarts(2).with_fast_schedule(true);

        let quiet = run_portfolio(&circuit, &config).to_json_deterministic();

        let recorder = Arc::new(RecordingCollector::new());
        let telemetry = Telemetry::with_collector(Arc::clone(&recorder) as _);
        let traced = run_portfolio_traced(&circuit, &config, &telemetry).to_json_deterministic();

        assert!(!recorder.is_empty(), "{name}: traced run must actually record events");
        assert_eq!(quiet, traced, "{name}: report body changed under telemetry");
    }
}

/// Runs one job per bundled circuit against a fresh service and returns the
/// report bodies in submission order.
fn collect_service_reports(telemetry: Telemetry) -> Vec<String> {
    let service = PlacementService::start_with_telemetry(
        ServiceConfig { workers: 2, ..ServiceConfig::default() },
        telemetry,
    )
    .expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");

    let reports = benchmarks::names()
        .iter()
        .map(|name| {
            let spec = JobSpec::bundled(*name).with_seed(7).with_restarts(1).with_fast(true);
            client.place(&spec).expect("solves").report.expect("ok response carries a report")
        })
        .collect();

    client.shutdown().expect("acknowledged");
    service.join();
    reports
}

/// The service answers byte-identical report bodies whether the daemon was
/// started with a recording collector or the disabled handle.
#[test]
fn service_reports_are_byte_identical_with_and_without_telemetry() {
    let quiet = collect_service_reports(Telemetry::disabled());

    let recorder = Arc::new(RecordingCollector::new());
    let traced = collect_service_reports(Telemetry::with_collector(Arc::clone(&recorder) as _));

    assert!(!recorder.is_empty(), "traced service must actually record events");
    assert_eq!(quiet.len(), benchmarks::names().len());
    for ((name, a), b) in benchmarks::names().iter().zip(&quiet).zip(&traced) {
        assert_eq!(a, b, "{name}: service report body changed under telemetry");
    }
}

/// Runs one job per bundled circuit against a service with `config` and
/// returns the report bodies in submission order.
fn collect_reports_with_config(config: ServiceConfig) -> Vec<String> {
    let service = PlacementService::start(config).expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    let reports = benchmarks::names()
        .iter()
        .map(|name| {
            let spec = JobSpec::bundled(*name).with_seed(7).with_restarts(1).with_fast(true);
            client.place(&spec).expect("solves").report.expect("ok response carries a report")
        })
        .collect();
    client.shutdown().expect("acknowledged");
    service.join();
    reports
}

/// The full observability surface — metrics sidecar, always-on flight
/// recorder with an on-disk spill — observes without participating: report
/// bodies are byte-identical to a daemon with everything switched off.
#[test]
fn service_reports_are_byte_identical_with_observability_on_and_off() {
    let off = collect_reports_with_config(ServiceConfig {
        workers: 2,
        flight_recorder: 0,
        metrics_addr: None,
        ..ServiceConfig::default()
    });

    let spill = std::env::temp_dir()
        .join(format!("apls-telemetry-determinism-{}.jsonl", std::process::id()));
    let on = collect_reports_with_config(ServiceConfig {
        workers: 2,
        flight_recorder: 2048,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        flight_recorder_path: Some(spill.clone()),
        ..ServiceConfig::default()
    });
    for suffix in ["a", "b"] {
        let mut os = spill.clone().into_os_string();
        os.push(format!(".{suffix}"));
        let _ = std::fs::remove_file(os);
    }

    assert_eq!(off.len(), benchmarks::names().len());
    for ((name, a), b) in benchmarks::names().iter().zip(&off).zip(&on) {
        assert_eq!(a, b, "{name}: report body changed with observability enabled");
    }
}
