//! Crash-recovery contract of the placement service: a durable job journal
//! must make reports survive a restart — completed jobs are served from the
//! recovered store, incomplete jobs are re-solved with their recorded seeds,
//! and everything stays byte-identical to a service that never crashed.

use analog_layout_synthesis::circuit::benchmarks;
use analog_layout_synthesis::service::{
    FaultPlan, JobSpec, JournalConfig, PlaceResponse, PlacementService, ServiceClient,
    ServiceConfig,
};
use std::io::BufRead;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A fresh journal path under a per-test temp directory (cleaned up by
/// [`TempJournal::drop`]).
struct TempJournal {
    dir: PathBuf,
    path: PathBuf,
}

impl TempJournal {
    fn new(tag: &str) -> TempJournal {
        let dir = std::env::temp_dir().join(format!("apls-recovery-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("journal.jsonl");
        TempJournal { dir, path }
    }
}

impl Drop for TempJournal {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Every bundled circuit as a fast, unpinned-seed job — the service derives
/// each job's seed from its index, which is exactly what recovery must keep
/// stable across restarts.
fn bundled_specs() -> Vec<JobSpec> {
    benchmarks::names()
        .iter()
        .map(|name| JobSpec::bundled(name.to_string()).with_restarts(1).with_fast(true))
        .collect()
}

/// Runs `specs` in order on a fresh, journal-free service and returns the
/// responses — the never-crashed reference for byte-identity checks.
fn reference_run(specs: &[JobSpec]) -> Vec<PlaceResponse> {
    let service = PlacementService::start(ServiceConfig { workers: 1, ..ServiceConfig::default() })
        .expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    let responses: Vec<PlaceResponse> = specs
        .iter()
        .map(|spec| {
            let response = client.place(spec).expect("round-trips");
            assert!(response.is_ok(), "{response:?}");
            response
        })
        .collect();
    service.shutdown();
    service.join();
    responses
}

/// Polls the restarted service until recovery finished replaying, bounded by
/// a generous timeout so a wedged replay fails loudly instead of hanging.
fn await_stat(client: &mut ServiceClient, needle: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = client.stats().expect("stats");
        if stats.contains(needle) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {needle} in {stats}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn a_restart_on_the_same_journal_serves_completed_reports_byte_identically() {
    let journal = TempJournal::new("restart");
    let specs = bundled_specs();
    let reference = reference_run(&specs);

    // first life: journal on, all bundled circuits, derived seeds
    {
        let service = PlacementService::start(ServiceConfig {
            workers: 1,
            journal: Some(JournalConfig::new(&journal.path)),
            ..ServiceConfig::default()
        })
        .expect("service starts");
        let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
        for (spec, reference) in specs.iter().zip(&reference) {
            let response = client.place(spec).expect("round-trips");
            assert!(response.is_ok(), "{response:?}");
            assert_eq!(response.seed, reference.seed, "derived seeds must match the reference");
            assert_eq!(response.report, reference.report, "journal-on must not change reports");
        }
        service.shutdown();
        service.join();
    }

    // second life: same journal; every pre-restart report must come from the
    // recovered store (cache_hit) and match the reference byte for byte
    let service = PlacementService::start(ServiceConfig {
        workers: 1,
        journal: Some(JournalConfig::new(&journal.path)),
        ..ServiceConfig::default()
    })
    .expect("service restarts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    {
        let stats = client.stats().expect("stats");
        assert!(
            stats.contains(&format!("\"jobs_recovered_total\":{}", specs.len())),
            "all completed jobs must be restored: {stats}"
        );
    }
    // job-index continuity first (every request below consumes an index): a
    // new unpinned job on the restarted service must derive the same seed
    // (and thus report) as job N on a never-crashed one
    let extra = JobSpec::bundled("miller_opamp_fig6").with_restarts(2).with_fast(true);
    let mut extended = specs.clone();
    extended.push(extra.clone());
    let extended_reference = reference_run(&extended);
    let continued = client.place(&extra).expect("round-trips");
    assert!(continued.is_ok(), "{continued:?}");
    let reference_extra = extended_reference.last().expect("reference");
    assert_eq!(continued.seed, reference_extra.seed, "job indices must continue, not restart");
    assert_eq!(continued.report, reference_extra.report);

    for (spec, reference) in specs.iter().zip(&reference) {
        let pinned = spec.clone().with_seed(reference.seed.expect("seed reported"));
        let response = client.place(&pinned).expect("round-trips");
        assert!(response.is_ok(), "{response:?}");
        assert!(response.cache_hit, "must be served from the recovered store: {response:?}");
        assert_eq!(response.report, reference.report, "{spec:?}");
    }

    service.shutdown();
    service.join();
}

#[test]
fn a_failed_completion_record_degrades_durability_not_service_and_replays() {
    let journal = TempJournal::new("journal-fault");
    let spec_a = JobSpec::bundled("folded_cascode").with_seed(9).with_restarts(1).with_fast(true);
    let spec_b = JobSpec::bundled("miller_v2").with_seed(10).with_restarts(1).with_fast(true);

    // first life: record 1 (job A's completion) fails to append — the job is
    // still answered, the failure is counted, and the journal is left with
    // an enqueue record but no completion for A
    let (report_a, report_b) = {
        let service = PlacementService::start(ServiceConfig {
            workers: 1,
            journal: Some(JournalConfig::new(&journal.path)),
            fault_plan: Some(FaultPlan::new().with_journal_fail(1)),
            ..ServiceConfig::default()
        })
        .expect("service starts");
        let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
        let a = client.place(&spec_a).expect("round-trips");
        let b = client.place(&spec_b).expect("round-trips");
        assert!(a.is_ok() && b.is_ok(), "a journal fault must not fail the jobs");
        let stats = client.stats().expect("stats");
        assert!(stats.contains("\"journal_write_failures_total\":1"), "{stats}");
        service.shutdown();
        service.join();
        (a.report.expect("report"), b.report.expect("report"))
    };

    // second life: B restores from its completion record, A replays from its
    // enqueue record — and resolves to the byte-identical report
    let service = PlacementService::start(ServiceConfig {
        workers: 1,
        journal: Some(JournalConfig::new(&journal.path)),
        ..ServiceConfig::default()
    })
    .expect("service restarts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    await_stat(&mut client, "\"jobs_replayed_total\":1");
    await_stat(&mut client, "\"jobs_completed\":1");
    {
        let stats = client.stats().expect("stats");
        assert!(stats.contains("\"jobs_recovered_total\":1"), "{stats}");
    }
    let a = client.place(&spec_a).expect("round-trips");
    assert!(a.is_ok() && a.cache_hit, "replayed job must be in the recovered store: {a:?}");
    assert_eq!(a.report.as_deref(), Some(report_a.as_str()));
    let b = client.place(&spec_b).expect("round-trips");
    assert!(b.is_ok() && b.cache_hit, "{b:?}");
    assert_eq!(b.report.as_deref(), Some(report_b.as_str()));

    service.shutdown();
    service.join();
}

#[test]
fn sigkill_mid_queue_loses_no_accepted_job() {
    let journal = TempJournal::new("sigkill");

    // the workload: two quick jobs that complete pre-crash (derived seeds),
    // two pinned-seed jobs that are mid-solve / queued when the daemon dies
    let quick_a = JobSpec::bundled("miller_opamp_fig6").with_restarts(1).with_fast(true);
    let quick_b = JobSpec::bundled("folded_cascode").with_restarts(1).with_fast(true);
    let doomed_c = JobSpec::bundled("miller_v2").with_seed(1002).with_restarts(1).with_fast(true);
    let doomed_d =
        JobSpec::bundled("comparator_v2").with_seed(1003).with_restarts(1).with_fast(true);

    // never-crashed reference for all four (same submission order, so the
    // quick jobs' derived seeds line up)
    let reference =
        reference_run(&[quick_a.clone(), quick_b.clone(), doomed_c.clone(), doomed_d.clone()]);

    // first life: a real daemon process, artificially slow (400ms/job) so
    // the kill lands mid-solve with one job still queued
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_apls"))
        .args([
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--workers",
            "1",
            "--job-delay-ms",
            "400",
            "--journal",
        ])
        .arg(&journal.path)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("piped");
    let mut daemon_lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = daemon_lines.next().expect("daemon prints its address").expect("readable");
        if let Some(rest) = line.strip_prefix("apls service listening on ") {
            break rest.split_whitespace().next().expect("address").to_string();
        }
    };
    // keep the daemon's stdout pipe open and drained — dropping it would make
    // the daemon's next println! fail, which is not the crash under test
    let drain = std::thread::spawn(move || while let Some(Ok(_)) = daemon_lines.next() {});

    let mut client = ServiceClient::connect(addr.as_str()).expect("connects");
    let pre_crash_a = client.place(&quick_a).expect("round-trips");
    let pre_crash_b = client.place(&quick_b).expect("round-trips");
    assert!(pre_crash_a.is_ok() && pre_crash_b.is_ok());
    assert_eq!(pre_crash_a.report, reference[0].report, "daemon must match the reference");
    assert_eq!(pre_crash_b.report, reference[1].report);

    // push C into the worker and D into the queue, then SIGKILL mid-solve
    let submit = |spec: JobSpec, addr: String| {
        std::thread::spawn(move || {
            let mut client = ServiceClient::connect(addr.as_str()).expect("connects");
            let _ = client.place(&spec); // dies with the daemon
        })
    };
    let c_handle = submit(doomed_c.clone(), addr.clone());
    std::thread::sleep(Duration::from_millis(120));
    let d_handle = submit(doomed_d.clone(), addr.clone());
    std::thread::sleep(Duration::from_millis(120));
    child.kill().expect("SIGKILL");
    child.wait().expect("reaped");
    let _ = c_handle.join();
    let _ = d_handle.join();
    let _ = drain.join();

    // second life: in-process restart on the same journal (same default
    // service seed as the daemon), no artificial delay
    let service = PlacementService::start(ServiceConfig {
        workers: 1,
        journal: Some(JournalConfig::new(&journal.path)),
        ..ServiceConfig::default()
    })
    .expect("service restarts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    await_stat(&mut client, "\"jobs_replayed_total\":2");
    await_stat(&mut client, "\"jobs_completed\":2");

    // completed-pre-crash reports come from the recovered store ...
    for (spec, reference) in [&quick_a, &quick_b].into_iter().zip(&reference) {
        let pinned = spec.clone().with_seed(reference.seed.expect("seed reported"));
        let response = client.place(&pinned).expect("round-trips");
        assert!(response.is_ok() && response.cache_hit, "{response:?}");
        assert_eq!(response.report, reference.report, "{spec:?}");
    }
    // ... and the killed-mid-flight jobs were re-solved byte-identically
    for (spec, reference) in [&doomed_c, &doomed_d].into_iter().zip(&reference[2..]) {
        let response = client.place(spec).expect("round-trips");
        assert!(response.is_ok() && response.cache_hit, "{response:?}");
        assert_eq!(response.report, reference.report, "{spec:?}");
    }

    service.shutdown();
    service.join();
}
