//! Streaming-protocol tests: tagged frames arrive in protocol order
//! (`accepted → queued → progress* → report`), concurrent streamed jobs on
//! one connection never interleave mid-line, and the streamed report body is
//! byte-identical to the blocking path for every bundled circuit — in both
//! the event-loop and legacy-threads serve modes.

use std::collections::HashMap;

use analog_layout_synthesis::circuit::benchmarks;
use analog_layout_synthesis::portfolio::PortfolioEngine;
use analog_layout_synthesis::service::{
    JobSpec, PlaceResponse, PlacementService, ServeMode, ServiceClient, ServiceConfig, StreamFrame,
};

fn start(mode: ServeMode) -> PlacementService {
    PlacementService::start(ServiceConfig { mode, workers: 2, ..ServiceConfig::default() })
        .expect("service starts")
}

/// A small pinned-seed job that still runs more than one restart, so the
/// stream carries real `progress` frames.
fn fast_spec(circuit: &str, seed: u64) -> JobSpec {
    JobSpec::bundled(circuit)
        .with_seed(seed)
        .with_restarts(2)
        .with_engines([PortfolioEngine::SequencePair])
        .with_fast(true)
}

/// Drives one streamed job and checks the full frame grammar.
fn assert_stream_ordering(mode: ServeMode) {
    let service = start(mode);
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    let spec = fast_spec("miller_opamp_fig6", 11);

    let mut frames: Vec<StreamFrame> = Vec::new();
    let response =
        client.place_streaming(&spec, |frame| frames.push(frame.clone())).expect("streams");

    assert!(frames.len() >= 2, "expected at least accepted + queued: {frames:?}");
    match &frames[0] {
        StreamFrame::Accepted { circuit, seed, .. } => {
            assert_eq!(
                Some(circuit.as_str()),
                response.circuit.as_deref(),
                "accepted frame and final envelope must echo the same circuit"
            );
            assert_eq!(*seed, 11, "pinned seed must be echoed in the accepted frame");
        }
        other => panic!("first frame must be accepted, got {other:?}"),
    }
    assert!(
        matches!(&frames[1], StreamFrame::Queued { .. }),
        "second frame must be queued, got {:?}",
        frames[1]
    );

    let mut last_completed = 0;
    for frame in &frames[2..] {
        match frame {
            StreamFrame::Progress { completed, total, cost, .. } => {
                assert!(
                    *completed > last_completed,
                    "progress frames must advance: {completed} after {last_completed}"
                );
                assert!(*completed <= *total, "completed {completed} exceeds total {total}");
                assert!(cost.is_finite());
                last_completed = *completed;
            }
            other => panic!("only progress frames may follow queued, got {other:?}"),
        }
    }
    assert!(last_completed >= 1, "a 2-restart job must stream at least one progress frame");

    assert_eq!(response.status, "ok");
    assert!(!response.cache_hit);
    assert!(response.report.is_some());

    client.shutdown().expect("acknowledged");
    service.join();
}

#[test]
fn streamed_frames_arrive_in_order_event_loop() {
    assert_stream_ordering(ServeMode::EventLoop);
}

#[test]
fn streamed_frames_arrive_in_order_legacy_threads() {
    assert_stream_ordering(ServeMode::LegacyThreads);
}

#[test]
fn cache_hit_streams_accepted_queued_report_without_progress() {
    let service = start(ServeMode::EventLoop);
    let addr = service.local_addr();
    let mut client = ServiceClient::connect(addr).expect("connects");
    let spec = fast_spec("folded_cascode", 3);

    let cold = client.place(&spec).expect("solves");
    assert!(!cold.cache_hit);

    let mut frames: Vec<StreamFrame> = Vec::new();
    let warm = client.place_streaming(&spec, |frame| frames.push(frame.clone())).expect("streams");

    assert!(warm.cache_hit, "second identical job must come from the cache");
    assert_eq!(warm.report, cold.report, "cache must serve the identical report body");
    assert_eq!(frames.len(), 2, "a cache hit streams exactly accepted + queued: {frames:?}");
    assert!(matches!(&frames[0], StreamFrame::Accepted { .. }));
    match &frames[1] {
        StreamFrame::Queued { depth, .. } => {
            assert_eq!(*depth, 0, "a cache hit never consumes a queue slot")
        }
        other => panic!("expected queued frame, got {other:?}"),
    }

    client.shutdown().expect("acknowledged");
    service.join();
}

/// Several streamed jobs pipelined on ONE connection: frames for different
/// jobs may interleave at line granularity, but every line must parse as a
/// complete frame (no mid-line interleaving) and each job's own frames must
/// respect the grammar.
#[test]
fn pipelined_streams_on_one_connection_interleave_only_at_line_boundaries() {
    let service = start(ServeMode::EventLoop);
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");

    let circuits = ["miller_opamp_fig6", "comparator_v2", "buffer", "biasynth"];
    let mut stage: HashMap<u64, u8> = HashMap::new();
    for (i, name) in circuits.iter().enumerate() {
        let id = client.submit_streaming(&fast_spec(name, 20 + i as u64)).expect("submits");
        stage.insert(id, 0);
    }

    let mut reports: Vec<PlaceResponse> = Vec::new();
    while reports.len() < circuits.len() {
        // `read_frame` fails on any line that is not one complete frame, so
        // mid-line interleaving cannot sneak past this loop.
        let frame = client.read_frame().expect("every line is a complete frame");
        let id = frame.id();
        let at = *stage.get(&id).expect("frame for a job this connection submitted");
        match frame {
            StreamFrame::Accepted { .. } => {
                assert_eq!(at, 0, "accepted must be job {id}'s first frame");
                stage.insert(id, 1);
            }
            StreamFrame::Queued { .. } => {
                assert_eq!(at, 1, "queued must directly follow accepted for job {id}");
                stage.insert(id, 2);
            }
            StreamFrame::Progress { .. } => {
                assert_eq!(at, 2, "progress may only follow queued for job {id}");
            }
            StreamFrame::Report { response, .. } => {
                assert_eq!(at, 2, "report must terminate job {id}'s stream");
                stage.insert(id, 3);
                reports.push(*response);
            }
        }
    }

    for response in &reports {
        assert_eq!(response.status, "ok");
        assert!(response.report.is_some());
    }

    client.shutdown().expect("acknowledged");
    service.join();
}

/// A second `place` carrying a stream id that is still in flight on the same
/// connection is refused with an error report frame, while the original job
/// still completes normally.
#[test]
fn duplicate_in_flight_stream_id_is_refused() {
    let service = start(ServeMode::EventLoop);
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");

    let first = fast_spec("miller_v2", 5).with_stream(7);
    let second = fast_spec("buffer", 6).with_stream(7);
    // One write so both lines land in the same read batch: the duplicate is
    // parsed while the first job is still pending.
    client
        .send_line(&format!("{}\n{}", first.to_json_line(), second.to_json_line()))
        .expect("sends");

    let mut errors = 0;
    let mut oks = 0;
    while errors + oks < 2 {
        if let StreamFrame::Report { id, response } = client.read_frame().expect("parses") {
            assert_eq!(id, 7);
            match response.status.as_str() {
                "error" => {
                    let message = response.error.as_deref().unwrap_or_default();
                    assert!(
                        message.contains("already in flight"),
                        "unexpected error message: {message}"
                    );
                    errors += 1;
                }
                "ok" => {
                    assert_eq!(response.circuit.as_deref(), Some("miller_v2"));
                    oks += 1;
                }
                other => panic!("unexpected report status {other}"),
            }
        }
    }
    assert_eq!((errors, oks), (1, 1));

    client.shutdown().expect("acknowledged");
    service.join();
}

/// The determinism contract survives both the mode switch and the streaming
/// path: for every bundled circuit, a blocking solve on a legacy-threads
/// service and a streamed solve on an event-loop service (separate caches,
/// both cold) produce byte-identical report bodies.
#[test]
fn streamed_reports_are_byte_identical_to_blocking_on_all_bundled_circuits() {
    let blocking_service = start(ServeMode::LegacyThreads);
    let streaming_service = start(ServeMode::EventLoop);
    let mut blocking = ServiceClient::connect(blocking_service.local_addr()).expect("connects");
    let mut streaming = ServiceClient::connect(streaming_service.local_addr()).expect("connects");

    for (i, name) in benchmarks::names().iter().enumerate() {
        let spec = JobSpec::bundled(*name)
            .with_seed(100 + i as u64)
            .with_restarts(1)
            .with_engines([PortfolioEngine::Deterministic])
            .with_fast(true);

        let cold = blocking.place(&spec).expect("blocking solve");
        let streamed = streaming.place_streaming(&spec, |_| {}).expect("streamed solve");

        assert!(!cold.cache_hit && !streamed.cache_hit, "both caches start cold for {name}");
        assert_eq!(cold.seed, streamed.seed, "derived seed must match for {name}");
        assert_eq!(
            cold.report, streamed.report,
            "streamed report body must be byte-identical to blocking for {name}"
        );
    }

    blocking.shutdown().expect("acknowledged");
    streaming.shutdown().expect("acknowledged");
    blocking_service.join();
    streaming_service.join();
}
