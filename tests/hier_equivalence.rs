//! Equivalence and superiority pins of the hierarchical pipeline:
//!
//! 1. the refactored `DeterministicPlacer` (now the pure-enumeration
//!    configuration of `HierPlacer`) reproduces the pre-refactor results
//!    **bit-identically** on every bundled circuit — the golden values below
//!    were captured from the recursive implementation before the refactor;
//! 2. `HierPlacer` without a sub-solver and `DeterministicPlacer` agree
//!    exactly, down to the placement;
//! 3. hybrid results are independent of the worker thread count;
//! 4. the hier engine never loses to the deterministic engine on bounding
//!    area (the driver's enumeration fallback makes this structural).

use analog_layout_synthesis::circuit::benchmarks;
use analog_layout_synthesis::portfolio::{
    run_engine_once, run_portfolio, PortfolioConfig, PortfolioEngine, RestartSettings,
};
use analog_layout_synthesis::shapefn::hier::{BTreeAnnealSolver, HierOptions, HierPlacer};
use analog_layout_synthesis::shapefn::{DeterministicPlacer, ShapeModel};

/// Golden results of the pre-refactor `DeterministicPlacer`, one row per
/// bundled circuit: enhanced `(w, h)`, enhanced root-shape count, the full
/// enhanced staircase, regular `(w, h)`, regular root-shape count, and the
/// wirelength of the enhanced placement.
#[allow(clippy::type_complexity)]
fn golden() -> Vec<(&'static str, (i64, i64), usize, Vec<(i64, i64)>, (i64, i64), usize, f64)> {
    vec![
        (
            "miller_opamp_fig6",
            (238, 90),
            12,
            vec![
                (90, 270),
                (96, 238),
                (108, 218),
                (116, 214),
                (120, 212),
                (130, 172),
                (150, 164),
                (160, 148),
                (170, 140),
                (186, 130),
                (226, 108),
                (238, 90),
            ],
            (238, 90),
            12,
            726.0,
        ),
        (
            "miller_v2",
            (835, 356),
            18,
            vec![
                (350, 994),
                (395, 971),
                (429, 901),
                (453, 707),
                (492, 638),
                (595, 629),
                (660, 607),
                (663, 534),
                (686, 517),
                (699, 471),
                (777, 447),
                (796, 423),
                (835, 356),
                (1042, 308),
                (1120, 285),
                (1127, 284),
                (1443, 275),
                (1508, 264),
            ],
            (350, 994),
            19,
            3882.0,
        ),
        (
            "comparator_v2",
            (383, 1316),
            14,
            vec![
                (199, 2582),
                (308, 2560),
                (358, 2026),
                (378, 1338),
                (383, 1316),
                (542, 1192),
                (716, 1101),
                (756, 710),
                (880, 680),
                (900, 596),
                (1278, 534),
                (1512, 443),
                (1636, 351),
                (1696, 329),
            ],
            (383, 1316),
            12,
            5869.0,
        ),
        (
            "folded_cascode",
            (581, 684),
            24,
            vec![
                (305, 1381),
                (306, 1369),
                (311, 1336),
                (316, 1278),
                (330, 1207),
                (340, 1176),
                (396, 1162),
                (463, 1038),
                (489, 1020),
                (529, 781),
                (570, 726),
                (581, 684),
                (605, 668),
                (621, 650),
                (651, 637),
                (713, 602),
                (754, 567),
                (966, 525),
                (971, 496),
                (974, 472),
                (1087, 442),
                (1128, 401),
                (1172, 396),
                (1236, 338),
            ],
            (529, 803),
            25,
            6534.0,
        ),
        (
            "buffer",
            (460, 1850),
            25,
            vec![
                (271, 3306),
                (317, 3128),
                (352, 2536),
                (377, 2388),
                (450, 1955),
                (460, 1850),
                (546, 1735),
                (602, 1661),
                (613, 1521),
                (704, 1298),
                (825, 1278),
                (848, 1172),
                (908, 969),
                (1001, 949),
                (1142, 830),
                (1379, 675),
                (1512, 669),
                (1573, 620),
                (1646, 594),
                (1647, 568),
                (1921, 527),
                (2059, 483),
                (2101, 446),
                (2394, 402),
                (2641, 344),
            ],
            (951, 995),
            24,
            27201.0,
        ),
        (
            "biasynth",
            (1851, 796),
            25,
            vec![
                (348, 4552),
                (373, 4355),
                (443, 3995),
                (501, 3586),
                (584, 3413),
                (639, 2571),
                (695, 2279),
                (815, 2140),
                (971, 1811),
                (1033, 1521),
                (1192, 1432),
                (1257, 1315),
                (1349, 1245),
                (1571, 1117),
                (1672, 1024),
                (1814, 887),
                (1851, 796),
                (2348, 691),
                (3065, 584),
                (3370, 509),
                (3609, 481),
                (3916, 461),
                (4333, 403),
                (4901, 360),
                (5379, 309),
            ],
            (5718, 316),
            25,
            32686.0,
        ),
        (
            "lnamixbias",
            (4844, 425),
            24,
            vec![
                (359, 6050),
                (395, 5588),
                (472, 4901),
                (532, 4022),
                (593, 3683),
                (723, 3148),
                (799, 2645),
                (963, 2227),
                (1101, 2025),
                (1260, 1860),
                (1425, 1681),
                (1586, 1513),
                (1756, 1290),
                (1997, 1183),
                (2154, 981),
                (2367, 929),
                (2700, 820),
                (2891, 728),
                (3222, 678),
                (4082, 591),
                (4512, 508),
                (4844, 425),
                (5493, 376),
                (6419, 347),
            ],
            (362, 6497),
            25,
            114691.0,
        ),
    ]
}

#[test]
fn deterministic_placer_reproduces_pre_refactor_results_bit_identically() {
    for (name, e_dims, e_shapes, e_staircase, r_dims, r_shapes, wirelength) in golden() {
        let circuit = benchmarks::by_name(name).expect("bundled name resolves");
        let placer = DeterministicPlacer::new(&circuit);
        let enhanced = placer.run(ShapeModel::Enhanced);
        assert_eq!((enhanced.dims.w, enhanced.dims.h), e_dims, "{name}: enhanced dims");
        assert_eq!(enhanced.root_shapes, e_shapes, "{name}: enhanced root shapes");
        assert_eq!(enhanced.staircase, e_staircase, "{name}: enhanced staircase");
        let metrics =
            enhanced.placement.as_ref().expect("enhanced placement").metrics(&circuit.netlist);
        assert_eq!(metrics.wirelength, wirelength, "{name}: placement wirelength");
        let regular = placer.run(ShapeModel::Regular);
        assert_eq!((regular.dims.w, regular.dims.h), r_dims, "{name}: regular dims");
        assert_eq!(regular.root_shapes, r_shapes, "{name}: regular root shapes");
    }
}

#[test]
fn pure_hier_placer_and_deterministic_placer_agree_exactly() {
    for name in benchmarks::names() {
        let circuit = benchmarks::by_name(name).expect("bundled name resolves");
        let deterministic = DeterministicPlacer::new(&circuit).run(ShapeModel::Enhanced);
        let hier = HierPlacer::new(&circuit).run();
        assert_eq!(deterministic.dims, hier.dims, "{name}");
        assert_eq!(deterministic.staircase, hier.staircase, "{name}");
        assert_eq!(deterministic.root_shapes, hier.root_shapes, "{name}");
        assert_eq!(deterministic.placement.as_ref(), Some(&hier.placement), "{name}");
        assert_eq!(hier.annealed_nodes, 0, "{name}: pure configuration must not anneal");
    }
}

#[test]
fn hybrid_results_are_independent_of_the_thread_count() {
    let circuit = benchmarks::folded_cascode();
    let config = PortfolioConfig::new(77)
        .with_restarts(2)
        .with_engines([PortfolioEngine::Hier])
        .with_fast_schedule(true);
    let one = run_portfolio(&circuit, &config.clone().with_threads(1));
    let eight = run_portfolio(&circuit, &config.with_threads(8));
    assert_eq!(one.best_cost(), eight.best_cost());
    assert_eq!(one.restarts.len(), eight.restarts.len());
    for (a, b) in one.restarts.iter().zip(&eight.restarts) {
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.placement, b.placement);
    }

    // and directly, outside the portfolio: two hybrid runs are bit-identical
    let run = || {
        HierPlacer::new(&circuit)
            .with_options(HierOptions::default().with_seed(9).with_fast_schedule(true))
            .with_sub_solver(Box::new(BTreeAnnealSolver))
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.dims, b.dims);
    assert_eq!(a.staircase, b.staircase);
    assert_eq!(a.placement, b.placement);
}

#[test]
fn hier_engine_matches_or_beats_deterministic_area_on_every_bundled_circuit() {
    let settings = RestartSettings { fast_schedule: true, ..RestartSettings::default() };
    for name in benchmarks::names() {
        let circuit = benchmarks::by_name(name).expect("bundled name resolves");
        let deterministic = run_engine_once(&circuit, PortfolioEngine::Deterministic, 7, &settings);
        let hier = run_engine_once(&circuit, PortfolioEngine::Hier, 7, &settings);
        assert!(
            hier.metrics.bounding_area <= deterministic.metrics.bounding_area,
            "{name}: hier {} lost to deterministic {}",
            hier.metrics.bounding_area,
            deterministic.metrics.bounding_area,
        );
        assert_eq!(hier.metrics.overlap_area, 0, "{name}");
        assert!(hier.placement.is_complete(), "{name}");
    }
}
