//! End-to-end placement-service tests over the whole stack: ephemeral-port
//! servers, concurrent mixed jobs (bundled names and inline `.apls` text),
//! and the determinism contract — responses for the same (circuit, config,
//! seed) are byte-identical regardless of worker count, arrival order, or
//! whether the cache served them.

use analog_layout_synthesis::circuit::benchmarks;
use analog_layout_synthesis::io::serialize_circuit;
use analog_layout_synthesis::portfolio::PortfolioEngine;
use analog_layout_synthesis::service::{JobSpec, PlacementService, ServiceClient, ServiceConfig};

/// A mixed workload: different circuits, sources, engine subsets and seeds —
/// every job pins its seed so reports are comparable across services.
fn mixed_jobs() -> Vec<JobSpec> {
    let inline_comparator = serialize_circuit(&benchmarks::comparator_v2());
    let inline_generated = serialize_circuit(&benchmarks::generate(
        "load_test",
        benchmarks::GeneratorConfig { module_count: 18, seed: 77, ..Default::default() },
    ));
    vec![
        JobSpec::bundled("miller_opamp_fig6").with_seed(11).with_restarts(2).with_fast(true),
        JobSpec::bundled("miller_v2")
            .with_seed(7)
            .with_restarts(2)
            .with_engines([PortfolioEngine::SequencePair, PortfolioEngine::Hier])
            .with_fast(true),
        JobSpec::bundled("folded_cascode")
            .with_seed(2)
            .with_restarts(1)
            .with_engines([PortfolioEngine::Deterministic])
            .with_fast(true),
        JobSpec::inline(inline_comparator)
            .with_seed(5)
            .with_restarts(2)
            .with_engines([PortfolioEngine::HbTree])
            .with_fast(true),
        JobSpec::inline(inline_generated)
            .with_seed(3)
            .with_restarts(1)
            .with_engines([PortfolioEngine::SequencePair])
            .with_fast(true),
    ]
}

#[test]
fn responses_are_independent_of_worker_count_and_arrival_order() {
    let jobs = mixed_jobs();

    // 4 workers, all jobs submitted concurrently from separate connections
    let concurrent = {
        let service =
            PlacementService::start(ServiceConfig { workers: 4, ..ServiceConfig::default() })
                .expect("service starts");
        let addr = service.local_addr();
        let handles: Vec<_> = jobs
            .iter()
            .cloned()
            .map(|spec| {
                std::thread::spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("connects");
                    client.place(&spec).expect("round-trips")
                })
            })
            .collect();
        let responses: Vec<_> = handles.into_iter().map(|h| h.join().expect("no panic")).collect();
        service.shutdown();
        service.join();
        responses
    };

    // 1 worker, same jobs submitted serially in reverse order
    let serial = {
        let service =
            PlacementService::start(ServiceConfig { workers: 1, ..ServiceConfig::default() })
                .expect("service starts");
        let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
        let mut responses: Vec<_> =
            jobs.iter().rev().map(|spec| client.place(spec).expect("round-trips")).collect();
        responses.reverse();
        service.shutdown();
        service.join();
        responses
    };

    for ((job, concurrent), serial) in jobs.iter().zip(&concurrent).zip(&serial) {
        assert!(concurrent.is_ok() && serial.is_ok(), "{job:?}");
        assert_eq!(concurrent.seed, serial.seed, "{job:?}");
        let a = concurrent.report.as_deref().expect("report");
        let b = serial.report.as_deref().expect("report");
        assert_eq!(a, b, "report bodies must be byte-identical for {job:?}");
        assert!(a.contains("\"wall_ms\": null"), "service reports carry no timings");
    }
}

#[test]
fn repeat_requests_hit_the_cache_with_identical_bodies() {
    let service = PlacementService::start(ServiceConfig { workers: 2, ..ServiceConfig::default() })
        .expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");

    let spec = JobSpec::bundled("miller_opamp_fig6").with_seed(42).with_restarts(2).with_fast(true);
    let first = client.place(&spec).expect("round-trips");
    let second = client.place(&spec).expect("round-trips");
    assert!(first.is_ok() && !first.cache_hit);
    assert!(second.is_ok() && second.cache_hit, "identical resubmission must be served from cache");
    assert_eq!(first.report, second.report, "cached body is the original, byte for byte");

    // a different seed is a different cache key
    let third = client.place(&spec.clone().with_seed(43)).expect("round-trips");
    assert!(third.is_ok() && !third.cache_hit);
    assert_ne!(first.report, third.report);

    // …and so is a different config with the same seed
    let fourth = client.place(&spec.with_restarts(1)).expect("round-trips");
    assert!(fourth.is_ok() && !fourth.cache_hit);

    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"jobs_completed\":4"), "{stats}");
    assert!(stats.contains("\"cache_hits\":1"), "{stats}");

    service.shutdown();
    service.join();
}

#[test]
fn inline_and_bundled_sources_share_cache_entries() {
    // The cache keys on canonical circuit content, not on how it was sent:
    // an inline copy of a bundled circuit hits the bundled run's entry.
    let service = PlacementService::start(ServiceConfig::default()).expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");

    let by_name = JobSpec::bundled("comparator_v2")
        .with_seed(8)
        .with_restarts(1)
        .with_engines([PortfolioEngine::SequencePair])
        .with_fast(true);
    let inline = JobSpec::inline(serialize_circuit(&benchmarks::comparator_v2()))
        .with_seed(8)
        .with_restarts(1)
        .with_engines([PortfolioEngine::SequencePair])
        .with_fast(true);

    let first = client.place(&by_name).expect("round-trips");
    let second = client.place(&inline).expect("round-trips");
    assert!(first.is_ok() && !first.cache_hit);
    assert!(second.is_ok() && second.cache_hit, "same canonical circuit, same cache entry");
    assert_eq!(first.report, second.report);

    service.shutdown();
    service.join();
}
