//! Saturation and resource-bound tests for the service core: hundreds of
//! connections held open against the event-loop reactor with streamed jobs
//! interleaved among them (stats counters must reconcile), and the
//! legacy-threads handler-reaping regression — ten thousand short-lived
//! connections must not accumulate ten thousand `JoinHandle`s or threads.

use std::net::TcpStream;

use analog_layout_synthesis::portfolio::PortfolioEngine;
use analog_layout_synthesis::service::{
    JobSpec, PlacementService, ServeMode, ServiceClient, ServiceConfig, StreamFrame,
};

/// Extracts an integer metric/field value from the `stats` JSON by name.
/// Good enough for the flat `"name":123` shapes the stats envelope uses.
fn metric(stats: &str, name: &str) -> i64 {
    let needle = format!("\"{name}\":");
    let at = stats.find(&needle).unwrap_or_else(|| panic!("stats lacks {name}: {stats}"));
    let digits: String = stats[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect();
    digits.parse().unwrap_or_else(|_| panic!("unparsable {name} in {stats}"))
}

/// 256 connections held open at once against the reactor; every 16th one
/// streams a real job while the rest sit idle. All jobs complete, and the
/// stats counters reconcile with what the clients observed.
#[test]
fn event_loop_holds_256_connections_with_interleaved_streaming() {
    const HELD: usize = 256;
    const STREAMERS: usize = 16;

    let service = PlacementService::start(ServiceConfig {
        mode: ServeMode::EventLoop,
        workers: 2,
        queue_capacity: 64,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let addr = service.local_addr();

    let mut clients: Vec<ServiceClient> =
        (0..HELD).map(|_| ServiceClient::connect(addr).expect("connects")).collect();

    // Submit from every 16th connection first so the jobs run concurrently,
    // then collect each stream — frames interleave server-side while idle
    // connections stay registered.
    let mut submitted: Vec<(usize, u64)> = Vec::new();
    for i in (0..HELD).step_by(HELD / STREAMERS) {
        let spec = JobSpec::bundled("miller_opamp_fig6")
            .with_seed(1000 + i as u64)
            .with_restarts(1)
            .with_engines([PortfolioEngine::Deterministic])
            .with_fast(true);
        let id = clients[i].submit_streaming(&spec).expect("submits");
        submitted.push((i, id));
    }

    let mut frames_seen = 0u64;
    for (i, id) in &submitted {
        loop {
            let frame = clients[*i].read_frame().expect("complete frame");
            assert_eq!(frame.id(), *id, "connection {i} must only see its own stream");
            frames_seen += 1;
            if let StreamFrame::Report { response, .. } = frame {
                assert_eq!(response.status, "ok");
                assert!(!response.cache_hit, "seeds differ, so every job is a real solve");
                break;
            }
        }
    }

    let stats = clients[0].stats().expect("stats");
    assert_eq!(metric(&stats, "connections"), HELD as i64);
    assert_eq!(
        metric(&stats, "poller_registered_fds"),
        2 + HELD as i64,
        "listener + wake pipe + one fd per held connection"
    );
    assert_eq!(metric(&stats, "jobs_completed"), STREAMERS as i64);
    assert_eq!(metric(&stats, "handler_threads"), 0, "the reactor spawns no handler threads");
    assert!(
        metric(&stats, "frames_sent_total") >= frames_seen as i64,
        "server counted fewer frames than clients received: {stats}"
    );
    assert_eq!(metric(&stats, "errors_total"), 0);
    assert_eq!(metric(&stats, "retries_total"), 0);
    assert!(metric(&stats, "readiness_wakeups_total") > 0);

    clients[0].shutdown().expect("acknowledged");
    drop(clients);
    service.join();
}

/// The legacy-threads regression: 10k connections that open and immediately
/// close must not leave 10k `JoinHandle`s (or live threads) behind — the
/// acceptor reaps finished handlers opportunistically, so the gauge stays
/// far below the connection count.
#[test]
fn legacy_threads_reap_handlers_across_10k_short_lived_connections() {
    let service = PlacementService::start(ServiceConfig {
        mode: ServeMode::LegacyThreads,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let addr = service.local_addr();

    // 100 batches of 100: batching amortizes the per-EOF scheduling
    // round-trip on one core while still churning 10k distinct connections.
    for _ in 0..100 {
        let batch: Vec<TcpStream> =
            (0..100).map(|_| TcpStream::connect(addr).expect("connects")).collect();
        drop(batch);
    }

    let mut client = ServiceClient::connect(addr).expect("connects");
    let stats = client.stats().expect("stats");
    let handler_threads = metric(&stats, "handler_threads");
    assert!(
        handler_threads <= 256,
        "handler JoinHandles must be reaped, found {handler_threads} live after 10k connections"
    );

    client.shutdown().expect("acknowledged");
    service.join();
}

/// The same churn against the reactor: closed connections must leave the
/// poller's fd table (slots are recycled), so after thousands of
/// accept/close cycles only the listener, the wake pipe and the one live
/// stats connection remain registered.
#[test]
fn event_loop_recycles_slots_across_short_lived_connections() {
    let service =
        PlacementService::start(ServiceConfig { mode: ServeMode::EventLoop, ..Default::default() })
            .expect("service starts");
    let addr = service.local_addr();

    for _ in 0..20 {
        let batch: Vec<TcpStream> =
            (0..100).map(|_| TcpStream::connect(addr).expect("connects")).collect();
        drop(batch);
    }

    let mut client = ServiceClient::connect(addr).expect("connects");
    // The reactor processes the tail of hangups asynchronously; poll the
    // gauge until it settles instead of racing it.
    let mut fds = i64::MAX;
    for _ in 0..50 {
        fds = metric(&client.stats().expect("stats"), "poller_registered_fds");
        if fds <= 8 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    assert!(
        (3..=8).contains(&fds),
        "expected ~3 registered fds (listener, wake pipe, this connection), found {fds}"
    );
    assert_eq!(metric(&client.stats().expect("stats"), "handler_threads"), 0);

    client.shutdown().expect("acknowledged");
    service.join();
}
