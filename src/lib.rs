//! Analog layout synthesis — reproduction of the DATE 2009 survey
//! *"Analog Layout Synthesis — Recent Advances in Topological Approaches"*
//! (Graeb et al.).
//!
//! This crate is a thin re-export of [`apls_core`], the facade of the
//! workspace, so that the examples, integration tests and the `apls` CLI at
//! the repository root have a single dependency. See the README for a guided
//! tour and DESIGN.md / EXPERIMENTS.md for the system inventory and the
//! experiment index.
//!
//! # Quickstart
//!
//! ```
//! use analog_layout_synthesis::{AnalogPlacer, Engine};
//! use analog_layout_synthesis::circuit::benchmarks::miller_opamp_fig6;
//!
//! let circuit = miller_opamp_fig6();
//! let report = AnalogPlacer::new(Engine::HbTree)
//!     .with_fast_schedule(true)
//!     .place(&circuit);
//! assert_eq!(report.metrics.overlap_area, 0);
//! ```
//!
//! # Best-of-portfolio
//!
//! [`AnalogPlacer::place_portfolio`] races all four engines — the three of
//! the survey plus the hierarchical cross-engine hybrid (`hier`) —
//! across seeded annealing restarts in parallel (see [`portfolio`]):
//!
//! ```
//! use analog_layout_synthesis::{AnalogPlacer, Engine};
//! use analog_layout_synthesis::circuit::benchmarks::miller_opamp_fig6;
//!
//! let circuit = miller_opamp_fig6();
//! let report = AnalogPlacer::new(Engine::HbTree)
//!     .with_seed(42)
//!     .with_fast_schedule(true)
//!     .place_portfolio(&circuit, 2);
//! assert!(report.restarts.iter().all(|r| report.best_cost() <= r.cost));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use apls_core::*;
