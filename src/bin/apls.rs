//! `apls` — analog placement from the command line.
//!
//! Without a subcommand, selects a bundled benchmark circuit, runs a single
//! engine or the full multi-start portfolio, prints a summary, and optionally
//! writes the portfolio report as JSON and the winning placement as SVG:
//!
//! ```text
//! apls --list
//! apls --circuit miller_opamp_fig6 --restarts 8 --seed 42 --json report.json --svg best.svg
//! apls --circuit folded_cascode --engine hbtree --restarts 4 --fast
//! ```
//!
//! Subcommands expose the `.apls` circuit format and the placement service:
//!
//! ```text
//! apls serve --port 7171 --workers 4          # placement daemon (JSON lines over TCP)
//! apls submit --addr 127.0.0.1:7171 --circuit miller_v2 --seed 7 --json report.json
//! apls submit --addr 127.0.0.1:7171 --op shutdown
//! apls convert --circuit buffer --out buffer.apls
//! apls convert --in custom.apls --out -       # parse + canonicalise
//! apls gen --modules 200 --seed 9 --out big.apls
//! ```

use analog_layout_synthesis::circuit::benchmarks::{self, GeneratorConfig};
use analog_layout_synthesis::io::{parse_circuit, serialize_circuit};
use analog_layout_synthesis::portfolio::{
    run_portfolio_traced, EarlyStop, PortfolioConfig, PortfolioEngine,
};
use analog_layout_synthesis::service::json::Json;
use analog_layout_synthesis::service::{
    FaultPlan, JobSpec, JournalConfig, PlacementService, RetryPolicy, ServeMode, ServiceClient,
    ServiceConfig, StreamFrame,
};
use analog_layout_synthesis::telemetry::{
    RecordingCollector, StreamCollector, Telemetry, TraceSummary,
};
use clap::{Arg, ArgAction, ArgMatches, Command};
use std::process::ExitCode;
use std::sync::Arc;

fn cli() -> Command {
    Command::new("apls")
        .about("Analog placement portfolio runner (DATE 2009 survey reproduction)")
        .version(env!("CARGO_PKG_VERSION"))
        .arg(
            Arg::new("circuit")
                .long("circuit")
                .short('c')
                .value_name("NAME")
                .default_value("miller_opamp_fig6")
                .help("Benchmark circuit to place (see --list)"),
        )
        .arg(
            Arg::new("engine")
                .long("engine")
                .short('e')
                .value_name("ENGINE")
                .default_value("portfolio")
                .help("portfolio, seqpair, hbtree, deterministic, hier, or tempering"),
        )
        .arg(
            Arg::new("restarts")
                .long("restarts")
                .short('k')
                .value_name("K")
                .default_value("8")
                .help("Annealing restarts per stochastic engine"),
        )
        .arg(
            Arg::new("seed")
                .long("seed")
                .short('s')
                .value_name("SEED")
                .default_value("1")
                .help("Root seed; every restart derives its own seed from it"),
        )
        .arg(
            Arg::new("threads")
                .long("threads")
                .short('t')
                .value_name("N")
                .default_value("0")
                .help("Worker threads (0 = one per core); never changes results"),
        )
        .arg(
            Arg::new("wirelength-weight")
                .long("wirelength-weight")
                .short('w')
                .value_name("W")
                .default_value("0.5")
                .help("Weight of the wirelength term in the cost"),
        )
        .arg(
            Arg::new("hier-anneal-threshold")
                .long("hier-anneal-threshold")
                .value_name("N")
                .default_value("5")
                .help("hier engine: anneal hierarchy nodes with more than N modules"),
        )
        .arg(
            Arg::new("plateau")
                .long("plateau")
                .value_name("WINDOW")
                .help("Stop early after WINDOW generations without improvement"),
        )
        .arg(
            Arg::new("fast")
                .long("fast")
                .action(ArgAction::SetTrue)
                .help("Use the short smoke-test annealing schedule"),
        )
        .arg(
            Arg::new("json")
                .long("json")
                .value_name("FILE")
                .help("Write the full report as JSON ('-' for stdout)"),
        )
        .arg(
            Arg::new("svg")
                .long("svg")
                .value_name("FILE")
                .help("Write the winning placement as SVG"),
        )
        .arg(
            Arg::new("trace")
                .long("trace")
                .value_name("FILE")
                .help("Record a Chrome trace of the run (.json = trace document, else JSON lines)"),
        )
        .arg(
            Arg::new("list")
                .long("list")
                .action(ArgAction::SetTrue)
                .help("List the bundled benchmark circuits and exit"),
        )
        .subcommand(serve_command())
        .subcommand(submit_command())
        .subcommand(top_command())
        .subcommand(convert_command())
        .subcommand(gen_command())
        .subcommand(trace_command())
}

fn serve_command() -> Command {
    Command::new("serve")
        .about("Run the placement service (JSON lines over TCP)")
        .arg(
            Arg::new("host")
                .long("host")
                .value_name("HOST")
                .default_value("127.0.0.1")
                .help("Interface to bind"),
        )
        .arg(
            Arg::new("port")
                .long("port")
                .short('p')
                .value_name("PORT")
                .default_value("7171")
                .help("Port to bind (0 = pick an ephemeral port and print it)"),
        )
        .arg(
            Arg::new("workers")
                .long("workers")
                .value_name("N")
                .default_value("0")
                .help("Placement worker threads (0 = one per core)"),
        )
        .arg(
            Arg::new("queue")
                .long("queue")
                .value_name("DEPTH")
                .default_value("64")
                .help("Bounded job-queue depth; a full queue answers 'retry'"),
        )
        .arg(
            Arg::new("cache")
                .long("cache")
                .value_name("ENTRIES")
                .default_value("128")
                .help("Result-cache entries, keyed by (circuit, config, seed); 0 disables"),
        )
        .arg(
            Arg::new("seed")
                .long("seed")
                .short('s')
                .value_name("SEED")
                .default_value("1")
                .help("Root of the service seed stream for jobs without a pinned seed"),
        )
        .arg(
            Arg::new("trace")
                .long("trace")
                .value_name("FILE")
                .help("Stream request-lifecycle trace events to FILE as JSON lines"),
        )
        .arg(
            Arg::new("journal")
                .long("journal")
                .value_name("FILE")
                .help("Durable job journal: after a crash, a restart on the same file restores completed reports and replays incomplete jobs byte-identically"),
        )
        .arg(
            Arg::new("journal-sync-ms")
                .long("journal-sync-ms")
                .value_name("MS")
                .help("Batch journal fsyncs every MS milliseconds instead of per record (cheaper, may lose the last MS of records on power loss)"),
        )
        .arg(
            Arg::new("max-connections")
                .long("max-connections")
                .value_name("N")
                .help("Concurrent connections served at once; beyond this, new connections get an error line (default 1024)"),
        )
        .arg(
            Arg::new("job-delay-ms")
                .long("job-delay-ms")
                .value_name("MS")
                .help("Testing: add MS milliseconds of artificial latency to every computed (non-cached) job"),
        )
        .arg(
            Arg::new("fault-plan")
                .long("fault-plan")
                .value_name("FILE")
                .help("Deterministic fault-injection plan (tests/CI only; requires APLS_FAULT_INJECTION=1)"),
        )
        .arg(
            Arg::new("event-loop")
                .long("event-loop")
                .action(ArgAction::SetTrue)
                .help("Serve connections from one readiness-driven reactor thread (the default)"),
        )
        .arg(
            Arg::new("legacy-threads")
                .long("legacy-threads")
                .action(ArgAction::SetTrue)
                .help("Escape hatch: one blocking handler thread per connection (the pre-reactor architecture)"),
        )
        .arg(
            Arg::new("metrics-addr")
                .long("metrics-addr")
                .value_name("HOST:PORT")
                .help("Serve Prometheus /metrics, /healthz and /readyz on a sidecar HTTP listener (port 0 = ephemeral, printed at startup)"),
        )
        .arg(
            Arg::new("flight-recorder")
                .long("flight-recorder")
                .value_name("FILE")
                .help("Spill the flight-recorder ring to FILE.a/FILE.b as it records, and dump to FILE on panic, journal failure or the 'dump' op (default: a file under the temp dir, ring only)"),
        )
        .arg(
            Arg::new("flight-recorder-events")
                .long("flight-recorder-events")
                .value_name("N")
                .help("Flight-recorder ring capacity in events (default 2048; 0 disables the recorder)"),
        )
}

fn submit_command() -> Command {
    Command::new("submit")
        .about("Submit one request to a running placement service")
        .arg(
            Arg::new("addr")
                .long("addr")
                .short('a')
                .value_name("HOST:PORT")
                .default_value("127.0.0.1:7171")
                .help("Service address"),
        )
        .arg(
            Arg::new("op")
                .long("op")
                .value_name("OP")
                .default_value("place")
                .help("place, ping, stats, dump, or shutdown"),
        )
        .arg(
            Arg::new("circuit")
                .long("circuit")
                .short('c')
                .value_name("NAME")
                .help("Bundled benchmark circuit to place"),
        )
        .arg(
            Arg::new("file")
                .long("file")
                .short('f')
                .value_name("FILE")
                .help("Inline circuit: a .apls file to embed in the request"),
        )
        .arg(
            Arg::new("seed").long("seed").short('s').value_name("SEED").help(
                "Pin the job's root seed (otherwise the service derives one from the job index)",
            ),
        )
        .arg(
            Arg::new("restarts")
                .long("restarts")
                .short('k')
                .value_name("K")
                .help("Annealing restarts per stochastic engine"),
        )
        .arg(
            Arg::new("engine")
                .long("engine")
                .short('e')
                .value_name("ENGINE")
                .default_value("portfolio")
                .help("portfolio, seqpair, hbtree, deterministic, hier, or tempering"),
        )
        .arg(
            Arg::new("wirelength-weight")
                .long("wirelength-weight")
                .short('w')
                .value_name("W")
                .help("Weight of the wirelength term in the cost"),
        )
        .arg(
            Arg::new("hier-anneal-threshold")
                .long("hier-anneal-threshold")
                .value_name("N")
                .help("hier engine: anneal hierarchy nodes with more than N modules"),
        )
        .arg(
            Arg::new("plateau")
                .long("plateau")
                .value_name("WINDOW")
                .help("Stop early after WINDOW generations without improvement"),
        )
        .arg(
            Arg::new("threads")
                .long("threads")
                .short('t')
                .value_name("N")
                .help("Rayon threads inside the job (service default: 1)"),
        )
        .arg(
            Arg::new("fast")
                .long("fast")
                .action(ArgAction::SetTrue)
                .help("Use the short smoke-test annealing schedule"),
        )
        .arg(
            Arg::new("deadline-ms")
                .long("deadline-ms")
                .value_name("MS")
                .help("Per-job deadline; a job that exceeds it answers status=timeout"),
        )
        .arg(
            Arg::new("retries")
                .long("retries")
                .value_name("N")
                .help("Retry transient failures and 'retry' answers up to N total attempts (bounded exponential backoff with deterministic jitter)"),
        )
        .arg(
            Arg::new("json")
                .long("json")
                .value_name("FILE")
                .help("Write the job's report body as JSON ('-' for stdout)"),
        )
        .arg(
            Arg::new("stream")
                .long("stream")
                .action(ArgAction::SetTrue)
                .help("Stream tagged progress frames (accepted, queued, per-restart progress) while the job runs; the final report is byte-identical"),
        )
}

fn convert_command() -> Command {
    Command::new("convert")
        .about("Convert circuits to canonical .apls text")
        .arg(
            Arg::new("circuit")
                .long("circuit")
                .short('c')
                .value_name("NAME")
                .help("Bundled benchmark circuit to export"),
        )
        .arg(
            Arg::new("in")
                .long("in")
                .short('i')
                .value_name("FILE")
                .help(".apls file to parse and canonicalise"),
        )
        .arg(
            Arg::new("out")
                .long("out")
                .short('o')
                .value_name("FILE")
                .default_value("-")
                .help("Output file ('-' for stdout)"),
        )
}

fn trace_command() -> Command {
    Command::new("trace")
        .about("Summarise a recorded trace file (JSON lines or Chrome trace document)")
        .arg(
            Arg::new("file")
                .long("file")
                .short('f')
                .value_name("FILE")
                .help("Trace file written by --trace or serve --trace"),
        )
}

fn top_command() -> Command {
    Command::new("top")
        .about("Live terminal dashboard over a running placement service (polls 'stats')")
        .arg(
            Arg::new("addr")
                .long("addr")
                .short('a')
                .value_name("HOST:PORT")
                .default_value("127.0.0.1:7171")
                .help("Service address"),
        )
        .arg(
            Arg::new("interval-ms")
                .long("interval-ms")
                .value_name("MS")
                .default_value("1000")
                .help("Poll interval in milliseconds"),
        )
        .arg(
            Arg::new("iterations")
                .long("iterations")
                .short('n')
                .value_name("N")
                .default_value("0")
                .help("Stop after N refreshes (0 = run until interrupted)"),
        )
        .arg(
            Arg::new("no-clear")
                .long("no-clear")
                .action(ArgAction::SetTrue)
                .help("Append each refresh instead of redrawing the screen (for logs/pipes)"),
        )
}

fn gen_command() -> Command {
    Command::new("gen")
        .about("Generate a synthetic analog circuit as .apls text")
        .arg(
            Arg::new("modules")
                .long("modules")
                .short('m')
                .value_name("N")
                .default_value("20")
                .help("Number of modules to generate"),
        )
        .arg(
            Arg::new("seed")
                .long("seed")
                .short('s')
                .value_name("SEED")
                .default_value("1")
                .help("Generator seed (same seed = identical circuit)"),
        )
        .arg(
            Arg::new("name")
                .long("name")
                .value_name("NAME")
                .default_value("synthetic")
                .help("Circuit name"),
        )
        .arg(
            Arg::new("sym-fraction")
                .long("sym-fraction")
                .value_name("F")
                .default_value("0.35")
                .help("Fraction of basic module sets with a symmetry constraint"),
        )
        .arg(
            Arg::new("cc-fraction")
                .long("cc-fraction")
                .value_name("F")
                .default_value("0.15")
                .help("Fraction of basic module sets with a common-centroid constraint"),
        )
        .arg(
            Arg::new("prox-fraction")
                .long("prox-fraction")
                .value_name("F")
                .default_value("0.25")
                .help("Fraction of basic module sets with a proximity constraint"),
        )
        .arg(
            Arg::new("min-edge")
                .long("min-edge")
                .value_name("DBU")
                .default_value("20")
                .help("Smallest module edge length"),
        )
        .arg(
            Arg::new("max-edge")
                .long("max-edge")
                .value_name("DBU")
                .default_value("360")
                .help("Largest module edge length"),
        )
        .arg(
            Arg::new("out")
                .long("out")
                .short('o')
                .value_name("FILE")
                .default_value("-")
                .help("Output file ('-' for stdout)"),
        )
}

/// Renders a moves/sec figure compactly (`412k`, `1.3M`, `950`).
fn human_throughput(mps: f64) -> String {
    if mps >= 1e6 {
        format!("{:.1}M", mps / 1e6)
    } else if mps >= 1e3 {
        format!("{:.0}k", mps / 1e3)
    } else {
        format!("{mps:.0}")
    }
}

fn parse_number<T: std::str::FromStr>(
    matches_value: Option<&String>,
    what: &str,
) -> Result<T, String> {
    let raw = matches_value.ok_or_else(|| format!("missing value for {what}"))?;
    raw.parse().map_err(|_| format!("invalid {what}: '{raw}'"))
}

fn parse_optional<T: std::str::FromStr>(
    matches_value: Option<&String>,
    what: &str,
) -> Result<Option<T>, String> {
    matches_value.map(|raw| parse_number(Some(raw), what)).transpose()
}

fn write_output(path: &str, content: &str, what: &str) -> Result<(), String> {
    if path == "-" {
        print!("{content}");
        Ok(())
    } else {
        std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("{what} written to {path}");
        Ok(())
    }
}

fn engines_for(engine_name: &str) -> Result<Vec<PortfolioEngine>, String> {
    match engine_name {
        "portfolio" => Ok(PortfolioEngine::ALL.to_vec()),
        other => Ok(vec![PortfolioEngine::from_name(other).ok_or_else(|| {
            format!("unknown engine '{other}' (portfolio, seqpair, hbtree, deterministic, hier, tempering)")
        })?]),
    }
}

fn run_serve(matches: &ArgMatches) -> Result<(), String> {
    let workers: usize = parse_number(matches.get_one::<String>("workers"), "--workers")?;
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        workers
    };
    let queue_capacity: usize = parse_number(matches.get_one::<String>("queue"), "--queue")?;
    if queue_capacity == 0 {
        return Err("--queue must be at least 1".to_string());
    }
    let journal = match matches.get_one::<String>("journal") {
        Some(path) => {
            let mut journal = JournalConfig::new(path);
            if let Some(ms) = parse_optional::<u64>(
                matches.get_one::<String>("journal-sync-ms"),
                "--journal-sync-ms",
            )? {
                journal = journal.with_batched_sync(std::time::Duration::from_millis(ms));
            }
            Some(journal)
        }
        None => {
            if matches.get_one::<String>("journal-sync-ms").is_some() {
                return Err("--journal-sync-ms requires --journal FILE".to_string());
            }
            None
        }
    };
    let fault_plan = match matches.get_one::<String>("fault-plan") {
        Some(path) => {
            // fault injection degrades the service on purpose; the env guard
            // keeps a copy-pasted test command line from hurting production
            if std::env::var("APLS_FAULT_INJECTION").as_deref() != Ok("1") {
                return Err(
                    "--fault-plan is a test harness; set APLS_FAULT_INJECTION=1 to confirm"
                        .to_string(),
                );
            }
            Some(FaultPlan::load(std::path::Path::new(path))?)
        }
        None => None,
    };
    let defaults = ServiceConfig::default();
    let config = ServiceConfig {
        host: matches.get_one::<String>("host").expect("defaulted").clone(),
        port: parse_number(matches.get_one::<String>("port"), "--port")?,
        workers,
        queue_capacity,
        cache_capacity: parse_number(matches.get_one::<String>("cache"), "--cache")?,
        seed: parse_number(matches.get_one::<String>("seed"), "--seed")?,
        job_delay: parse_optional::<u64>(
            matches.get_one::<String>("job-delay-ms"),
            "--job-delay-ms",
        )?
        .map(std::time::Duration::from_millis),
        max_connections: parse_optional(
            matches.get_one::<String>("max-connections"),
            "--max-connections",
        )?
        .unwrap_or(defaults.max_connections),
        max_request_bytes: defaults.max_request_bytes,
        journal,
        fault_plan,
        mode: if matches.get_flag("legacy-threads") {
            ServeMode::LegacyThreads
        } else {
            ServeMode::EventLoop
        },
        metrics_addr: matches.get_one::<String>("metrics-addr").cloned(),
        flight_recorder: parse_optional(
            matches.get_one::<String>("flight-recorder-events"),
            "--flight-recorder-events",
        )?
        .unwrap_or(defaults.flight_recorder),
        flight_recorder_path: matches.get_one::<String>("flight-recorder").map(Into::into),
    };
    if config.max_connections == 0 {
        return Err("--max-connections must be at least 1".to_string());
    }
    let workers = config.workers;
    let queue = config.queue_capacity;
    let cache = config.cache_capacity;
    let journal_note = config
        .journal
        .as_ref()
        .map(|j| format!(", journal {}", j.path.display()))
        .unwrap_or_default();
    let fault_note = if config.fault_plan.is_some() { ", FAULT INJECTION ACTIVE" } else { "" };
    let telemetry = match matches.get_one::<String>("trace") {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
            println!("streaming trace events to {path}");
            Telemetry::with_collector(Arc::new(StreamCollector::new(Box::new(file))))
        }
        None => Telemetry::disabled(),
    };
    let mode_note = match config.mode {
        ServeMode::EventLoop => "event loop",
        ServeMode::LegacyThreads => "legacy threads",
    };
    let service = PlacementService::start_with_telemetry(config, telemetry)
        .map_err(|e| format!("cannot start service: {e}"))?;
    println!(
        "apls service listening on {} ({mode_note}, {workers} worker(s), queue {queue}, cache {cache}{journal_note}{fault_note})",
        service.local_addr()
    );
    if let Some(addr) = service.metrics_addr() {
        println!("apls metrics listening on http://{addr}/metrics (also /healthz, /readyz)");
    }
    println!("stop with: apls submit --addr {} --op shutdown", service.local_addr());
    service.join();
    println!("apls service stopped");
    Ok(())
}

fn run_submit(matches: &ArgMatches) -> Result<(), String> {
    let addr = matches.get_one::<String>("addr").expect("defaulted");
    let mut client =
        ServiceClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let op = matches.get_one::<String>("op").expect("defaulted");
    match op.as_str() {
        "ping" | "stats" | "dump" | "shutdown" => {
            let response = match op.as_str() {
                "ping" => client.ping(),
                "stats" => client.stats(),
                "dump" => client.dump(),
                _ => client.shutdown(),
            }
            .map_err(|e| format!("request failed: {e}"))?;
            println!("{response}");
            return Ok(());
        }
        "place" => {}
        other => return Err(format!("unknown op '{other}' (place, ping, stats, dump, shutdown)")),
    }

    let mut spec = match (matches.get_one::<String>("circuit"), matches.get_one::<String>("file")) {
        (Some(_), Some(_)) => return Err("--circuit and --file are mutually exclusive".to_string()),
        (Some(name), None) => JobSpec::bundled(name.clone()),
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            // fail fast with a positioned message instead of shipping junk
            parse_circuit(&text).map_err(|e| format!("{path}:{e}"))?;
            JobSpec::inline(text)
        }
        (None, None) => {
            return Err("submit needs a circuit: --circuit NAME or --file FILE.apls".to_string())
        }
    };
    spec.seed = parse_optional(matches.get_one::<String>("seed"), "--seed")?;
    spec.restarts = parse_optional(matches.get_one::<String>("restarts"), "--restarts")?;
    spec.wirelength_weight =
        parse_optional(matches.get_one::<String>("wirelength-weight"), "--wirelength-weight")?;
    spec.hier_anneal_threshold = parse_optional(
        matches.get_one::<String>("hier-anneal-threshold"),
        "--hier-anneal-threshold",
    )?;
    spec.plateau = parse_optional(matches.get_one::<String>("plateau"), "--plateau")?;
    spec.threads = parse_optional(matches.get_one::<String>("threads"), "--threads")?;
    spec.deadline_ms = parse_optional(matches.get_one::<String>("deadline-ms"), "--deadline-ms")?;
    if spec.deadline_ms == Some(0) {
        return Err("--deadline-ms must be at least 1".to_string());
    }
    if matches.get_flag("fast") {
        spec.fast = Some(true);
    }
    let engine_name = matches.get_one::<String>("engine").expect("defaulted");
    if engine_name != "portfolio" {
        spec.engines = Some(engines_for(engine_name)?);
    }

    let retries: Option<u32> = parse_optional(matches.get_one::<String>("retries"), "--retries")?;
    let response = if matches.get_flag("stream") {
        client.place_streaming(&spec, |frame| match frame {
            StreamFrame::Accepted { job, circuit, seed, .. } => {
                println!("accepted: job {job} circuit={circuit} seed={seed}");
            }
            StreamFrame::Queued { depth, .. } => println!("queued: depth {depth}"),
            StreamFrame::Progress { engine, restart, completed, total, cost, .. } => {
                println!("progress: {completed}/{total} {engine}#{restart} cost={cost:.4}");
            }
            StreamFrame::Report { .. } => {}
        })
    } else {
        match retries {
            Some(0) => return Err("--retries must be at least 1".to_string()),
            Some(attempts) if attempts > 1 => {
                let policy = RetryPolicy { max_attempts: attempts, ..RetryPolicy::default() };
                ServiceClient::place_with_retry(addr.as_str(), &spec, &policy)
            }
            _ => client.place(&spec),
        }
    }
    .map_err(|e| format!("request failed: {e}"))?;
    match response.status.as_str() {
        "ok" => {
            let attempts_note = if response.attempts > 1 {
                format!(" attempts={}", response.attempts)
            } else {
                String::new()
            };
            println!(
                "job {}: status=ok circuit={} seed={} cache_hit={} queue {:.1} ms, solve {:.1} ms, total {:.1} ms{attempts_note}",
                response.id.unwrap_or(0),
                response.circuit.as_deref().unwrap_or("?"),
                response.seed.unwrap_or(0),
                response.cache_hit,
                response.queue_ms.unwrap_or(0.0),
                response.solve_ms.unwrap_or(0.0),
                response.total_ms.unwrap_or(0.0),
            );
            if let Some(path) = matches.get_one::<String>("json") {
                let report = response.report.as_deref().ok_or("response carried no report")?;
                write_output(path, report, "report")?;
            }
            Ok(())
        }
        "retry" => Err(format!(
            "service busy: {} (resubmit later)",
            response.error.as_deref().unwrap_or("queue full")
        )),
        "timeout" => Err(format!(
            "job timed out: {}",
            response.error.as_deref().unwrap_or("deadline exceeded")
        )),
        _ => {
            Err(format!("service error: {}", response.error.as_deref().unwrap_or("unknown error")))
        }
    }
}

fn run_convert(matches: &ArgMatches) -> Result<(), String> {
    let circuit = match (matches.get_one::<String>("circuit"), matches.get_one::<String>("in")) {
        (Some(_), Some(_)) => return Err("--circuit and --in are mutually exclusive".to_string()),
        (Some(name), None) => benchmarks::by_name(name).ok_or_else(|| {
            format!("unknown circuit '{name}' (available: {})", benchmarks::names().join(", "))
        })?,
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            parse_circuit(&text).map_err(|e| format!("{path}:{e}"))?
        }
        (None, None) => {
            return Err("convert needs an input: --circuit NAME or --in FILE.apls".to_string())
        }
    };
    let out = matches.get_one::<String>("out").expect("defaulted");
    write_output(out, &serialize_circuit(&circuit), &format!("circuit '{}'", circuit.name))
}

fn run_gen(matches: &ArgMatches) -> Result<(), String> {
    let module_count: usize = parse_number(matches.get_one::<String>("modules"), "--modules")?;
    if module_count == 0 {
        return Err("--modules must be at least 1".to_string());
    }
    let config = GeneratorConfig {
        module_count,
        seed: parse_number(matches.get_one::<String>("seed"), "--seed")?,
        symmetry_fraction: parse_number(
            matches.get_one::<String>("sym-fraction"),
            "--sym-fraction",
        )?,
        common_centroid_fraction: parse_number(
            matches.get_one::<String>("cc-fraction"),
            "--cc-fraction",
        )?,
        proximity_fraction: parse_number(
            matches.get_one::<String>("prox-fraction"),
            "--prox-fraction",
        )?,
        min_edge: parse_number(matches.get_one::<String>("min-edge"), "--min-edge")?,
        max_edge: parse_number(matches.get_one::<String>("max-edge"), "--max-edge")?,
    };
    if config.min_edge < 1 || config.max_edge <= config.min_edge {
        return Err("edge lengths must satisfy 1 <= --min-edge < --max-edge".to_string());
    }
    let name = matches.get_one::<String>("name").expect("defaulted");
    let circuit = benchmarks::generate(name, config);
    let out = matches.get_one::<String>("out").expect("defaulted");
    write_output(out, &serialize_circuit(&circuit), &format!("circuit '{name}'"))
}

fn run_default(matches: &ArgMatches) -> Result<(), String> {
    if matches.get_flag("list") {
        println!("bundled benchmark circuits:");
        for name in benchmarks::names() {
            let circuit = benchmarks::by_name(name).expect("listed names resolve");
            println!(
                "  {name:<20} {:>4} modules, {:>3} nets, {} symmetry group(s)",
                circuit.module_count(),
                circuit.netlist.net_count(),
                circuit.constraints.symmetry_groups().len(),
            );
        }
        return Ok(());
    }

    let circuit_name = matches.get_one::<String>("circuit").expect("defaulted");
    let circuit = benchmarks::by_name(circuit_name).ok_or_else(|| {
        format!("unknown circuit '{circuit_name}' (available: {})", benchmarks::names().join(", "))
    })?;

    let restarts: usize = parse_number(matches.get_one::<String>("restarts"), "--restarts")?;
    let seed: u64 = parse_number(matches.get_one::<String>("seed"), "--seed")?;
    let threads: usize = parse_number(matches.get_one::<String>("threads"), "--threads")?;
    let wirelength_weight: f64 =
        parse_number(matches.get_one::<String>("wirelength-weight"), "--wirelength-weight")?;
    let hier_anneal_threshold: usize = parse_number(
        matches.get_one::<String>("hier-anneal-threshold"),
        "--hier-anneal-threshold",
    )?;
    if restarts == 0 {
        return Err("--restarts must be at least 1".to_string());
    }
    if hier_anneal_threshold == 0 {
        return Err("--hier-anneal-threshold must be at least 1".to_string());
    }
    if !wirelength_weight.is_finite() || wirelength_weight < 0.0 {
        return Err("--wirelength-weight must be finite and non-negative".to_string());
    }

    let engine_name = matches.get_one::<String>("engine").expect("defaulted");
    let engines = engines_for(engine_name)?;

    let mut config = PortfolioConfig::new(seed)
        .with_restarts(restarts)
        .with_engines(engines)
        .with_threads(threads)
        .with_fast_schedule(matches.get_flag("fast"))
        .with_wirelength_weight(wirelength_weight)
        .with_hier_anneal_threshold(hier_anneal_threshold);
    if matches.get_one::<String>("plateau").is_some() {
        let window: usize = parse_number(matches.get_one::<String>("plateau"), "--plateau")?;
        if window == 0 {
            return Err("--plateau must be at least 1".to_string());
        }
        config = config.with_early_stop(EarlyStop::after(window));
    }

    let trace_path = matches.get_one::<String>("trace");
    let recorder = trace_path.map(|_| Arc::new(RecordingCollector::new()));
    let telemetry = match &recorder {
        Some(recorder) => Telemetry::with_collector(Arc::clone(recorder) as _),
        None => Telemetry::disabled(),
    };

    let report = run_portfolio_traced(&circuit, &config, &telemetry);
    println!("{}", report.summary());
    for engine in &report.engines {
        println!(
            "  {:<14} {} restart(s): best {:.0}, mean {:.0}, worst {:.0}{}{}{}",
            engine.engine.to_string() + ":",
            engine.restarts_run,
            engine.cost.min,
            engine.cost.mean,
            engine.cost.max,
            engine
                .mean_acceptance
                .map(|a| format!(", acceptance {:.0}%", a * 100.0))
                .unwrap_or_default(),
            engine
                .mean_moves_per_second
                .map(|mps| format!(", {} moves/s", human_throughput(mps)))
                .unwrap_or_default(),
            engine
                .enumeration_wins
                .map(|wins| format!(", enum fallback won {wins}/{}", engine.restarts_run))
                .unwrap_or_default(),
        );
    }

    if let Some(path) = matches.get_one::<String>("json") {
        let json = report.to_json();
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("report written to {path}");
        }
    }
    if let Some(path) = matches.get_one::<String>("svg") {
        let svg =
            analog_layout_synthesis::portfolio::svg::render_svg(&circuit, &report.best().placement);
        std::fs::write(path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("winning placement written to {path}");
    }
    if let (Some(path), Some(recorder)) = (trace_path, recorder) {
        // `.json` gets the one-object Chrome trace document (drag-and-drop
        // into a trace viewer); anything else gets one event per line.
        let body = if path.ends_with(".json") {
            recorder.to_chrome_trace()
        } else {
            recorder.to_json_lines()
        };
        std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace ({} event(s)) written to {path}", recorder.len());
    }
    Ok(())
}

fn run_trace(matches: &ArgMatches) -> Result<(), String> {
    let path = matches
        .get_one::<String>("file")
        .ok_or("trace needs a file: apls trace --file out.jsonl")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut summary = TraceSummary::new();
    let mut events = 0usize;

    let mut feed = |event: &Json| -> Result<(), String> {
        let name = event.get("name").and_then(Json::as_str).unwrap_or("?");
        let cat = event.get("cat").and_then(Json::as_str).unwrap_or("?");
        match event.get("ph").and_then(Json::as_str) {
            Some("X") => {
                let dur = event.get("dur").and_then(Json::as_u64).unwrap_or(0);
                summary.record_complete(cat, name, dur);
            }
            Some("i" | "C") => summary.record_instant(cat, name),
            Some(other) => return Err(format!("unsupported event phase '{other}'")),
            None => return Err("event without a 'ph' field".to_string()),
        }
        events += 1;
        Ok(())
    };

    let trimmed = text.trim_start();
    if trimmed.starts_with('{') && !trimmed.contains('\n')
        || trimmed.starts_with("{\"traceEvents\"")
    {
        // One-object form: either a Chrome trace document or a single event.
        let doc = Json::parse(trimmed.trim_end()).map_err(|e| format!("{path}: {e}"))?;
        match doc.get("traceEvents").and_then(Json::as_arr) {
            Some(list) => {
                for event in list {
                    feed(event).map_err(|e| format!("{path}: {e}"))?;
                }
            }
            None => feed(&doc).map_err(|e| format!("{path}: {e}"))?,
        }
    } else {
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let event = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
            feed(&event).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        }
    }

    println!("{path}: {events} event(s)");
    print!("{}", summary.render());
    Ok(())
}

/// One dashboard frame rendered from a parsed `stats` reply.
fn render_top(addr: &str, stats: &Json) -> String {
    use std::fmt::Write as _;
    let str_of = |key: &str| stats.get(key).and_then(Json::as_str).unwrap_or("?").to_string();
    let num = |key: &str| stats.get(key).and_then(Json::as_u64).unwrap_or(0);
    let mut out = String::new();
    let ready = stats.get("ready").and_then(Json::as_bool).unwrap_or(false);
    let _ = writeln!(
        out,
        "apls top — {addr}  mode={} workers={} uptime={}s  {}",
        str_of("mode"),
        num("workers"),
        num("uptime_seconds"),
        if ready { "READY" } else { "NOT READY" },
    );
    let _ = writeln!(
        out,
        "jobs {}  queue {}/{}  in-flight {}  connections {}",
        num("jobs_completed"),
        num("queue_depth"),
        num("queue_capacity"),
        num("in_flight"),
        num("connections"),
    );
    if let Some(cache) = stats.get("cache") {
        let c = |key: &str| cache.get(key).and_then(Json::as_u64).unwrap_or(0);
        let _ = writeln!(
            out,
            "cache {}/{} entries  hits {}  misses {}  evictions {}",
            c("entries"),
            c("capacity"),
            c("hits"),
            c("misses"),
            c("evictions"),
        );
    }
    let metrics = stats.get("metrics");
    if let Some(counters) = metrics.and_then(|m| m.get("counters")) {
        let c = |key: &str| counters.get(key).and_then(Json::as_u64).unwrap_or(0);
        let _ = writeln!(
            out,
            "requests {}  errors {}  retries {}  timeouts {}  frames {}  stalls {}  dumps {}",
            c("requests_total"),
            c("errors_total"),
            c("retries_total"),
            c("timeouts_total"),
            c("frames_sent_total"),
            c("reactor_stalls_total"),
            c("flight_dumps_total"),
        );
    }
    if let Some(hists) = metrics.and_then(|m| m.get("histograms")) {
        let _ = writeln!(
            out,
            "{:<14}  {:>8}  {:>9}  {:>9}  {:>9}",
            "stage (ms)", "count", "p50", "p95", "p99"
        );
        for name in
            ["admit_ms", "queue_ms", "solve_ms", "flush_ms", "total_ms", "poll_wait_ms", "loop_ms"]
        {
            let Some(h) = hists.get(name) else { continue };
            let count = h.get("count").and_then(Json::as_u64).unwrap_or(0);
            let q = |key: &str| match h.get(key).and_then(Json::as_f64) {
                Some(v) => format!("{v:.3}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<14}  {:>8}  {:>9}  {:>9}  {:>9}",
                name.trim_end_matches("_ms"),
                count,
                q("p50"),
                q("p95"),
                q("p99"),
            );
        }
    }
    out
}

fn run_top(matches: &ArgMatches) -> Result<(), String> {
    let addr = matches.get_one::<String>("addr").expect("defaulted");
    let interval_ms: u64 = parse_number(matches.get_one::<String>("interval-ms"), "--interval-ms")?;
    let iterations: u64 = parse_number(matches.get_one::<String>("iterations"), "--iterations")?;
    let clear = !matches.get_flag("no-clear");
    let mut shown: u64 = 0;
    loop {
        // one connection per refresh: the dashboard survives service restarts
        let frame = ServiceClient::connect(addr)
            .and_then(|mut client| client.stats())
            .map_err(|e| format!("cannot poll {addr}: {e}"))
            .and_then(|line| {
                let stats =
                    Json::parse(&line).map_err(|e| format!("bad stats reply from {addr}: {e}"))?;
                Ok(render_top(addr, &stats))
            })?;
        if clear {
            // ANSI clear-screen + home, like watch(1)
            print!("\u{1b}[2J\u{1b}[H");
        }
        print!("{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        shown += 1;
        if iterations != 0 && shown >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(1)));
    }
}

fn run() -> Result<(), String> {
    let matches = cli().get_matches();
    match matches.subcommand() {
        Some(("serve", sub)) => run_serve(sub),
        Some(("submit", sub)) => run_submit(sub),
        Some(("top", sub)) => run_top(sub),
        Some(("convert", sub)) => run_convert(sub),
        Some(("gen", sub)) => run_gen(sub),
        Some(("trace", sub)) => run_trace(sub),
        _ => run_default(&matches),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
