//! `apls` — analog placement from the command line.
//!
//! Selects a bundled benchmark circuit, runs a single engine or the full
//! multi-start portfolio, prints a summary, and optionally writes the
//! portfolio report as JSON and the winning placement as SVG:
//!
//! ```text
//! apls --list
//! apls --circuit miller_opamp_fig6 --restarts 8 --seed 42 --json report.json --svg best.svg
//! apls --circuit folded_cascode --engine hbtree --restarts 4 --fast
//! ```

use analog_layout_synthesis::circuit::benchmarks;
use analog_layout_synthesis::portfolio::{
    run_portfolio, EarlyStop, PortfolioConfig, PortfolioEngine,
};
use clap::{Arg, ArgAction, Command};
use std::process::ExitCode;

fn cli() -> Command {
    Command::new("apls")
        .about("Analog placement portfolio runner (DATE 2009 survey reproduction)")
        .version(env!("CARGO_PKG_VERSION"))
        .arg(
            Arg::new("circuit")
                .long("circuit")
                .short('c')
                .value_name("NAME")
                .default_value("miller_opamp_fig6")
                .help("Benchmark circuit to place (see --list)"),
        )
        .arg(
            Arg::new("engine")
                .long("engine")
                .short('e')
                .value_name("ENGINE")
                .default_value("portfolio")
                .help("portfolio, seqpair, hbtree, deterministic, or hier"),
        )
        .arg(
            Arg::new("restarts")
                .long("restarts")
                .short('k')
                .value_name("K")
                .default_value("8")
                .help("Annealing restarts per stochastic engine"),
        )
        .arg(
            Arg::new("seed")
                .long("seed")
                .short('s')
                .value_name("SEED")
                .default_value("1")
                .help("Root seed; every restart derives its own seed from it"),
        )
        .arg(
            Arg::new("threads")
                .long("threads")
                .short('t')
                .value_name("N")
                .default_value("0")
                .help("Worker threads (0 = one per core); never changes results"),
        )
        .arg(
            Arg::new("wirelength-weight")
                .long("wirelength-weight")
                .short('w')
                .value_name("W")
                .default_value("0.5")
                .help("Weight of the wirelength term in the cost"),
        )
        .arg(
            Arg::new("hier-anneal-threshold")
                .long("hier-anneal-threshold")
                .value_name("N")
                .default_value("5")
                .help("hier engine: anneal hierarchy nodes with more than N modules"),
        )
        .arg(
            Arg::new("plateau")
                .long("plateau")
                .value_name("WINDOW")
                .help("Stop early after WINDOW generations without improvement"),
        )
        .arg(
            Arg::new("fast")
                .long("fast")
                .action(ArgAction::SetTrue)
                .help("Use the short smoke-test annealing schedule"),
        )
        .arg(
            Arg::new("json")
                .long("json")
                .value_name("FILE")
                .help("Write the full report as JSON ('-' for stdout)"),
        )
        .arg(
            Arg::new("svg")
                .long("svg")
                .value_name("FILE")
                .help("Write the winning placement as SVG"),
        )
        .arg(
            Arg::new("list")
                .long("list")
                .action(ArgAction::SetTrue)
                .help("List the bundled benchmark circuits and exit"),
        )
}

/// Renders a moves/sec figure compactly (`412k`, `1.3M`, `950`).
fn human_throughput(mps: f64) -> String {
    if mps >= 1e6 {
        format!("{:.1}M", mps / 1e6)
    } else if mps >= 1e3 {
        format!("{:.0}k", mps / 1e3)
    } else {
        format!("{mps:.0}")
    }
}

fn parse_number<T: std::str::FromStr>(
    matches_value: Option<&String>,
    what: &str,
) -> Result<T, String> {
    let raw = matches_value.ok_or_else(|| format!("missing value for {what}"))?;
    raw.parse().map_err(|_| format!("invalid {what}: '{raw}'"))
}

fn run() -> Result<(), String> {
    let matches = cli().get_matches();

    if matches.get_flag("list") {
        println!("bundled benchmark circuits:");
        for name in benchmarks::names() {
            let circuit = benchmarks::by_name(name).expect("listed names resolve");
            println!(
                "  {name:<20} {:>4} modules, {:>3} nets, {} symmetry group(s)",
                circuit.module_count(),
                circuit.netlist.net_count(),
                circuit.constraints.symmetry_groups().len(),
            );
        }
        return Ok(());
    }

    let circuit_name = matches.get_one::<String>("circuit").expect("defaulted");
    let circuit = benchmarks::by_name(circuit_name).ok_or_else(|| {
        format!("unknown circuit '{circuit_name}' (available: {})", benchmarks::names().join(", "))
    })?;

    let restarts: usize = parse_number(matches.get_one::<String>("restarts"), "--restarts")?;
    let seed: u64 = parse_number(matches.get_one::<String>("seed"), "--seed")?;
    let threads: usize = parse_number(matches.get_one::<String>("threads"), "--threads")?;
    let wirelength_weight: f64 =
        parse_number(matches.get_one::<String>("wirelength-weight"), "--wirelength-weight")?;
    let hier_anneal_threshold: usize = parse_number(
        matches.get_one::<String>("hier-anneal-threshold"),
        "--hier-anneal-threshold",
    )?;
    if restarts == 0 {
        return Err("--restarts must be at least 1".to_string());
    }
    if hier_anneal_threshold == 0 {
        return Err("--hier-anneal-threshold must be at least 1".to_string());
    }
    if !wirelength_weight.is_finite() || wirelength_weight < 0.0 {
        return Err("--wirelength-weight must be finite and non-negative".to_string());
    }

    let engine_name = matches.get_one::<String>("engine").expect("defaulted");
    let engines = match engine_name.as_str() {
        "portfolio" => PortfolioEngine::ALL.to_vec(),
        other => vec![PortfolioEngine::from_name(other).ok_or_else(|| {
            format!("unknown engine '{other}' (portfolio, seqpair, hbtree, deterministic, hier)")
        })?],
    };

    let mut config = PortfolioConfig::new(seed)
        .with_restarts(restarts)
        .with_engines(engines)
        .with_threads(threads)
        .with_fast_schedule(matches.get_flag("fast"))
        .with_wirelength_weight(wirelength_weight)
        .with_hier_anneal_threshold(hier_anneal_threshold);
    if matches.get_one::<String>("plateau").is_some() {
        let window: usize = parse_number(matches.get_one::<String>("plateau"), "--plateau")?;
        if window == 0 {
            return Err("--plateau must be at least 1".to_string());
        }
        config = config.with_early_stop(EarlyStop::after(window));
    }

    let report = run_portfolio(&circuit, &config);
    println!("{}", report.summary());
    for engine in &report.engines {
        println!(
            "  {:<14} {} restart(s): best {:.0}, mean {:.0}, worst {:.0}{}{}",
            engine.engine.to_string() + ":",
            engine.restarts_run,
            engine.cost.min,
            engine.cost.mean,
            engine.cost.max,
            engine
                .mean_acceptance
                .map(|a| format!(", acceptance {:.0}%", a * 100.0))
                .unwrap_or_default(),
            engine
                .mean_moves_per_second
                .map(|mps| format!(", {} moves/s", human_throughput(mps)))
                .unwrap_or_default(),
        );
    }

    if let Some(path) = matches.get_one::<String>("json") {
        let json = report.to_json();
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("report written to {path}");
        }
    }
    if let Some(path) = matches.get_one::<String>("svg") {
        let svg =
            analog_layout_synthesis::portfolio::svg::render_svg(&circuit, &report.best().placement);
        std::fs::write(path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("winning placement written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
