//! A small blocking client for the placement service.
//!
//! One connection, synchronous request/response over JSON lines. Concurrency
//! comes from opening several clients — the service interleaves jobs from
//! different connections across its worker pool.

use crate::protocol::{JobSpec, PlaceResponse};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking JSON-lines client.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connects to a running service.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServiceClient> {
        let writer = TcpStream::connect(addr)?;
        // request/response turns are latency-bound; don't let Nagle pair
        // small writes with the peer's delayed ACK
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(ServiceClient { reader, writer })
    }

    /// Sends one raw request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a closed connection reads as
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn request_line(&mut self, line: &str) -> io::Result<String> {
        let mut request = String::with_capacity(line.len() + 1);
        request.push_str(line);
        request.push('\n');
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Submits a placement job and decodes the response envelope.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an undecodable response becomes
    /// [`io::ErrorKind::InvalidData`].
    pub fn place(&mut self, spec: &JobSpec) -> io::Result<PlaceResponse> {
        let line = self.request_line(&spec.to_json_line())?;
        PlaceResponse::from_json_line(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Health check; returns the raw response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn ping(&mut self) -> io::Result<String> {
        self.request_line("{\"op\":\"ping\"}")
    }

    /// Service statistics; returns the raw response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn stats(&mut self) -> io::Result<String> {
        self.request_line("{\"op\":\"stats\"}")
    }

    /// Asks the service to shut down gracefully; returns the raw response
    /// line (normally `{"status":"shutting_down"}`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn shutdown(&mut self) -> io::Result<String> {
        self.request_line("{\"op\":\"shutdown\"}")
    }
}
