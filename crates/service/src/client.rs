//! A small blocking client for the placement service.
//!
//! One connection, synchronous request/response over JSON lines. Concurrency
//! comes from opening several clients — the service interleaves jobs from
//! different connections across its worker pool.
//!
//! For lossy paths (daemon restarting, queue saturated) use
//! [`ServiceClient::place_with_retry`]: bounded exponential backoff with
//! deterministic seeded jitter, reconnecting on transient transport errors
//! and honouring the service's explicit `{"status":"retry"}` backpressure
//! signal.

use crate::protocol::{JobSpec, PlaceResponse, StreamFrame};
use apls_anneal::rng::SeedStream;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// The seed-stream lane retry jitter derives from (client-side only; job
/// seeds use [`crate::JOB_SEED_LANE`] in the *service's* stream, so the two
/// can never collide in effect — jitter never touches placement results).
const RETRY_JITTER_LANE: u64 = 0x3E7;

/// Retry schedule for [`ServiceClient::place_with_retry`]: bounded
/// exponential backoff with deterministic, seeded jitter.
///
/// Attempt `k` (0-based) sleeps `min(base << k, cap)` plus a jitter drawn
/// from [`SeedStream::seed_for`]`(RETRY_JITTER_LANE, k)` — a pure function
/// of `(jitter_seed, k)`, so two runs of the same test back off identically
/// while two clients with different seeds spread their retries apart.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base: Duration,
    /// Upper bound on the (pre-jitter) backoff.
    pub cap: Duration,
    /// Root of the jitter stream; vary per client to de-synchronise fleets.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            jitter_seed: 1,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based): exponential,
    /// capped, plus deterministic jitter in `[0, backoff/2]`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        let backoff = exp.min(self.cap);
        let jitter_word =
            SeedStream::new(self.jitter_seed).seed_for(RETRY_JITTER_LANE, u64::from(attempt));
        let half = backoff.as_nanos() as u64 / 2;
        let jitter = if half == 0 { 0 } else { jitter_word % (half + 1) };
        backoff + Duration::from_nanos(jitter)
    }
}

/// Transport errors worth retrying: the daemon may be restarting (crash
/// recovery) or the connection got dropped mid-flight. Anything else
/// (invalid data, permission) will not heal by waiting.
fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
    )
}

/// A blocking JSON-lines client.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Next auto-assigned correlation id for streamed jobs.
    next_stream_id: u64,
}

impl ServiceClient {
    /// Connects to a running service.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServiceClient> {
        let writer = TcpStream::connect(addr)?;
        // request/response turns are latency-bound; don't let Nagle pair
        // small writes with the peer's delayed ACK
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(ServiceClient { reader, writer, next_stream_id: 1 })
    }

    /// Sends one raw request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a closed connection reads as
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn request_line(&mut self, line: &str) -> io::Result<String> {
        let mut request = String::with_capacity(line.len() + 1);
        request.push_str(line);
        request.push('\n');
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Submits a placement job and decodes the response envelope.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an undecodable response becomes
    /// [`io::ErrorKind::InvalidData`].
    pub fn place(&mut self, spec: &JobSpec) -> io::Result<PlaceResponse> {
        let line = self.request_line(&spec.to_json_line())?;
        PlaceResponse::from_json_line(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends one raw request line without waiting for a response (used to
    /// multiplex several streamed jobs over the connection).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        let mut request = String::with_capacity(line.len() + 1);
        request.push_str(line);
        request.push('\n');
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()
    }

    /// Reads and decodes one stream frame off the connection.
    ///
    /// Only valid on a connection where every in-flight job was submitted
    /// with `stream: true` — a plain response line is reported as
    /// [`io::ErrorKind::InvalidData`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a closed connection reads as
    /// [`io::ErrorKind::UnexpectedEof`]; an undecodable line becomes
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_frame(&mut self) -> io::Result<StreamFrame> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            ));
        }
        StreamFrame::from_json_line(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Submits a streamed placement job and returns its correlation id
    /// without waiting for any frame. Use [`ServiceClient::read_frame`] to
    /// collect frames, matching them to jobs by [`StreamFrame::id`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn submit_streaming(&mut self, spec: &JobSpec) -> io::Result<u64> {
        let id = self.next_stream_id;
        self.next_stream_id += 1;
        let spec = spec.clone().with_stream(id);
        self.send_line(&spec.to_json_line())?;
        Ok(id)
    }

    /// Submits a streamed placement job and blocks until its report frame,
    /// handing every intermediate frame (`accepted`, `queued`, `progress`)
    /// to `on_frame`. The returned envelope's report body is byte-identical
    /// to a non-streaming [`ServiceClient::place`] of the same job.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an undecodable or foreign-id frame becomes
    /// [`io::ErrorKind::InvalidData`].
    pub fn place_streaming(
        &mut self,
        spec: &JobSpec,
        mut on_frame: impl FnMut(&StreamFrame),
    ) -> io::Result<PlaceResponse> {
        let id = self.submit_streaming(spec)?;
        loop {
            let frame = self.read_frame()?;
            if frame.id() != id {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame for unexpected stream id {} (want {id})", frame.id()),
                ));
            }
            match frame {
                StreamFrame::Report { response, .. } => return Ok(*response),
                other => on_frame(&other),
            }
        }
    }

    /// Health check; returns the raw response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn ping(&mut self) -> io::Result<String> {
        self.request_line("{\"op\":\"ping\"}")
    }

    /// Service statistics; returns the raw response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn stats(&mut self) -> io::Result<String> {
        self.request_line("{\"op\":\"stats\"}")
    }

    /// Asks the service to dump its flight recorder to disk; returns the raw
    /// response line (the dump path and event count, or an `unavailable`
    /// error when the recorder is disabled).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn dump(&mut self) -> io::Result<String> {
        self.request_line("{\"op\":\"dump\"}")
    }

    /// Asks the service to shut down gracefully; returns the raw response
    /// line (normally `{"status":"shutting_down"}`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn shutdown(&mut self) -> io::Result<String> {
        self.request_line("{\"op\":\"shutdown\"}")
    }

    /// Submits a placement job, retrying through transient failures.
    ///
    /// Opens a fresh connection per attempt and retries — after the
    /// [`RetryPolicy`] backoff — on transient transport errors (connection
    /// refused/reset/aborted, EOF, broken pipe, timeout: the daemon may be
    /// restarting after a crash) and on the service's explicit
    /// `{"status":"retry"}` backpressure answer. Terminal responses
    /// (`ok`, `error`, `timeout`) are returned as soon as they arrive, with
    /// [`PlaceResponse::attempts`] set to the number of attempts spent.
    ///
    /// Retrying is safe even when an earlier attempt's job actually ran:
    /// reports are pure functions of `(circuit, config, seed)`, so a repeat
    /// submission returns the byte-identical report (usually from cache).
    ///
    /// # Errors
    ///
    /// Returns the last error once `policy.max_attempts` is exhausted, or
    /// immediately for non-transient I/O errors.
    pub fn place_with_retry(
        addr: impl ToSocketAddrs,
        spec: &JobSpec,
        policy: &RetryPolicy,
    ) -> io::Result<PlaceResponse> {
        assert!(policy.max_attempts >= 1, "retry policy needs at least one attempt");
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..policy.max_attempts {
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt - 1));
            }
            let result = ServiceClient::connect(&addr).and_then(|mut client| client.place(spec));
            match result {
                Ok(mut response) => {
                    response.attempts = attempt + 1;
                    if response.is_retry() {
                        // explicit backpressure: queue full right now
                        last_err = Some(io::Error::new(
                            io::ErrorKind::WouldBlock,
                            response
                                .error
                                .clone()
                                .unwrap_or_else(|| "service asked to retry".to_string()),
                        ));
                        continue;
                    }
                    return Ok(response);
                }
                Err(e) if is_transient(e.kind()) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("retry budget exhausted")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(50),
            cap: Duration::from_millis(400),
            jitter_seed: 42,
        };
        let first: Vec<Duration> = (0..8).map(|k| policy.backoff(k)).collect();
        let second: Vec<Duration> = (0..8).map(|k| policy.backoff(k)).collect();
        assert_eq!(first, second, "jitter must be deterministic per (seed, attempt)");
        // pre-jitter schedule is 50, 100, 200, 400, 400, ... and jitter adds
        // at most half the backoff
        for (k, d) in first.iter().enumerate() {
            let base = Duration::from_millis((50u64 << k).min(400));
            assert!(
                *d >= base && *d <= base + base / 2 + Duration::from_nanos(1),
                "attempt {k}: {d:?}"
            );
        }
        let other = RetryPolicy { jitter_seed: 43, ..policy };
        assert_ne!(
            (0..8).map(|k| other.backoff(k)).collect::<Vec<_>>(),
            first,
            "different seeds should de-synchronise"
        );
    }

    #[test]
    fn transient_errors_are_the_connection_shaped_ones() {
        for kind in [
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::BrokenPipe,
        ] {
            assert!(is_transient(kind), "{kind:?}");
        }
        for kind in [io::ErrorKind::InvalidData, io::ErrorKind::PermissionDenied] {
            assert!(!is_transient(kind), "{kind:?}");
        }
    }
}
