//! The placement daemon: TCP acceptor, bounded job queue, worker pool,
//! result cache.
//!
//! ```text
//!            ┌────────────┐   bounded sync_channel    ┌──────────┐
//!  TCP ──────► connection │ ──── Job {circuit, ...} ──► worker 0..N
//!  clients   │  handlers  │ ◄─── JobDone {report} ──── │ run_portfolio
//!            └────────────┘     (per-job channel)      └────┬─────┘
//!                 ▲                                         │
//!                 └──────────── LRU result cache ◄──────────┘
//!                                     ▲
//!                    durable job journal (enqueue/complete)
//! ```
//!
//! Determinism contract: a job's report body is
//! [`apls_portfolio::PortfolioReport::to_json_deterministic`] — a pure
//! function of `(circuit, config, seed)` — so responses are byte-identical
//! regardless of worker count, queue depth, arrival order, or whether the
//! cache served them. Jobs without a pinned seed get one from
//! [`SeedStream::seed_for`]`(JOB_SEED_LANE, job_index)` where `job_index`
//! counts accepted jobs from 0, so replaying a job log against a fresh
//! service reproduces every report bit for bit.
//!
//! Fault tolerance (see DESIGN.md §12): the optional [`crate::journal`]
//! extends the replay guarantee across a crash — completed reports are
//! restored into the cache at startup and incomplete jobs are re-solved with
//! their recorded seeds. Worker panics are caught per job
//! (`catch_unwind`), answered as `{"status":"error","kind":"internal"}`,
//! and never poison shared state ([`crate::sync::lock_or_recover`]); a
//! panic that escapes the job boundary respawns the worker loop in place.
//! Per-job deadlines cancel cooperatively between restarts and answer
//! `{"status":"timeout"}`. A deterministic [`FaultPlan`] can inject worker
//! panics, forced-slow solves, journal write failures and connection drops
//! at pinned points for testing.

use crate::cache::LruCache;
use crate::fault::FaultPlan;
use crate::journal::{Journal, JournalConfig, JournalRecord, Recovery};
use crate::json::{quote, Json};
use crate::metrics::ServiceMetrics;
use crate::protocol::{CircuitSource, JobSpec};
use crate::sync::{lock_or_recover, poison_recoveries};
use apls_anneal::rng::SeedStream;
use apls_circuit::benchmarks::{self, BenchmarkCircuit};
use apls_io::{canonical_hash, serialize_circuit};
use apls_portfolio::{run_portfolio_cancellable, CancelToken, PortfolioConfig};
use apls_telemetry::Telemetry;
use std::io::Read;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The seed-stream lane job seeds derive from (engines use lanes 1–5 of
/// their per-job streams; this lane lives in the *service's* stream, rooted
/// at [`ServiceConfig::seed`]).
pub const JOB_SEED_LANE: u64 = 0x10B;

/// Wire-protocol version reported by `ping`.
pub const PROTOCOL_VERSION: u32 = 1;

/// How long a connection handler waits for bytes before re-checking the
/// shutdown flag. Bounds shutdown latency for idle connections.
const READ_TICK: Duration = Duration::from_millis(200);

/// Default for [`ServiceConfig::max_request_bytes`]. Inline `.apls` circuits
/// are the big case (~30 bytes per module line); 16 MiB fits circuits three
/// orders of magnitude beyond the largest bundled benchmark while bounding
/// what one peer can make the daemon buffer.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 16 * 1024 * 1024;

/// Default for [`ServiceConfig::max_connections`]; beyond the limit, new
/// connections are refused with an error line so a connection flood cannot
/// exhaust threads.
pub const DEFAULT_MAX_CONNECTIONS: usize = 1024;

/// How long the (nonblocking) acceptor sleeps between polls. Bounds both
/// idle CPU and shutdown latency.
const ACCEPT_TICK: Duration = Duration::from_millis(50);

/// Configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Interface to bind.
    pub host: String,
    /// Port to bind (`0` = ephemeral, see
    /// [`PlacementService::local_addr`]).
    pub port: u16,
    /// Worker threads executing placement jobs.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue answers `retry`.
    pub queue_capacity: usize,
    /// Result-cache entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Root of the service seed stream for jobs without a pinned seed.
    pub seed: u64,
    /// Test/bench hook: artificial extra latency per computed (non-cached)
    /// job, simulating heavier circuits than the suite can afford to run.
    pub job_delay: Option<Duration>,
    /// Concurrent connections served at once (default
    /// [`DEFAULT_MAX_CONNECTIONS`]).
    pub max_connections: usize,
    /// Largest accepted request line (default
    /// [`DEFAULT_MAX_REQUEST_BYTES`]); an oversized line is answered with
    /// `{"status":"error","kind":"request_too_large"}` and the connection
    /// closed.
    pub max_request_bytes: usize,
    /// Optional durable job journal; see [`crate::journal`]. `None` keeps
    /// the pre-journal in-memory behaviour.
    pub journal: Option<JournalConfig>,
    /// Deterministic fault injection (tests/CI only; the CLI additionally
    /// requires the `APLS_FAULT_INJECTION=1` environment guard).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 128,
            seed: 1,
            job_delay: None,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            journal: None,
            fault_plan: None,
        }
    }
}

/// The result-cache key: full canonical content, not hashes, so a 64-bit
/// hash collision can never serve one client another circuit's report.
/// (`HashMap` hashes the strings internally; equality compares the bytes.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// Canonical `.apls` text of the circuit.
    circuit: String,
    /// Canonical string of every result-relevant config field.
    config: String,
    /// The job's root seed.
    seed: u64,
}

/// One queued placement job.
struct Job {
    /// Arrival-order job index (the envelope's `id`, the journal's `index`).
    index: u64,
    circuit: BenchmarkCircuit,
    config: PortfolioConfig,
    cache_key: CacheKey,
    /// Cooperative deadline; an expired job answers `timeout`.
    deadline: Option<Instant>,
    enqueued: Instant,
    respond: mpsc::Sender<JobDone>,
}

/// Why a job produced no report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobFailure {
    /// The solve panicked; the worker caught it and kept running.
    Panic,
    /// The job expired its deadline before completing.
    Timeout,
}

/// What a worker hands back to the connection handler.
struct JobDone {
    /// The deterministic report (with its cache-hit flag), or why there is
    /// none.
    outcome: Result<(String, bool), JobFailure>,
    queue_ms: f64,
    solve_ms: f64,
}

/// The sending half of the job queue plus the arrival-order job counter,
/// behind one mutex so that (index assignment, enqueue, journal append) is
/// atomic: a rejected job never consumes an index and journal records appear
/// in index order, which keeps derived seeds replayable.
struct EnqueueSlot {
    next_index: u64,
    tx: SyncSender<Job>,
}

/// State shared by the acceptor, handlers and workers.
struct Shared {
    config: ServiceConfig,
    seeds: SeedStream,
    started: Instant,
    shutdown: AtomicBool,
    jobs_completed: AtomicU64,
    cache_hits: AtomicU64,
    cache: Mutex<LruCache<CacheKey, String>>,
    enqueue: Mutex<Option<EnqueueSlot>>,
    journal: Option<Journal>,
    fault: Option<Arc<FaultPlan>>,
    telemetry: Telemetry,
    metrics: ServiceMetrics,
}

impl Shared {
    /// Appends a journal record, degrading to non-durable on failure: the
    /// job is answered either way, the failure is counted and traced.
    fn journal_append(&self, record: &JournalRecord<'_>) {
        let Some(journal) = &self.journal else { return };
        match journal.append(record) {
            Ok(()) => self.metrics.journal_records_total.inc(),
            Err(e) => {
                self.metrics.journal_write_failures_total.inc();
                apls_telemetry::event!(
                    self.telemetry,
                    "service",
                    "journal_write_failure",
                    error = e.to_string()
                );
            }
        }
    }
}

/// A running placement service.
///
/// # Example
///
/// ```
/// use apls_service::{JobSpec, PlacementService, ServiceClient, ServiceConfig};
///
/// let service = PlacementService::start(ServiceConfig::default()).expect("binds");
/// let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
/// let spec = JobSpec::bundled("miller_opamp_fig6").with_seed(7).with_restarts(1).with_fast(true);
/// let response = client.place(&spec).expect("round-trips");
/// assert!(response.is_ok());
/// service.shutdown();
/// service.join();
/// ```
pub struct PlacementService {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    recovery: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl PlacementService {
    /// Binds the listener and spawns the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable, or the
    /// journal open/replay error when a configured journal cannot be used.
    ///
    /// # Panics
    ///
    /// Panics when `workers` or `queue_capacity` is zero.
    pub fn start(config: ServiceConfig) -> std::io::Result<PlacementService> {
        PlacementService::start_with_telemetry(config, Telemetry::disabled())
    }

    /// [`PlacementService::start`] with a telemetry handle threaded through
    /// the request lifecycle and into every placement job. Observe-only:
    /// report bodies are byte-identical whatever collector is installed.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable, or the
    /// journal open/replay error when a configured journal cannot be used.
    ///
    /// # Panics
    ///
    /// Panics when `workers` or `queue_capacity` is zero.
    pub fn start_with_telemetry(
        config: ServiceConfig,
        telemetry: Telemetry,
    ) -> std::io::Result<PlacementService> {
        assert!(config.workers >= 1, "service needs at least one worker");
        assert!(config.queue_capacity >= 1, "service needs a queue depth of at least 1");
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let local_addr = listener.local_addr()?;

        let fault = config.fault_plan.clone().filter(|p| !p.is_empty()).map(Arc::new);
        let (journal, recovered) = match &config.journal {
            Some(journal_config) => {
                let (journal, recovery) = Journal::open(journal_config, fault.clone())?;
                (Some(journal), Some(recovery))
            }
            None => (None, None),
        };

        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity);
        let recovery_tx = tx.clone();
        let next_index = recovered.as_ref().map_or(0, |r| r.next_index);
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(Shared {
            seeds: SeedStream::new(config.seed),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            jobs_completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            enqueue: Mutex::new(Some(EnqueueSlot { next_index, tx })),
            journal,
            fault,
            telemetry,
            metrics: ServiceMetrics::new(),
            config,
        });

        let workers = (0..shared.config.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    // In-place respawn supervisor: per-job panics are caught
                    // inside worker_loop; if one nonetheless escapes (a bug
                    // in the loop itself), the worker re-enters the loop
                    // instead of dying and silently shrinking the pool.
                    loop {
                        match catch_unwind(AssertUnwindSafe(|| worker_loop(&rx, &shared))) {
                            Ok(()) => break, // queue closed and drained: shutdown
                            Err(_) => {
                                shared.metrics.worker_respawns_total.inc();
                                if shared.shutdown.load(Ordering::SeqCst) {
                                    break;
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let recovery =
            recovered.and_then(|recovery| replay_recovered_jobs(recovery, &shared, recovery_tx));
        let acceptor = {
            let shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || accept_loop(&listener, &shared)))
        };
        Ok(PlacementService { local_addr, shared, acceptor, recovery, workers })
    }

    /// The bound address (with the actual port when an ephemeral one was
    /// requested).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Initiates a graceful shutdown: stop accepting, drain the queue, let
    /// in-flight responses go out. Idempotent; [`PlacementService::join`]
    /// waits for completion.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared, self.local_addr);
    }

    /// Blocks until the service has shut down (via
    /// [`PlacementService::shutdown`] or a client `shutdown` request) and
    /// every thread has exited.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(recovery) = self.recovery.take() {
            let _ = recovery.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(journal) = &self.shared.journal {
            journal.sync();
        }
    }
}

impl Drop for PlacementService {
    fn drop(&mut self) {
        self.shutdown();
        self.join_threads();
    }
}

/// Restores completed journaled jobs into the cache and re-enqueues
/// incomplete ones (in index order, with their recorded seeds) on a
/// background thread, so startup does not block behind a queue-capacity's
/// worth of replayed solves.
fn replay_recovered_jobs(
    recovery: Recovery,
    shared: &Arc<Shared>,
    tx: SyncSender<Job>,
) -> Option<JoinHandle<()>> {
    if recovery.torn_lines > 0 {
        // a torn tail is expected after a mid-write crash; the partial
        // record's job simply counts as incomplete and is replayed
        apls_telemetry::event!(
            shared.telemetry,
            "service",
            "journal_torn_tail",
            lines = recovery.torn_lines as u64
        );
    }
    let mut pending: Vec<Job> = Vec::new();
    for job in recovery.jobs {
        let Ok(circuit) = resolve_circuit(&job.spec.circuit) else {
            apls_telemetry::event!(shared.telemetry, "service", "recovery_skip", id = job.index);
            continue;
        };
        let circuit_canonical = serialize_circuit(&circuit);
        // Integrity gate: a record whose fingerprints no longer match its
        // spec (bit rot, foreign journal) must not poison the cache.
        if canonical_hash(&circuit_canonical) != job.circuit_hash
            || job.spec.config_fingerprint() != job.config_fp
        {
            apls_telemetry::event!(shared.telemetry, "service", "recovery_skip", id = job.index);
            continue;
        }
        let cache_key = CacheKey {
            circuit: circuit_canonical,
            config: job.spec.config_canonical(),
            seed: job.seed,
        };
        match job.report {
            Some(report) => {
                lock_or_recover(&shared.cache).insert(cache_key, report);
                shared.metrics.jobs_recovered_total.inc();
            }
            None => {
                // The receiving half is dropped immediately: nobody waits
                // for a replayed job's response, its purpose is the journal
                // completion record and the cache entry it leaves behind.
                let (done_tx, _) = mpsc::channel();
                pending.push(Job {
                    index: job.index,
                    config: job.spec.resolved_config(job.seed),
                    circuit,
                    cache_key,
                    deadline: None,
                    enqueued: Instant::now(),
                    respond: done_tx,
                });
                shared.metrics.jobs_replayed_total.inc();
            }
        }
    }
    if pending.is_empty() {
        return None;
    }
    let shared = Arc::clone(shared);
    Some(std::thread::spawn(move || {
        for job in pending {
            shared.metrics.queue_depth.add(1);
            if tx.send(job).is_err() {
                // shutdown before the replay drained; the journal still
                // holds the enqueue records, the next start finishes the job
                shared.metrics.queue_depth.sub(1);
                break;
            }
        }
    }))
}

fn initiate_shutdown(shared: &Shared, local_addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Dropping the only SyncSender lets the workers drain the queue and exit.
    lock_or_recover(&shared.enqueue).take();
    // Best-effort accelerator: a throwaway connection makes a (blocking)
    // acceptor observe the flag immediately. The nonblocking acceptor's poll
    // tick bounds shutdown latency even when this connect cannot succeed.
    let mut wake = local_addr;
    if wake.ip().is_unspecified() {
        wake.set_ip(match wake.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect(wake);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    // Nonblocking accept with a sleep tick: observing the shutdown flag never
    // depends on the wake-up self-connect reaching the listener (it may not,
    // e.g. for 0.0.0.0 binds on platforms that don't route them to loopback).
    let nonblocking = listener.set_nonblocking(true).is_ok();
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut accepted: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let connection = accepted;
                accepted += 1;
                if shared.fault.as_ref().is_some_and(|plan| plan.drop_connection(connection)) {
                    shared.metrics.connections_dropped_total.inc();
                    continue; // dropping the stream closes it mid-handshake
                }
                // reap finished handlers so a long-running daemon holds
                // handles (and memory) only for *live* connections, not
                // every connection ever seen
                handlers.retain(|h| !h.is_finished());
                if handlers.len() >= shared.config.max_connections {
                    let mut stream = stream;
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.write_all(
                        b"{\"status\":\"error\",\"kind\":\"overloaded\",\"error\":\"connection limit reached, retry later\"}\n",
                    );
                    continue; // dropping the stream closes it
                }
                let shared = Arc::clone(shared);
                handlers.push(std::thread::spawn(move || handle_connection(stream, &shared)));
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(_) => {
                if !nonblocking {
                    // a blocking accept that errors repeatedly must not spin
                    std::thread::sleep(ACCEPT_TICK);
                }
            }
        }
    }
    for handler in handlers {
        let _ = handler.join();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // Holding the lock while waiting is fine: the holder takes the next
        // job and releases before solving, so dequeueing is serialised but
        // solving is parallel.
        let job = match lock_or_recover(rx).recv() {
            Ok(job) => job,
            Err(_) => break, // queue closed and drained: shutdown
        };
        shared.metrics.queue_depth.sub(1);
        shared.metrics.in_flight.add(1);
        let queue_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
        shared.metrics.queue_ms.observe(queue_ms);
        let solve_start = Instant::now();

        let outcome = execute_job(&job, shared, queue_ms);
        match &outcome {
            Ok((report, _)) => {
                shared.journal_append(&JournalRecord::Complete {
                    index: job.index,
                    report_fp: canonical_hash(report),
                    report,
                });
                shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(JobFailure::Timeout) => shared.metrics.timeouts_total.inc(),
            Err(JobFailure::Panic) => shared.metrics.worker_panics_total.inc(),
        }
        shared.metrics.in_flight.sub(1);
        let solve_ms = solve_start.elapsed().as_secs_f64() * 1e3;
        shared.metrics.solve_ms.observe(solve_ms);
        let done = JobDone { outcome, queue_ms, solve_ms };
        // The handler may have hung up (client gone); nothing to do then.
        let _ = job.respond.send(done);
    }
}

/// Runs one dequeued job to a report, a cache hit, or a failure — never a
/// panic: the solve is wrapped in `catch_unwind` so an engine crash (or an
/// injected one) is confined to this job.
fn execute_job(job: &Job, shared: &Shared, queue_ms: f64) -> Result<(String, bool), JobFailure> {
    // Re-check the cache after dequeue: back-to-back identical misses dedupe.
    let cached = lock_or_recover(&shared.cache).get(&job.cache_key).cloned();
    if let Some(report) = cached {
        shared.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok((report, true));
    }
    // A job that expired while queued is not worth starting.
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(JobFailure::Timeout);
    }
    if let Some(ms) = shared.fault.as_ref().and_then(|plan| plan.slow_solve_ms(job.index)) {
        std::thread::sleep(Duration::from_millis(ms));
    }
    if let Some(delay) = shared.config.job_delay {
        std::thread::sleep(delay);
    }
    let solved = catch_unwind(AssertUnwindSafe(|| {
        if shared.fault.as_ref().is_some_and(|plan| plan.panic_on_job(job.index)) {
            panic!("fault injection: worker panic on job {}", job.index);
        }
        let mut span = apls_telemetry::span!(
            shared.telemetry,
            "service",
            "solve",
            circuit = job.circuit.name.as_str(),
            seed = job.config.root_seed
        );
        let cancel = job.deadline.map_or_else(CancelToken::none, CancelToken::with_deadline);
        let result =
            run_portfolio_cancellable(&job.circuit, &job.config, &shared.telemetry, &cancel);
        if span.is_recording() {
            span.arg("queue_ms", queue_ms);
            span.arg("timed_out", result.is_err());
        }
        result
    }));
    match solved {
        Err(_) => Err(JobFailure::Panic),
        Ok(Err(_cancelled)) => Err(JobFailure::Timeout),
        Ok(Ok(report)) => {
            let report = report.to_json_deterministic();
            lock_or_recover(&shared.cache).insert(job.cache_key.clone(), report.clone());
            Ok((report, false))
        }
    }
}

/// Whether the handler keeps serving this connection after a request.
enum Flow {
    Continue,
    Close,
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    shared.metrics.connections_active.add(1);
    apls_telemetry::event!(shared.telemetry, "service", "accept");
    // A handler panic must not leak the active-connections slot.
    let _ = catch_unwind(AssertUnwindSafe(|| handle_connection_inner(stream, shared)));
    shared.metrics.connections_active.sub(1);
}

fn handle_connection_inner(stream: TcpStream, shared: &Arc<Shared>) {
    // accepted sockets can inherit the listener's nonblocking flag on some
    // platforms; the handler wants blocking reads with a timeout
    let _ = stream.set_nonblocking(false);
    // One-line request/response traffic is latency-bound: without NODELAY,
    // Nagle holds the reply until the peer's delayed ACK (~40 ms per turn).
    let _ = stream.set_nodelay(true);
    let Ok(()) = stream.set_read_timeout(Some(READ_TICK)) else { return };
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    let max_request = shared.config.max_request_bytes;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // The `Take` adapter enforces the request cap *during* the read, so a
        // peer streaming bytes without newlines can never make the daemon
        // buffer more than max_request_bytes + 1 bytes. Partial data stays in
        // `buf` across read-timeout ticks.
        let limit = (max_request + 1 - buf.len()) as u64;
        match reader.by_ref().take(limit).read_until(b'\n', &mut buf) {
            Ok(0) => break, // EOF
            Ok(_) => {
                if buf.len() > max_request {
                    let _ = writer.write_all(oversized_response(max_request).as_bytes());
                    break;
                }
                // under the cap and no newline means EOF arrived mid-line:
                // process what we have, the next read reports the EOF
                let Ok(text) = std::str::from_utf8(&buf) else {
                    let _ = writer.write_all(
                        format!(
                            "{}\n",
                            error_response("bad_request", "request is not valid UTF-8")
                        )
                        .as_bytes(),
                    );
                    break;
                };
                let request = text.trim();
                let flow = if request.is_empty() {
                    Flow::Continue
                } else {
                    let (mut response, flow) = process_request(request, shared, &writer);
                    response.push('\n');
                    if writer.write_all(response.as_bytes()).and_then(|()| writer.flush()).is_err()
                    {
                        break;
                    }
                    flow
                };
                buf.clear();
                if matches!(flow, Flow::Close) {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                continue; // idle tick: re-check the shutdown flag
            }
            Err(_) => break,
        }
    }
}

fn oversized_response(max_request: usize) -> String {
    format!(
        "{{\"status\":\"error\",\"kind\":\"request_too_large\",\"error\":\"request exceeds {max_request} bytes, closing connection\"}}\n"
    )
}

fn error_response(kind: &str, message: &str) -> String {
    format!("{{\"status\":\"error\",\"kind\":{},\"error\":{}}}", quote(kind), quote(message))
}

fn timeout_response(id: u64, circuit: &str, seed: u64, deadline_ms: u64) -> String {
    format!(
        "{{\"status\":\"timeout\",\"kind\":\"deadline\",\"id\":{id},\"circuit\":{},\"seed\":{seed},\"error\":\"deadline of {deadline_ms} ms exceeded\"}}",
        quote(circuit),
    )
}

fn process_request(line: &str, shared: &Arc<Shared>, writer: &TcpStream) -> (String, Flow) {
    shared.metrics.requests_total.inc();
    let (response, flow) = dispatch_request(line, shared, writer);
    // Centralised outcome accounting: every error/retry path funnels through
    // the envelope status, so the counters cannot drift from the protocol.
    // (Timeouts are counted at the worker, where expiry is detected.)
    if response.starts_with("{\"status\":\"error\"") {
        shared.metrics.errors_total.inc();
    } else if response.starts_with("{\"status\":\"retry\"") {
        shared.metrics.retries_total.inc();
    }
    (response, flow)
}

fn dispatch_request(line: &str, shared: &Arc<Shared>, writer: &TcpStream) -> (String, Flow) {
    let json = match Json::parse(line) {
        Ok(json) => json,
        Err(e) => {
            return (error_response("bad_request", &format!("invalid JSON: {e}")), Flow::Continue)
        }
    };
    let op = json.get("op").and_then(Json::as_str);
    apls_telemetry::event!(
        shared.telemetry,
        "service",
        "request",
        op = op.unwrap_or("(missing)").to_string()
    );
    match op {
        Some("ping") => (
            format!("{{\"status\":\"ok\",\"service\":\"apls\",\"protocol\":{PROTOCOL_VERSION}}}"),
            Flow::Continue,
        ),
        Some("stats") => (stats_response(shared), Flow::Continue),
        Some("shutdown") => {
            if let Ok(addr) = writer.local_addr() {
                initiate_shutdown(shared, addr);
            }
            ("{\"status\":\"shutting_down\"}".to_string(), Flow::Close)
        }
        Some("place") => (place(&json, shared), Flow::Continue),
        Some(other) => (
            error_response(
                "bad_request",
                &format!("unknown op '{other}' (place, ping, stats, shutdown)"),
            ),
            Flow::Continue,
        ),
        None => (error_response("bad_request", "request needs an 'op' field"), Flow::Continue),
    }
}

fn stats_response(shared: &Shared) -> String {
    let (cache_stats, cache_entries) = {
        let cache = lock_or_recover(&shared.cache);
        (cache.stats(), cache.len())
    };
    format!(
        "{{\"status\":\"ok\",\"workers\":{},\"queue_capacity\":{},\"cache_capacity\":{},\"jobs_completed\":{},\"cache_hits\":{},\"cache_entries\":{},\"uptime_ms\":{:.0},\"queue_depth\":{},\"in_flight\":{},\"connections\":{},\"telemetry_enabled\":{},\"journal_enabled\":{},\"poison_recoveries\":{},\"cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\"entries\":{},\"capacity\":{}}},\"metrics\":{}}}",
        shared.config.workers,
        shared.config.queue_capacity,
        shared.config.cache_capacity,
        shared.jobs_completed.load(Ordering::Relaxed),
        shared.cache_hits.load(Ordering::Relaxed),
        cache_entries,
        shared.started.elapsed().as_secs_f64() * 1e3,
        shared.metrics.queue_depth.get(),
        shared.metrics.in_flight.get(),
        shared.metrics.connections_active.get(),
        shared.telemetry.is_enabled(),
        shared.journal.is_some(),
        poison_recoveries(),
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.insertions,
        cache_stats.evictions,
        cache_entries,
        shared.config.cache_capacity,
        shared.metrics.registry.snapshot_json(),
    )
}

fn place(json: &Json, shared: &Arc<Shared>) -> String {
    let spec = match JobSpec::from_json(json) {
        Ok(spec) => spec,
        Err(e) => return error_response("bad_request", &e),
    };
    let circuit = match resolve_circuit(&spec.circuit) {
        Ok(circuit) => circuit,
        Err(e) => return error_response("bad_request", &e),
    };
    let circuit_name = circuit.name.clone();
    let circuit_canonical = serialize_circuit(&circuit);
    let circuit_hash = canonical_hash(&circuit_canonical);
    let config_canonical = spec.config_canonical();
    let deadline_ms = spec.deadline_ms;

    let total_start = Instant::now();
    let mut request_span = apls_telemetry::span!(
        shared.telemetry,
        "service",
        "place",
        circuit = circuit_name.as_str()
    );
    let (done_rx, id, seed) = {
        let mut guard = lock_or_recover(&shared.enqueue);
        let Some(slot) = guard.as_mut() else {
            return error_response("unavailable", "service is shutting down");
        };
        let index = slot.next_index;
        let seed = spec.seed.unwrap_or_else(|| shared.seeds.seed_for(JOB_SEED_LANE, index));
        let config = spec.resolved_config(seed);
        let cache_key = CacheKey { circuit: circuit_canonical, config: config_canonical, seed };
        // The journaled spec is self-contained for replay: seed pinned to
        // the resolved value, deadline stripped (a replayed job deserves its
        // full time budget — the deadline bounded the original request's
        // latency, not the result).
        let journal_spec = shared.journal.as_ref().map(|_| {
            let mut journal_spec = spec.clone();
            journal_spec.seed = Some(seed);
            journal_spec.deadline_ms = None;
            journal_spec.to_json_line()
        });
        let config_fp = spec.config_fingerprint();
        // Probe the cache here, before spending a queue slot: a hit is
        // answered even when the queue is full of multi-second solves.
        // Hits still consume a job index, exactly as enqueued jobs do, so
        // derived seeds stay replay-stable either way.
        let cached = lock_or_recover(&shared.cache).get(&cache_key).cloned();
        if let Some(report) = cached {
            slot.next_index += 1;
            if let Some(spec_line) = &journal_spec {
                shared.journal_append(&JournalRecord::Enqueue {
                    index,
                    seed,
                    circuit_hash,
                    config_fp,
                    spec: spec_line,
                });
                shared.journal_append(&JournalRecord::Complete {
                    index,
                    report_fp: canonical_hash(&report),
                    report: &report,
                });
            }
            drop(guard);
            shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            let elapsed_ms = total_start.elapsed().as_secs_f64() * 1e3;
            shared.metrics.total_ms.observe(elapsed_ms);
            if request_span.is_recording() {
                request_span.arg("id", index);
                request_span.arg("seed", seed);
                request_span.arg("cache_hit", true);
            }
            return ok_envelope(
                index,
                &circuit_name,
                seed,
                true,
                0.0,
                elapsed_ms,
                elapsed_ms,
                &report,
            );
        }
        let (done_tx, done_rx) = mpsc::channel();
        let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let job = Job {
            index,
            circuit,
            config,
            cache_key,
            deadline,
            enqueued: Instant::now(),
            respond: done_tx,
        };
        match slot.tx.try_send(job) {
            Ok(()) => {
                slot.next_index += 1;
                if let Some(spec_line) = &journal_spec {
                    shared.journal_append(&JournalRecord::Enqueue {
                        index,
                        seed,
                        circuit_hash,
                        config_fp,
                        spec: spec_line,
                    });
                }
                shared.metrics.queue_depth.add(1);
                apls_telemetry::event!(
                    shared.telemetry,
                    "service",
                    "enqueue",
                    id = index,
                    seed = seed
                );
                (done_rx, index, seed)
            }
            Err(TrySendError::Full(_)) => {
                return "{\"status\":\"retry\",\"error\":\"job queue full, retry later\"}"
                    .to_string()
            }
            Err(TrySendError::Disconnected(_)) => {
                return error_response("unavailable", "service is shutting down")
            }
        }
    };

    let Ok(done) = done_rx.recv() else {
        return error_response("internal", "worker terminated before completing the job");
    };
    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    shared.metrics.total_ms.observe(total_ms);
    match done.outcome {
        Ok((report, cache_hit)) => {
            if request_span.is_recording() {
                request_span.arg("id", id);
                request_span.arg("seed", seed);
                request_span.arg("cache_hit", cache_hit);
            }
            ok_envelope(
                id,
                &circuit_name,
                seed,
                cache_hit,
                done.queue_ms,
                done.solve_ms,
                total_ms,
                &report,
            )
        }
        Err(JobFailure::Timeout) => {
            if request_span.is_recording() {
                request_span.arg("id", id);
                request_span.arg("timed_out", true);
            }
            timeout_response(id, &circuit_name, seed, deadline_ms.unwrap_or(0))
        }
        Err(JobFailure::Panic) => error_response(
            "internal",
            "placement worker panicked while solving this job; the service is still up",
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn ok_envelope(
    id: u64,
    circuit: &str,
    seed: u64,
    cache_hit: bool,
    queue_ms: f64,
    solve_ms: f64,
    total_ms: f64,
    report: &str,
) -> String {
    format!(
        "{{\"id\":{id},\"status\":\"ok\",\"circuit\":{},\"seed\":{seed},\"cache_hit\":{cache_hit},\"queue_ms\":{queue_ms:.3},\"solve_ms\":{solve_ms:.3},\"total_ms\":{total_ms:.3},\"report\":{}}}",
        quote(circuit),
        quote(report),
    )
}

fn resolve_circuit(source: &CircuitSource) -> Result<BenchmarkCircuit, String> {
    match source {
        CircuitSource::Bundled(name) => benchmarks::by_name(name).ok_or_else(|| {
            format!("unknown circuit '{name}' (available: {})", benchmarks::names().join(", "))
        }),
        CircuitSource::Inline(text) => {
            apls_io::parse_circuit(text).map_err(|e| format!("invalid inline circuit: {e}"))
        }
    }
}
