//! The placement daemon: TCP acceptor, bounded job queue, worker pool,
//! result cache.
//!
//! ```text
//!            ┌────────────┐   bounded sync_channel    ┌──────────┐
//!  TCP ──────► connection │ ──── Job {circuit, ...} ──► worker 0..N
//!  clients   │  handlers  │ ◄─── JobDone {report} ──── │ run_portfolio
//!            └────────────┘     (per-job channel)      └────┬─────┘
//!                 ▲                                         │
//!                 └──────────── LRU result cache ◄──────────┘
//! ```
//!
//! Determinism contract: a job's report body is
//! [`apls_portfolio::PortfolioReport::to_json_deterministic`] — a pure
//! function of `(circuit, config, seed)` — so responses are byte-identical
//! regardless of worker count, queue depth, arrival order, or whether the
//! cache served them. Jobs without a pinned seed get one from
//! [`SeedStream::seed_for`]`(JOB_SEED_LANE, job_index)` where `job_index`
//! counts accepted jobs from 0, so replaying a job log against a fresh
//! service reproduces every report bit for bit.

use crate::cache::LruCache;
use crate::json::{quote, Json};
use crate::metrics::ServiceMetrics;
use crate::protocol::{CircuitSource, JobSpec};
use apls_anneal::rng::SeedStream;
use apls_circuit::benchmarks::{self, BenchmarkCircuit};
use apls_io::serialize_circuit;
use apls_portfolio::{run_portfolio_traced, PortfolioConfig};
use apls_telemetry::Telemetry;
use std::io::Read;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The seed-stream lane job seeds derive from (engines use lanes 1–5 of
/// their per-job streams; this lane lives in the *service's* stream, rooted
/// at [`ServiceConfig::seed`]).
pub const JOB_SEED_LANE: u64 = 0x10B;

/// Wire-protocol version reported by `ping`.
pub const PROTOCOL_VERSION: u32 = 1;

/// How long a connection handler waits for bytes before re-checking the
/// shutdown flag. Bounds shutdown latency for idle connections.
const READ_TICK: Duration = Duration::from_millis(200);

/// Largest accepted request line. Inline `.apls` circuits are the big case
/// (~30 bytes per module line); 16 MiB fits circuits three orders of
/// magnitude beyond the largest bundled benchmark while bounding what one
/// peer can make the daemon buffer.
const MAX_REQUEST_BYTES: usize = 16 * 1024 * 1024;

/// Concurrent connections served at once; beyond this, new connections are
/// refused with an error line so a connection flood cannot exhaust threads.
const MAX_CONNECTIONS: usize = 1024;

/// How long the (nonblocking) acceptor sleeps between polls. Bounds both
/// idle CPU and shutdown latency.
const ACCEPT_TICK: Duration = Duration::from_millis(50);

/// Configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Interface to bind.
    pub host: String,
    /// Port to bind (`0` = ephemeral, see
    /// [`PlacementService::local_addr`]).
    pub port: u16,
    /// Worker threads executing placement jobs.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue answers `retry`.
    pub queue_capacity: usize,
    /// Result-cache entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Root of the service seed stream for jobs without a pinned seed.
    pub seed: u64,
    /// Test/bench hook: artificial extra latency per computed (non-cached)
    /// job, simulating heavier circuits than the suite can afford to run.
    pub job_delay: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 128,
            seed: 1,
            job_delay: None,
        }
    }
}

/// The result-cache key: full canonical content, not hashes, so a 64-bit
/// hash collision can never serve one client another circuit's report.
/// (`HashMap` hashes the strings internally; equality compares the bytes.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// Canonical `.apls` text of the circuit.
    circuit: String,
    /// Canonical string of every result-relevant config field.
    config: String,
    /// The job's root seed.
    seed: u64,
}

/// One queued placement job.
struct Job {
    circuit: BenchmarkCircuit,
    config: PortfolioConfig,
    cache_key: CacheKey,
    enqueued: Instant,
    respond: mpsc::Sender<JobDone>,
}

/// What a worker hands back to the connection handler.
struct JobDone {
    report: String,
    cache_hit: bool,
    queue_ms: f64,
    solve_ms: f64,
}

/// The sending half of the job queue plus the arrival-order job counter,
/// behind one mutex so that (index assignment, enqueue) is atomic: a
/// rejected job never consumes an index, which keeps derived seeds replayable.
struct EnqueueSlot {
    next_index: u64,
    tx: SyncSender<Job>,
}

/// State shared by the acceptor, handlers and workers.
struct Shared {
    config: ServiceConfig,
    seeds: SeedStream,
    started: Instant,
    shutdown: AtomicBool,
    jobs_completed: AtomicU64,
    cache_hits: AtomicU64,
    cache: Mutex<LruCache<CacheKey, String>>,
    enqueue: Mutex<Option<EnqueueSlot>>,
    telemetry: Telemetry,
    metrics: ServiceMetrics,
}

/// A running placement service.
///
/// # Example
///
/// ```
/// use apls_service::{JobSpec, PlacementService, ServiceClient, ServiceConfig};
///
/// let service = PlacementService::start(ServiceConfig::default()).expect("binds");
/// let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
/// let spec = JobSpec::bundled("miller_opamp_fig6").with_seed(7).with_restarts(1).with_fast(true);
/// let response = client.place(&spec).expect("round-trips");
/// assert!(response.is_ok());
/// service.shutdown();
/// service.join();
/// ```
pub struct PlacementService {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl PlacementService {
    /// Binds the listener and spawns the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    ///
    /// # Panics
    ///
    /// Panics when `workers` or `queue_capacity` is zero.
    pub fn start(config: ServiceConfig) -> std::io::Result<PlacementService> {
        PlacementService::start_with_telemetry(config, Telemetry::disabled())
    }

    /// [`PlacementService::start`] with a telemetry handle threaded through
    /// the request lifecycle and into every placement job. Observe-only:
    /// report bodies are byte-identical whatever collector is installed.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    ///
    /// # Panics
    ///
    /// Panics when `workers` or `queue_capacity` is zero.
    pub fn start_with_telemetry(
        config: ServiceConfig,
        telemetry: Telemetry,
    ) -> std::io::Result<PlacementService> {
        assert!(config.workers >= 1, "service needs at least one worker");
        assert!(config.queue_capacity >= 1, "service needs a queue depth of at least 1");
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let local_addr = listener.local_addr()?;

        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(Shared {
            seeds: SeedStream::new(config.seed),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            jobs_completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            enqueue: Mutex::new(Some(EnqueueSlot { next_index: 0, tx })),
            telemetry,
            metrics: ServiceMetrics::new(),
            config,
        });

        let workers = (0..shared.config.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&rx, &shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || accept_loop(&listener, &shared)))
        };
        Ok(PlacementService { local_addr, shared, acceptor, workers })
    }

    /// The bound address (with the actual port when an ephemeral one was
    /// requested).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Initiates a graceful shutdown: stop accepting, drain the queue, let
    /// in-flight responses go out. Idempotent; [`PlacementService::join`]
    /// waits for completion.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared, self.local_addr);
    }

    /// Blocks until the service has shut down (via
    /// [`PlacementService::shutdown`] or a client `shutdown` request) and
    /// every thread has exited.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for PlacementService {
    fn drop(&mut self) {
        self.shutdown();
        self.join_threads();
    }
}

fn initiate_shutdown(shared: &Shared, local_addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Dropping the only SyncSender lets the workers drain the queue and exit.
    shared.enqueue.lock().expect("enqueue lock").take();
    // Best-effort accelerator: a throwaway connection makes a (blocking)
    // acceptor observe the flag immediately. The nonblocking acceptor's poll
    // tick bounds shutdown latency even when this connect cannot succeed.
    let mut wake = local_addr;
    if wake.ip().is_unspecified() {
        wake.set_ip(match wake.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect(wake);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    // Nonblocking accept with a sleep tick: observing the shutdown flag never
    // depends on the wake-up self-connect reaching the listener (it may not,
    // e.g. for 0.0.0.0 binds on platforms that don't route them to loopback).
    let nonblocking = listener.set_nonblocking(true).is_ok();
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // reap finished handlers so a long-running daemon holds
                // handles (and memory) only for *live* connections, not
                // every connection ever seen
                handlers.retain(|h| !h.is_finished());
                if handlers.len() >= MAX_CONNECTIONS {
                    let mut stream = stream;
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.write_all(
                        b"{\"status\":\"error\",\"error\":\"connection limit reached, retry later\"}\n",
                    );
                    continue; // dropping the stream closes it
                }
                let shared = Arc::clone(shared);
                handlers.push(std::thread::spawn(move || handle_connection(stream, &shared)));
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(_) => {
                if !nonblocking {
                    // a blocking accept that errors repeatedly must not spin
                    std::thread::sleep(ACCEPT_TICK);
                }
            }
        }
    }
    for handler in handlers {
        let _ = handler.join();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // Holding the lock while waiting is fine: the holder takes the next
        // job and releases before solving, so dequeueing is serialised but
        // solving is parallel.
        let job = match rx.lock().expect("queue lock").recv() {
            Ok(job) => job,
            Err(_) => break, // queue closed and drained: shutdown
        };
        shared.metrics.queue_depth.sub(1);
        shared.metrics.in_flight.add(1);
        let queue_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
        shared.metrics.queue_ms.observe(queue_ms);
        let solve_start = Instant::now();

        let cached = shared.cache.lock().expect("cache lock").get(&job.cache_key).cloned();
        let (report, cache_hit) = match cached {
            Some(report) => {
                shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                (report, true)
            }
            None => {
                if let Some(delay) = shared.config.job_delay {
                    std::thread::sleep(delay);
                }
                let mut span = apls_telemetry::span!(
                    shared.telemetry,
                    "service",
                    "solve",
                    circuit = job.circuit.name.as_str(),
                    seed = job.config.root_seed
                );
                let report = run_portfolio_traced(&job.circuit, &job.config, &shared.telemetry)
                    .to_json_deterministic();
                if span.is_recording() {
                    span.arg("queue_ms", queue_ms);
                }
                drop(span);
                shared.cache.lock().expect("cache lock").insert(job.cache_key, report.clone());
                (report, false)
            }
        };
        shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
        shared.metrics.in_flight.sub(1);
        let solve_ms = solve_start.elapsed().as_secs_f64() * 1e3;
        shared.metrics.solve_ms.observe(solve_ms);
        let done = JobDone { report, cache_hit, queue_ms, solve_ms };
        // The handler may have hung up (client gone); nothing to do then.
        let _ = job.respond.send(done);
    }
}

/// Whether the handler keeps serving this connection after a request.
enum Flow {
    Continue,
    Close,
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    shared.metrics.connections_active.add(1);
    apls_telemetry::event!(shared.telemetry, "service", "accept");
    handle_connection_inner(stream, shared);
    shared.metrics.connections_active.sub(1);
}

fn handle_connection_inner(stream: TcpStream, shared: &Arc<Shared>) {
    // accepted sockets can inherit the listener's nonblocking flag on some
    // platforms; the handler wants blocking reads with a timeout
    let _ = stream.set_nonblocking(false);
    // One-line request/response traffic is latency-bound: without NODELAY,
    // Nagle holds the reply until the peer's delayed ACK (~40 ms per turn).
    let _ = stream.set_nodelay(true);
    let Ok(()) = stream.set_read_timeout(Some(READ_TICK)) else { return };
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // The `Take` adapter enforces the request cap *during* the read, so a
        // peer streaming bytes without newlines can never make the daemon
        // buffer more than MAX_REQUEST_BYTES + 1 bytes. Partial data stays in
        // `buf` across read-timeout ticks.
        let limit = (MAX_REQUEST_BYTES + 1 - buf.len()) as u64;
        match reader.by_ref().take(limit).read_until(b'\n', &mut buf) {
            Ok(0) => break, // EOF
            Ok(_) => {
                if buf.len() > MAX_REQUEST_BYTES {
                    let _ = writer.write_all(oversized_response().as_bytes());
                    break;
                }
                // under the cap and no newline means EOF arrived mid-line:
                // process what we have, the next read reports the EOF
                let Ok(text) = std::str::from_utf8(&buf) else {
                    let _ = writer.write_all(
                        format!("{}\n", error_response("request is not valid UTF-8")).as_bytes(),
                    );
                    break;
                };
                let request = text.trim();
                let flow = if request.is_empty() {
                    Flow::Continue
                } else {
                    let (mut response, flow) = process_request(request, shared, &writer);
                    response.push('\n');
                    if writer.write_all(response.as_bytes()).and_then(|()| writer.flush()).is_err()
                    {
                        break;
                    }
                    flow
                };
                buf.clear();
                if matches!(flow, Flow::Close) {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                continue; // idle tick: re-check the shutdown flag
            }
            Err(_) => break,
        }
    }
}

fn oversized_response() -> String {
    format!(
        "{{\"status\":\"error\",\"error\":\"request exceeds {MAX_REQUEST_BYTES} bytes, closing connection\"}}\n"
    )
}

fn error_response(message: &str) -> String {
    format!("{{\"status\":\"error\",\"error\":{}}}", quote(message))
}

fn process_request(line: &str, shared: &Arc<Shared>, writer: &TcpStream) -> (String, Flow) {
    shared.metrics.requests_total.inc();
    let (response, flow) = dispatch_request(line, shared, writer);
    // Centralised outcome accounting: every error/retry path funnels through
    // the envelope status, so the counters cannot drift from the protocol.
    if response.starts_with("{\"status\":\"error\"") {
        shared.metrics.errors_total.inc();
    } else if response.starts_with("{\"status\":\"retry\"") {
        shared.metrics.retries_total.inc();
    }
    (response, flow)
}

fn dispatch_request(line: &str, shared: &Arc<Shared>, writer: &TcpStream) -> (String, Flow) {
    let json = match Json::parse(line) {
        Ok(json) => json,
        Err(e) => return (error_response(&format!("invalid JSON: {e}")), Flow::Continue),
    };
    let op = json.get("op").and_then(Json::as_str);
    apls_telemetry::event!(
        shared.telemetry,
        "service",
        "request",
        op = op.unwrap_or("(missing)").to_string()
    );
    match op {
        Some("ping") => (
            format!("{{\"status\":\"ok\",\"service\":\"apls\",\"protocol\":{PROTOCOL_VERSION}}}"),
            Flow::Continue,
        ),
        Some("stats") => (stats_response(shared), Flow::Continue),
        Some("shutdown") => {
            if let Ok(addr) = writer.local_addr() {
                initiate_shutdown(shared, addr);
            }
            ("{\"status\":\"shutting_down\"}".to_string(), Flow::Close)
        }
        Some("place") => (place(&json, shared), Flow::Continue),
        Some(other) => (
            error_response(&format!("unknown op '{other}' (place, ping, stats, shutdown)")),
            Flow::Continue,
        ),
        None => (error_response("request needs an 'op' field"), Flow::Continue),
    }
}

fn stats_response(shared: &Shared) -> String {
    let (cache_stats, cache_entries) = {
        let cache = shared.cache.lock().expect("cache lock");
        (cache.stats(), cache.len())
    };
    format!(
        "{{\"status\":\"ok\",\"workers\":{},\"queue_capacity\":{},\"cache_capacity\":{},\"jobs_completed\":{},\"cache_hits\":{},\"cache_entries\":{},\"uptime_ms\":{:.0},\"queue_depth\":{},\"in_flight\":{},\"connections\":{},\"telemetry_enabled\":{},\"cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\"entries\":{},\"capacity\":{}}},\"metrics\":{}}}",
        shared.config.workers,
        shared.config.queue_capacity,
        shared.config.cache_capacity,
        shared.jobs_completed.load(Ordering::Relaxed),
        shared.cache_hits.load(Ordering::Relaxed),
        cache_entries,
        shared.started.elapsed().as_secs_f64() * 1e3,
        shared.metrics.queue_depth.get(),
        shared.metrics.in_flight.get(),
        shared.metrics.connections_active.get(),
        shared.telemetry.is_enabled(),
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.insertions,
        cache_stats.evictions,
        cache_entries,
        shared.config.cache_capacity,
        shared.metrics.registry.snapshot_json(),
    )
}

fn place(json: &Json, shared: &Arc<Shared>) -> String {
    let spec = match JobSpec::from_json(json) {
        Ok(spec) => spec,
        Err(e) => return error_response(&e),
    };
    let circuit = match resolve_circuit(&spec.circuit) {
        Ok(circuit) => circuit,
        Err(e) => return error_response(&e),
    };
    let circuit_name = circuit.name.clone();
    let circuit_canonical = serialize_circuit(&circuit);
    let config_canonical = spec.config_canonical();

    let total_start = Instant::now();
    let mut request_span = apls_telemetry::span!(
        shared.telemetry,
        "service",
        "place",
        circuit = circuit_name.as_str()
    );
    let (done_rx, id, seed) = {
        let mut guard = shared.enqueue.lock().expect("enqueue lock");
        let Some(slot) = guard.as_mut() else {
            return error_response("service is shutting down");
        };
        let index = slot.next_index;
        let seed = spec.seed.unwrap_or_else(|| shared.seeds.seed_for(JOB_SEED_LANE, index));
        let config = spec.resolved_config(seed);
        let cache_key = CacheKey { circuit: circuit_canonical, config: config_canonical, seed };
        // Probe the cache here, before spending a queue slot: a hit is
        // answered even when the queue is full of multi-second solves.
        // Hits still consume a job index, exactly as enqueued jobs do, so
        // derived seeds stay replay-stable either way.
        let cached = shared.cache.lock().expect("cache lock").get(&cache_key).cloned();
        if let Some(report) = cached {
            slot.next_index += 1;
            drop(guard);
            shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            let elapsed_ms = total_start.elapsed().as_secs_f64() * 1e3;
            shared.metrics.total_ms.observe(elapsed_ms);
            if request_span.is_recording() {
                request_span.arg("id", index);
                request_span.arg("seed", seed);
                request_span.arg("cache_hit", true);
            }
            return ok_envelope(
                index,
                &circuit_name,
                seed,
                true,
                0.0,
                elapsed_ms,
                elapsed_ms,
                &report,
            );
        }
        let (done_tx, done_rx) = mpsc::channel();
        let job = Job { circuit, config, cache_key, enqueued: Instant::now(), respond: done_tx };
        match slot.tx.try_send(job) {
            Ok(()) => {
                slot.next_index += 1;
                shared.metrics.queue_depth.add(1);
                apls_telemetry::event!(
                    shared.telemetry,
                    "service",
                    "enqueue",
                    id = index,
                    seed = seed
                );
                (done_rx, index, seed)
            }
            Err(TrySendError::Full(_)) => {
                return "{\"status\":\"retry\",\"error\":\"job queue full, retry later\"}"
                    .to_string()
            }
            Err(TrySendError::Disconnected(_)) => {
                return error_response("service is shutting down")
            }
        }
    };

    let Ok(done) = done_rx.recv() else {
        return error_response("worker terminated before completing the job");
    };
    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    shared.metrics.total_ms.observe(total_ms);
    if request_span.is_recording() {
        request_span.arg("id", id);
        request_span.arg("seed", seed);
        request_span.arg("cache_hit", done.cache_hit);
    }
    ok_envelope(
        id,
        &circuit_name,
        seed,
        done.cache_hit,
        done.queue_ms,
        done.solve_ms,
        total_ms,
        &done.report,
    )
}

#[allow(clippy::too_many_arguments)]
fn ok_envelope(
    id: u64,
    circuit: &str,
    seed: u64,
    cache_hit: bool,
    queue_ms: f64,
    solve_ms: f64,
    total_ms: f64,
    report: &str,
) -> String {
    format!(
        "{{\"id\":{id},\"status\":\"ok\",\"circuit\":{},\"seed\":{seed},\"cache_hit\":{cache_hit},\"queue_ms\":{queue_ms:.3},\"solve_ms\":{solve_ms:.3},\"total_ms\":{total_ms:.3},\"report\":{}}}",
        quote(circuit),
        quote(report),
    )
}

fn resolve_circuit(source: &CircuitSource) -> Result<BenchmarkCircuit, String> {
    match source {
        CircuitSource::Bundled(name) => benchmarks::by_name(name).ok_or_else(|| {
            format!("unknown circuit '{name}' (available: {})", benchmarks::names().join(", "))
        }),
        CircuitSource::Inline(text) => {
            apls_io::parse_circuit(text).map_err(|e| format!("invalid inline circuit: {e}"))
        }
    }
}
