//! The placement daemon: TCP acceptor, bounded job queue, worker pool,
//! result cache.
//!
//! ```text
//!            ┌────────────┐   bounded sync_channel    ┌──────────┐
//!  TCP ──────► connection │ ──── Job {circuit, ...} ──► worker 0..N
//!  clients   │  handlers  │ ◄─── JobDone {report} ──── │ run_portfolio
//!            └────────────┘     (per-job channel)      └────┬─────┘
//!                 ▲                                         │
//!                 └──────────── LRU result cache ◄──────────┘
//!                                     ▲
//!                    durable job journal (enqueue/complete)
//! ```
//!
//! Determinism contract: a job's report body is
//! [`apls_portfolio::PortfolioReport::to_json_deterministic`] — a pure
//! function of `(circuit, config, seed)` — so responses are byte-identical
//! regardless of worker count, queue depth, arrival order, or whether the
//! cache served them. Jobs without a pinned seed get one from
//! [`SeedStream::seed_for`]`(JOB_SEED_LANE, job_index)` where `job_index`
//! counts accepted jobs from 0, so replaying a job log against a fresh
//! service reproduces every report bit for bit.
//!
//! Fault tolerance (see DESIGN.md §12): the optional [`crate::journal`]
//! extends the replay guarantee across a crash — completed reports are
//! restored into the cache at startup and incomplete jobs are re-solved with
//! their recorded seeds. Worker panics are caught per job
//! (`catch_unwind`), answered as `{"status":"error","kind":"internal"}`,
//! and never poison shared state ([`crate::sync::lock_or_recover`]); a
//! panic that escapes the job boundary respawns the worker loop in place.
//! Per-job deadlines cancel cooperatively between restarts and answer
//! `{"status":"timeout"}`. A deterministic [`FaultPlan`] can inject worker
//! panics, forced-slow solves, journal write failures and connection drops
//! at pinned points for testing.

use crate::cache::LruCache;
use crate::fault::FaultPlan;
use crate::journal::{Journal, JournalConfig, JournalRecord, Recovery};
use crate::json::{quote, Json};
use crate::metrics::ServiceMetrics;
#[cfg(unix)]
use crate::poller::{new_poller, Interest, PollEvent, Poller, WakePipe, WakeSender};
use crate::protocol::{CircuitSource, JobSpec};
use crate::sync::{lock_or_recover, poison_recoveries};
use apls_anneal::rng::SeedStream;
use apls_circuit::benchmarks::{self, BenchmarkCircuit};
use apls_io::{canonical_hash, serialize_circuit};
use apls_portfolio::{
    run_portfolio_observed, CancelToken, PortfolioConfig, RestartObserver, RestartRecord,
};
use apls_telemetry::{FlightRecorder, Telemetry};
use std::collections::VecDeque;
use std::io::Read;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The seed-stream lane job seeds derive from (engines use lanes 1–5 of
/// their per-job streams; this lane lives in the *service's* stream, rooted
/// at [`ServiceConfig::seed`]).
pub const JOB_SEED_LANE: u64 = 0x10B;

/// Wire-protocol version reported by `ping`.
pub const PROTOCOL_VERSION: u32 = 1;

/// How long a connection handler waits for bytes before re-checking the
/// shutdown flag. Bounds shutdown latency for idle connections.
const READ_TICK: Duration = Duration::from_millis(200);

/// Default for [`ServiceConfig::max_request_bytes`]. Inline `.apls` circuits
/// are the big case (~30 bytes per module line); 16 MiB fits circuits three
/// orders of magnitude beyond the largest bundled benchmark while bounding
/// what one peer can make the daemon buffer.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 16 * 1024 * 1024;

/// Default for [`ServiceConfig::max_connections`]; beyond the limit, new
/// connections are refused with an error line so a connection flood cannot
/// exhaust threads.
pub const DEFAULT_MAX_CONNECTIONS: usize = 1024;

/// How long the (nonblocking) acceptor sleeps between polls when no
/// readiness poller is available (non-Unix, or poller setup failed). With a
/// poller, the acceptor blocks on readiness and a self-pipe wakeup replaces
/// the tick entirely.
const ACCEPT_TICK: Duration = Duration::from_millis(50);

/// How the service maps connections to execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// One reactor thread owns the listener and every connection behind a
    /// readiness poller (epoll on Linux, `poll(2)` elsewhere): nonblocking
    /// reads/writes, per-connection buffers, backpressure via interest
    /// re-registration. Thousands of held-open connections cost buffers, not
    /// threads. The default; platforms without a poller (non-Unix) fall back
    /// to [`ServeMode::LegacyThreads`] transparently.
    #[default]
    EventLoop,
    /// The pre-reactor shape: one blocking handler thread per connection.
    /// Kept as an escape hatch (`apls serve --legacy-threads`) and as the
    /// portable fallback.
    LegacyThreads,
}

impl ServeMode {
    /// The `stats` wire name of the mode.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ServeMode::EventLoop => "event_loop",
            ServeMode::LegacyThreads => "legacy_threads",
        }
    }
}

/// Configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Interface to bind.
    pub host: String,
    /// Port to bind (`0` = ephemeral, see
    /// [`PlacementService::local_addr`]).
    pub port: u16,
    /// Worker threads executing placement jobs.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue answers `retry`.
    pub queue_capacity: usize,
    /// Result-cache entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Root of the service seed stream for jobs without a pinned seed.
    pub seed: u64,
    /// Test/bench hook: artificial extra latency per computed (non-cached)
    /// job, simulating heavier circuits than the suite can afford to run.
    pub job_delay: Option<Duration>,
    /// Concurrent connections served at once (default
    /// [`DEFAULT_MAX_CONNECTIONS`]).
    pub max_connections: usize,
    /// Largest accepted request line (default
    /// [`DEFAULT_MAX_REQUEST_BYTES`]); an oversized line is answered with
    /// `{"status":"error","kind":"request_too_large"}` and the connection
    /// closed.
    pub max_request_bytes: usize,
    /// Optional durable job journal; see [`crate::journal`]. `None` keeps
    /// the pre-journal in-memory behaviour.
    pub journal: Option<JournalConfig>,
    /// Deterministic fault injection (tests/CI only; the CLI additionally
    /// requires the `APLS_FAULT_INJECTION=1` environment guard).
    pub fault_plan: Option<FaultPlan>,
    /// Connection-handling architecture (default [`ServeMode::EventLoop`];
    /// falls back to [`ServeMode::LegacyThreads`] where no readiness poller
    /// exists).
    pub mode: ServeMode,
    /// Optional HTTP sidecar address (`host:port`) exposing Prometheus
    /// `/metrics`, `/healthz` and `/readyz`. `None` (the default) serves no
    /// HTTP endpoint.
    pub metrics_addr: Option<String>,
    /// Flight-recorder ring capacity in events; `0` disables the recorder.
    /// The default keeps a small always-on ring so every daemon can produce
    /// a postmortem dump.
    pub flight_recorder: usize,
    /// Where flight-recorder dumps land (and, via `<path>.a`/`<path>.b`,
    /// the crash-survivable spill ring). `None` dumps to a per-process file
    /// in the system temp directory and keeps no spill.
    pub flight_recorder_path: Option<PathBuf>,
}

/// Default flight-recorder ring capacity (events).
pub const DEFAULT_FLIGHT_RECORDER_CAPACITY: usize = 2048;

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 128,
            seed: 1,
            job_delay: None,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            journal: None,
            fault_plan: None,
            mode: ServeMode::default(),
            metrics_addr: None,
            flight_recorder: DEFAULT_FLIGHT_RECORDER_CAPACITY,
            flight_recorder_path: None,
        }
    }
}

/// The result-cache key: full canonical content, not hashes, so a 64-bit
/// hash collision can never serve one client another circuit's report.
/// (`HashMap` hashes the strings internally; equality compares the bytes.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// Canonical `.apls` text of the circuit.
    circuit: String,
    /// Canonical string of every result-relevant config field.
    config: String,
    /// The job's root seed.
    seed: u64,
}

/// One queued placement job.
struct Job {
    /// Arrival-order job index (the envelope's `id`, the journal's `index`).
    index: u64,
    circuit: BenchmarkCircuit,
    config: PortfolioConfig,
    cache_key: CacheKey,
    /// Cooperative deadline; an expired job answers `timeout`.
    deadline: Option<Instant>,
    enqueued: Instant,
    respond: Responder,
    /// Streamed jobs get per-restart `progress` messages; plain jobs only
    /// the final [`JobMsg::Done`].
    streaming: bool,
}

/// Why a job produced no report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobFailure {
    /// The solve panicked; the worker caught it and kept running.
    Panic,
    /// The job expired its deadline before completing.
    Timeout,
}

/// What a worker hands back to the connection handler.
pub(crate) struct JobDone {
    /// The deterministic report (with its cache-hit flag), or why there is
    /// none.
    pub(crate) outcome: Result<(String, bool), JobFailure>,
    pub(crate) queue_ms: f64,
    pub(crate) solve_ms: f64,
}

/// A worker-to-responder message for one job.
pub(crate) enum JobMsg {
    /// One restart of a streamed job completed (plan order).
    Progress {
        /// Engine that ran the restart.
        engine: &'static str,
        /// Restart number within that engine.
        restart: usize,
        /// Restarts completed so far (1-based).
        completed: usize,
        /// Planned total restarts.
        total: usize,
        /// The restart's placement cost.
        cost: f64,
    },
    /// The job finished (report, timeout or panic).
    Done(JobDone),
}

/// Where a worker delivers a job's messages.
pub(crate) enum Responder {
    /// A blocking handler thread waiting on a per-job channel
    /// (legacy-threads mode, and the recovery replay's throwaway channel).
    Sync(mpsc::Sender<JobMsg>),
    /// The reactor's completion queue plus its wakeup pipe (event-loop
    /// mode): workers never touch connection sockets, they hand the message
    /// to the reactor thread that owns them.
    #[cfg(unix)]
    Reactor(Arc<CompletionQueue>),
}

impl Responder {
    /// Delivers one message for job `index`. Best-effort: a vanished
    /// receiver (client hung up, reactor shut down) is not an error.
    pub(crate) fn send(&self, index: u64, msg: JobMsg) {
        match self {
            Responder::Sync(tx) => {
                let _ = index;
                let _ = tx.send(msg);
            }
            #[cfg(unix)]
            Responder::Reactor(completions) => completions.push(index, msg),
        }
    }
}

/// The reactor's inbound queue of job messages, shared with every worker.
/// Pushing wakes the reactor out of its readiness poll via the self-pipe.
#[cfg(unix)]
pub(crate) struct CompletionQueue {
    queue: Mutex<VecDeque<(u64, JobMsg)>>,
    wake: WakeSender,
}

#[cfg(unix)]
impl CompletionQueue {
    pub(crate) fn new(wake: WakeSender) -> CompletionQueue {
        CompletionQueue { queue: Mutex::new(VecDeque::new()), wake }
    }

    fn push(&self, index: u64, msg: JobMsg) {
        lock_or_recover(&self.queue).push_back((index, msg));
        self.wake.wake();
    }

    /// Takes everything queued so far (reactor thread only).
    pub(crate) fn drain(&self) -> Vec<(u64, JobMsg)> {
        lock_or_recover(&self.queue).drain(..).collect()
    }
}

/// The sending half of the job queue plus the arrival-order job counter,
/// behind one mutex so that (index assignment, enqueue, journal append) is
/// atomic: a rejected job never consumes an index and journal records appear
/// in index order, which keeps derived seeds replayable.
struct EnqueueSlot {
    next_index: u64,
    tx: SyncSender<Job>,
}

/// State shared by the acceptor/reactor, handlers and workers.
pub(crate) struct Shared {
    pub(crate) config: ServiceConfig,
    seeds: SeedStream,
    started: Instant,
    pub(crate) shutdown: AtomicBool,
    jobs_completed: AtomicU64,
    cache_hits: AtomicU64,
    cache: Mutex<LruCache<CacheKey, String>>,
    enqueue: Mutex<Option<EnqueueSlot>>,
    journal: Option<Journal>,
    pub(crate) fault: Option<Arc<FaultPlan>>,
    pub(crate) telemetry: Telemetry,
    pub(crate) metrics: ServiceMetrics,
    /// The always-on flight recorder (absent when `flight_recorder == 0`).
    pub(crate) recorder: Option<Arc<FlightRecorder>>,
    /// True while the journal-recovery replay thread is still re-enqueueing
    /// pre-crash jobs; `/readyz` answers 503 until this clears.
    pub(crate) recovery_pending: AtomicBool,
    /// Self-pipe sender: wakes the reactor (or poller-backed acceptor) out
    /// of its readiness wait on shutdown and on job completion.
    #[cfg(unix)]
    wake: Option<WakeSender>,
    /// Event-loop mode only: the reactor's completion queue; workers push
    /// job messages here instead of per-job channels.
    #[cfg(unix)]
    completions: Option<Arc<CompletionQueue>>,
}

impl Shared {
    /// The reactor's completion queue (event-loop mode only).
    #[cfg(unix)]
    pub(crate) fn completions(&self) -> Option<Arc<CompletionQueue>> {
        self.completions.clone()
    }

    /// Appends a journal record, degrading to non-durable on failure: the
    /// job is answered either way, the failure is counted and traced, and
    /// the flight recorder captures the moments leading up to it.
    fn journal_append(&self, record: &JournalRecord<'_>) {
        let Some(journal) = &self.journal else { return };
        match journal.append(record) {
            Ok(()) => self.metrics.journal_records_total.inc(),
            Err(e) => {
                self.metrics.journal_write_failures_total.inc();
                apls_telemetry::event!(
                    self.telemetry,
                    "service",
                    "journal_write_failure",
                    error = e.to_string()
                );
                self.dump_flight("journal_write_failure");
            }
        }
    }

    /// Where flight-recorder dumps land: the configured path, or a
    /// per-process file under the system temp directory.
    pub(crate) fn flight_dump_path(&self) -> PathBuf {
        self.config.flight_recorder_path.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("apls-flight-{}.jsonl", std::process::id()))
        })
    }

    /// Best-effort postmortem capture: writes the flight-recorder ring to
    /// disk. Called on worker panics and fault-injection trips; failures are
    /// swallowed (a crash path must not crash harder).
    pub(crate) fn dump_flight(&self, reason: &str) {
        let Some(recorder) = &self.recorder else { return };
        let path = self.flight_dump_path();
        if let Ok(events) = recorder.dump_to(&path) {
            self.metrics.flight_dumps_total.inc();
            apls_telemetry::event!(
                self.telemetry,
                "service",
                "flight_dump",
                reason = reason.to_string(),
                events = events as u64
            );
        }
    }

    /// Readiness for `/readyz`: the journal-recovery replay has finished
    /// re-enqueueing and the job queue sits below its high-water mark
    /// (90% of capacity), i.e. the instance can absorb new work.
    pub(crate) fn is_ready(&self) -> (bool, &'static str) {
        if self.recovery_pending.load(Ordering::SeqCst) {
            return (false, "recovery replay in progress");
        }
        let capacity = self.config.queue_capacity as i64;
        let high_water = (capacity * 9 / 10).max(1);
        if self.metrics.queue_depth.get() >= high_water {
            return (false, "job queue above high-water");
        }
        (true, "ready")
    }

    /// Uptime in whole seconds, refreshing the gauge as a side effect so
    /// both `stats` snapshots and `/metrics` scrapes see a current value.
    pub(crate) fn refresh_uptime(&self) -> u64 {
        let uptime = self.started.elapsed().as_secs();
        self.metrics.uptime_seconds.set(uptime as i64);
        uptime
    }
}

/// A running placement service.
///
/// # Example
///
/// ```
/// use apls_service::{JobSpec, PlacementService, ServiceClient, ServiceConfig};
///
/// let service = PlacementService::start(ServiceConfig::default()).expect("binds");
/// let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
/// let spec = JobSpec::bundled("miller_opamp_fig6").with_seed(7).with_restarts(1).with_fast(true);
/// let response = client.place(&spec).expect("round-trips");
/// assert!(response.is_ok());
/// service.shutdown();
/// service.join();
/// ```
pub struct PlacementService {
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    recovery: Option<JoinHandle<()>>,
    metrics_server: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl PlacementService {
    /// Binds the listener and spawns the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable, or the
    /// journal open/replay error when a configured journal cannot be used.
    ///
    /// # Panics
    ///
    /// Panics when `workers` or `queue_capacity` is zero.
    pub fn start(config: ServiceConfig) -> std::io::Result<PlacementService> {
        PlacementService::start_with_telemetry(config, Telemetry::disabled())
    }

    /// [`PlacementService::start`] with a telemetry handle threaded through
    /// the request lifecycle and into every placement job. Observe-only:
    /// report bodies are byte-identical whatever collector is installed.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable, or the
    /// journal open/replay error when a configured journal cannot be used.
    ///
    /// # Panics
    ///
    /// Panics when `workers` or `queue_capacity` is zero.
    pub fn start_with_telemetry(
        config: ServiceConfig,
        telemetry: Telemetry,
    ) -> std::io::Result<PlacementService> {
        assert!(config.workers >= 1, "service needs at least one worker");
        assert!(config.queue_capacity >= 1, "service needs a queue depth of at least 1");
        let mut config = config;
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let local_addr = listener.local_addr()?;
        // Bind the observability sidecar before spawning anything so a bad
        // --metrics-addr fails the whole start instead of leaking threads.
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr.as_str())?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(listener) => Some(listener.local_addr()?),
            None => None,
        };

        // The always-on flight recorder: a bounded ring of service/reactor
        // events teed under whatever collector the caller installed, plus an
        // optional crash-survivable disk spill.
        let recorder = if config.flight_recorder > 0 {
            let mut recorder = FlightRecorder::new(config.flight_recorder)
                .with_categories(&["service", "reactor"]);
            if let Some(path) = &config.flight_recorder_path {
                recorder = recorder.with_spill(path)?;
            }
            Some(Arc::new(recorder))
        } else {
            None
        };
        let telemetry = match &recorder {
            Some(recorder) => {
                telemetry.tee(Arc::clone(recorder) as Arc<dyn apls_telemetry::Collector>)
            }
            None => telemetry,
        };

        // Readiness infrastructure: poller + self-pipe. Event-loop mode needs
        // both; legacy mode uses them (when available) only to replace the
        // acceptor's sleep tick with a blocking readiness wait. A platform
        // where either fails degrades to legacy threads transparently.
        #[cfg(unix)]
        let event_infra: Option<(Box<dyn Poller>, WakePipe)> = match (new_poller(), WakePipe::new())
        {
            (Ok(poller), Ok(pipe)) => Some((poller, pipe)),
            _ => None,
        };
        #[cfg(unix)]
        if event_infra.is_none() {
            config.mode = ServeMode::LegacyThreads;
        }
        #[cfg(not(unix))]
        {
            config.mode = ServeMode::LegacyThreads;
        }
        #[cfg(unix)]
        let wake = event_infra.as_ref().map(|(_, pipe)| pipe.sender());
        #[cfg(unix)]
        let completions = match (config.mode, &wake) {
            (ServeMode::EventLoop, Some(wake)) => {
                Some(Arc::new(CompletionQueue::new(wake.clone())))
            }
            _ => None,
        };

        let fault = config.fault_plan.clone().filter(|p| !p.is_empty()).map(Arc::new);
        let (journal, recovered) = match &config.journal {
            Some(journal_config) => {
                let (journal, recovery) = Journal::open(journal_config, fault.clone())?;
                (Some(journal), Some(recovery))
            }
            None => (None, None),
        };

        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity);
        let recovery_tx = tx.clone();
        let next_index = recovered.as_ref().map_or(0, |r| r.next_index);
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(Shared {
            seeds: SeedStream::new(config.seed),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            jobs_completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            enqueue: Mutex::new(Some(EnqueueSlot { next_index, tx })),
            journal,
            fault,
            telemetry,
            metrics: ServiceMetrics::new(),
            recorder,
            recovery_pending: AtomicBool::new(false),
            #[cfg(unix)]
            wake,
            #[cfg(unix)]
            completions,
            config,
        });
        #[cfg(unix)]
        let poller_backend = event_infra.as_ref().map_or("none", |(poller, _)| poller.name());
        #[cfg(not(unix))]
        let poller_backend = "none";
        shared.metrics.registry.set_info(
            "build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("git", env!("APLS_GIT_HASH")),
                ("poller", poller_backend),
            ],
        );

        let workers = (0..shared.config.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    // In-place respawn supervisor: per-job panics are caught
                    // inside worker_loop; if one nonetheless escapes (a bug
                    // in the loop itself), the worker re-enters the loop
                    // instead of dying and silently shrinking the pool.
                    loop {
                        match catch_unwind(AssertUnwindSafe(|| worker_loop(&rx, &shared))) {
                            Ok(()) => break, // queue closed and drained: shutdown
                            Err(_) => {
                                shared.metrics.worker_respawns_total.inc();
                                if shared.shutdown.load(Ordering::SeqCst) {
                                    break;
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let recovery =
            recovered.and_then(|recovery| replay_recovered_jobs(recovery, &shared, recovery_tx));
        let acceptor = {
            let shared = Arc::clone(&shared);
            #[cfg(unix)]
            {
                let infra = event_infra;
                Some(std::thread::spawn(move || match (shared.config.mode, infra) {
                    (ServeMode::EventLoop, Some((poller, pipe))) => {
                        crate::reactor::run(&listener, &shared, poller, pipe);
                    }
                    (_, infra) => accept_loop(&listener, &shared, infra),
                }))
            }
            #[cfg(not(unix))]
            {
                Some(std::thread::spawn(move || accept_loop(&listener, &shared, None)))
            }
        };
        let metrics_server =
            metrics_listener.map(|listener| crate::http::spawn(listener, Arc::clone(&shared)));
        Ok(PlacementService {
            local_addr,
            metrics_addr,
            shared,
            acceptor,
            recovery,
            metrics_server,
            workers,
        })
    }

    /// The bound address (with the actual port when an ephemeral one was
    /// requested).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound HTTP observability address, when
    /// [`ServiceConfig::metrics_addr`] was set.
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Initiates a graceful shutdown: stop accepting, drain the queue, let
    /// in-flight responses go out. Idempotent; [`PlacementService::join`]
    /// waits for completion.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared, self.local_addr);
    }

    /// Blocks until the service has shut down (via
    /// [`PlacementService::shutdown`] or a client `shutdown` request) and
    /// every thread has exited.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(recovery) = self.recovery.take() {
            let _ = recovery.join();
        }
        if let Some(metrics_server) = self.metrics_server.take() {
            let _ = metrics_server.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(journal) = &self.shared.journal {
            journal.sync();
        }
    }
}

impl Drop for PlacementService {
    fn drop(&mut self) {
        self.shutdown();
        self.join_threads();
    }
}

/// Restores completed journaled jobs into the cache and re-enqueues
/// incomplete ones (in index order, with their recorded seeds) on a
/// background thread, so startup does not block behind a queue-capacity's
/// worth of replayed solves.
fn replay_recovered_jobs(
    recovery: Recovery,
    shared: &Arc<Shared>,
    tx: SyncSender<Job>,
) -> Option<JoinHandle<()>> {
    if recovery.torn_lines > 0 {
        // a torn tail is expected after a mid-write crash; the partial
        // record's job simply counts as incomplete and is replayed
        apls_telemetry::event!(
            shared.telemetry,
            "service",
            "journal_torn_tail",
            lines = recovery.torn_lines as u64
        );
    }
    let mut pending: Vec<Job> = Vec::new();
    for job in recovery.jobs {
        let Ok(circuit) = resolve_circuit(&job.spec.circuit) else {
            apls_telemetry::event!(shared.telemetry, "service", "recovery_skip", id = job.index);
            continue;
        };
        let circuit_canonical = serialize_circuit(&circuit);
        // Integrity gate: a record whose fingerprints no longer match its
        // spec (bit rot, foreign journal) must not poison the cache.
        if canonical_hash(&circuit_canonical) != job.circuit_hash
            || job.spec.config_fingerprint() != job.config_fp
        {
            apls_telemetry::event!(shared.telemetry, "service", "recovery_skip", id = job.index);
            continue;
        }
        let cache_key = CacheKey {
            circuit: circuit_canonical,
            config: job.spec.config_canonical(),
            seed: job.seed,
        };
        match job.report {
            Some(report) => {
                lock_or_recover(&shared.cache).insert(cache_key, report);
                shared.metrics.jobs_recovered_total.inc();
            }
            None => {
                // The receiving half is dropped immediately: nobody waits
                // for a replayed job's response, its purpose is the journal
                // completion record and the cache entry it leaves behind.
                let (done_tx, _) = mpsc::channel();
                pending.push(Job {
                    index: job.index,
                    config: job.spec.resolved_config(job.seed),
                    circuit,
                    cache_key,
                    deadline: None,
                    enqueued: Instant::now(),
                    respond: Responder::Sync(done_tx),
                    streaming: false,
                });
                shared.metrics.jobs_replayed_total.inc();
            }
        }
    }
    if pending.is_empty() {
        return None;
    }
    // `/readyz` answers 503 until the replay has re-enqueued everything.
    shared.recovery_pending.store(true, Ordering::SeqCst);
    let shared = Arc::clone(shared);
    Some(std::thread::spawn(move || {
        for job in pending {
            shared.metrics.queue_depth.add(1);
            if tx.send(job).is_err() {
                // shutdown before the replay drained; the journal still
                // holds the enqueue records, the next start finishes the job
                shared.metrics.queue_depth.sub(1);
                break;
            }
        }
        shared.recovery_pending.store(false, Ordering::SeqCst);
    }))
}

pub(crate) fn initiate_shutdown(shared: &Shared, local_addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Dropping the only SyncSender lets the workers drain the queue and exit.
    lock_or_recover(&shared.enqueue).take();
    // The self-pipe pops the reactor (or the poller-backed acceptor) out of
    // its readiness wait immediately — no loopback round trip needed.
    #[cfg(unix)]
    if let Some(wake) = &shared.wake {
        wake.wake();
        return;
    }
    // Best-effort accelerator: a throwaway connection makes a (blocking)
    // acceptor observe the flag immediately. The nonblocking acceptor's poll
    // tick bounds shutdown latency even when this connect cannot succeed.
    let mut wake = local_addr;
    if wake.ip().is_unspecified() {
        wake.set_ip(match wake.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect(wake);
}

/// The legacy acceptor's optional readiness infrastructure: a poller watching
/// the listener plus the self-pipe that replaces the sleep tick.
#[cfg(unix)]
type AcceptInfra = Option<(Box<dyn Poller>, WakePipe)>;
#[cfg(not(unix))]
type AcceptInfra = Option<()>;

/// The refusal line written when [`ServiceConfig::max_connections`] live
/// connections already exist.
pub(crate) const OVERLOADED_LINE: &[u8] =
    b"{\"status\":\"error\",\"kind\":\"overloaded\",\"error\":\"connection limit reached, retry later\"}\n";

/// The reactor's escape hatch when its own setup fails after spawn: serve
/// with blocking handler threads (and the sleep-tick acceptor) instead of
/// not serving at all.
#[cfg(unix)]
pub(crate) fn accept_loop_fallback(listener: &TcpListener, shared: &Arc<Shared>) {
    accept_loop(listener, shared, None);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, infra: AcceptInfra) {
    // Nonblocking accept so observing the shutdown flag never depends on the
    // wake-up self-connect reaching the listener (it may not, e.g. for
    // 0.0.0.0 binds on platforms that don't route them to loopback). With a
    // poller + self-pipe we block on readiness between bursts; without, we
    // fall back to the ACCEPT_TICK sleep poll.
    let nonblocking = listener.set_nonblocking(true).is_ok();
    #[cfg(unix)]
    let mut infra = infra.and_then(|(mut poller, pipe)| {
        use std::os::unix::io::AsRawFd;
        let listener_ok = nonblocking
            && poller.register(listener.as_raw_fd(), 0, Interest::READ).is_ok()
            && poller.register(pipe.fd(), 1, Interest::READ).is_ok();
        if listener_ok {
            shared.metrics.poller_registered_fds.set(2);
            Some((poller, pipe, Vec::<PollEvent>::new()))
        } else {
            None
        }
    });
    #[cfg(not(unix))]
    let _ = infra;
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut accepted: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                accept_one(stream, shared, &mut accepted, &mut handlers);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                #[cfg(unix)]
                if let Some((poller, pipe, events)) = infra.as_mut() {
                    match poller.poll(events, None) {
                        Ok(n) => {
                            if n > 0 {
                                shared.metrics.readiness_wakeups_total.inc();
                            }
                            pipe.drain();
                            continue;
                        }
                        Err(_) => {
                            // poller went bad mid-run: degrade to sleep ticks
                            shared.metrics.poller_registered_fds.set(0);
                            infra = None;
                        }
                    }
                }
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(_) => {
                if !nonblocking {
                    // a blocking accept that errors repeatedly must not spin
                    std::thread::sleep(ACCEPT_TICK);
                }
            }
        }
    }
    shared.metrics.poller_registered_fds.set(0);
    for handler in handlers {
        let _ = handler.join();
    }
    shared.metrics.handler_threads.set(0);
}

/// Admits (or refuses) one accepted connection in legacy-threads mode.
fn accept_one(
    stream: TcpStream,
    shared: &Arc<Shared>,
    accepted: &mut u64,
    handlers: &mut Vec<JoinHandle<()>>,
) {
    let connection = *accepted;
    *accepted += 1;
    if shared.fault.as_ref().is_some_and(|plan| plan.drop_connection(connection)) {
        shared.metrics.connections_dropped_total.inc();
        return; // dropping the stream closes it mid-handshake
    }
    // reap finished handlers so a long-running daemon holds handles (and
    // memory) only for *live* connections, not every connection ever seen
    handlers.retain(|h| !h.is_finished());
    if handlers.len() >= shared.config.max_connections {
        let mut stream = stream;
        let _ = stream.set_nonblocking(false);
        let _ = stream.write_all(OVERLOADED_LINE);
        shared.metrics.handler_threads.set(handlers.len() as i64);
        return; // dropping the stream closes it
    }
    let handler_shared = Arc::clone(shared);
    handlers.push(std::thread::spawn(move || handle_connection(stream, &handler_shared)));
    shared.metrics.handler_threads.set(handlers.len() as i64);
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // Holding the lock while waiting is fine: the holder takes the next
        // job and releases before solving, so dequeueing is serialised but
        // solving is parallel.
        let job = match lock_or_recover(rx).recv() {
            Ok(job) => job,
            Err(_) => break, // queue closed and drained: shutdown
        };
        shared.metrics.queue_depth.sub(1);
        shared.metrics.in_flight.add(1);
        let queue_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
        shared.metrics.queue_ms.observe(queue_ms);
        let solve_start = Instant::now();

        let outcome = execute_job(&job, shared, queue_ms);
        match &outcome {
            Ok((report, _)) => {
                shared.journal_append(&JournalRecord::Complete {
                    index: job.index,
                    report_fp: canonical_hash(report),
                    report,
                });
                shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(JobFailure::Timeout) => shared.metrics.timeouts_total.inc(),
            Err(JobFailure::Panic) => {
                shared.metrics.worker_panics_total.inc();
                // Postmortem capture: persist the events leading up to the
                // panic before the error envelope goes out.
                shared.dump_flight("worker_panic");
            }
        }
        shared.metrics.in_flight.sub(1);
        let solve_ms = solve_start.elapsed().as_secs_f64() * 1e3;
        shared.metrics.solve_ms.observe(solve_ms);
        let done = JobDone { outcome, queue_ms, solve_ms };
        // The handler may have hung up (client gone); nothing to do then.
        job.respond.send(job.index, JobMsg::Done(done));
    }
}

/// Relays per-restart progress of a streamed job to its responder while the
/// solve runs. Observe-only: the report body stays byte-identical.
struct ProgressRelay<'a> {
    respond: &'a Responder,
    index: u64,
}

impl RestartObserver for ProgressRelay<'_> {
    fn restart_complete(&self, record: &RestartRecord, completed: usize, total: usize) {
        self.respond.send(
            self.index,
            JobMsg::Progress {
                engine: record.engine.name(),
                restart: record.restart,
                completed,
                total,
                cost: record.cost,
            },
        );
    }
}

/// Runs one dequeued job to a report, a cache hit, or a failure — never a
/// panic: the solve is wrapped in `catch_unwind` so an engine crash (or an
/// injected one) is confined to this job.
fn execute_job(job: &Job, shared: &Shared, queue_ms: f64) -> Result<(String, bool), JobFailure> {
    // Re-check the cache after dequeue: back-to-back identical misses dedupe.
    let cached = lock_or_recover(&shared.cache).get(&job.cache_key).cloned();
    if let Some(report) = cached {
        shared.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok((report, true));
    }
    // A job that expired while queued is not worth starting.
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(JobFailure::Timeout);
    }
    if let Some(ms) = shared.fault.as_ref().and_then(|plan| plan.slow_solve_ms(job.index)) {
        std::thread::sleep(Duration::from_millis(ms));
    }
    if let Some(delay) = shared.config.job_delay {
        std::thread::sleep(delay);
    }
    let solved = catch_unwind(AssertUnwindSafe(|| {
        if shared.fault.as_ref().is_some_and(|plan| plan.panic_on_job(job.index)) {
            panic!("fault injection: worker panic on job {}", job.index);
        }
        let mut span = apls_telemetry::span!(
            shared.telemetry,
            "service",
            "solve",
            circuit = job.circuit.name.as_str(),
            seed = job.config.root_seed
        );
        let cancel = job.deadline.map_or_else(CancelToken::none, CancelToken::with_deadline);
        let relay = ProgressRelay { respond: &job.respond, index: job.index };
        let observer = job.streaming.then_some(&relay as &dyn RestartObserver);
        let result =
            run_portfolio_observed(&job.circuit, &job.config, &shared.telemetry, &cancel, observer);
        if span.is_recording() {
            span.arg("queue_ms", queue_ms);
            span.arg("timed_out", result.is_err());
        }
        result
    }));
    match solved {
        Err(_) => Err(JobFailure::Panic),
        Ok(Err(_cancelled)) => Err(JobFailure::Timeout),
        Ok(Ok(report)) => {
            let report = report.to_json_deterministic();
            lock_or_recover(&shared.cache).insert(job.cache_key.clone(), report.clone());
            Ok((report, false))
        }
    }
}

/// Whether the handler keeps serving this connection after a request.
enum Flow {
    Continue,
    Close,
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    shared.metrics.connections_active.add(1);
    apls_telemetry::event!(shared.telemetry, "service", "accept");
    // A handler panic must not leak the active-connections slot.
    let _ = catch_unwind(AssertUnwindSafe(|| handle_connection_inner(stream, shared)));
    shared.metrics.connections_active.sub(1);
}

fn handle_connection_inner(stream: TcpStream, shared: &Arc<Shared>) {
    // accepted sockets can inherit the listener's nonblocking flag on some
    // platforms; the handler wants blocking reads with a timeout
    let _ = stream.set_nonblocking(false);
    // One-line request/response traffic is latency-bound: without NODELAY,
    // Nagle holds the reply until the peer's delayed ACK (~40 ms per turn).
    let _ = stream.set_nodelay(true);
    let Ok(()) = stream.set_read_timeout(Some(READ_TICK)) else { return };
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    let max_request = shared.config.max_request_bytes;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // The `Take` adapter enforces the request cap *during* the read, so a
        // peer streaming bytes without newlines can never make the daemon
        // buffer more than max_request_bytes + 1 bytes. Partial data stays in
        // `buf` across read-timeout ticks.
        let limit = (max_request + 1 - buf.len()) as u64;
        match reader.by_ref().take(limit).read_until(b'\n', &mut buf) {
            Ok(0) => break, // EOF
            Ok(_) => {
                if buf.len() > max_request {
                    let _ = writer
                        .write_all(format!("{}\n", oversized_response(max_request)).as_bytes());
                    break;
                }
                // under the cap and no newline means EOF arrived mid-line:
                // process what we have, the next read reports the EOF
                let Ok(text) = std::str::from_utf8(&buf) else {
                    let _ = writer.write_all(
                        format!(
                            "{}\n",
                            error_response("bad_request", "request is not valid UTF-8")
                        )
                        .as_bytes(),
                    );
                    break;
                };
                let request = text.trim();
                let flow = if request.is_empty() {
                    Flow::Continue
                } else {
                    let (mut response, flow) = process_request(request, shared, &writer);
                    response.push('\n');
                    let flush_start = Instant::now();
                    if writer.write_all(response.as_bytes()).and_then(|()| writer.flush()).is_err()
                    {
                        break;
                    }
                    // Legacy mode writes synchronously, so queued→flushed
                    // collapses to the write itself.
                    shared.metrics.flush_ms.observe(flush_start.elapsed().as_secs_f64() * 1e3);
                    flow
                };
                buf.clear();
                if matches!(flow, Flow::Close) {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                continue; // idle tick: re-check the shutdown flag
            }
            Err(_) => break,
        }
    }
}

pub(crate) fn oversized_response(max_request: usize) -> String {
    format!(
        "{{\"status\":\"error\",\"kind\":\"request_too_large\",\"error\":\"request exceeds {max_request} bytes, closing connection\"}}"
    )
}

pub(crate) fn error_response(kind: &str, message: &str) -> String {
    format!("{{\"status\":\"error\",\"kind\":{},\"error\":{}}}", quote(kind), quote(message))
}

pub(crate) fn timeout_response(id: u64, circuit: &str, seed: u64, deadline_ms: u64) -> String {
    format!(
        "{{\"status\":\"timeout\",\"kind\":\"deadline\",\"id\":{id},\"circuit\":{},\"seed\":{seed},\"error\":\"deadline of {deadline_ms} ms exceeded\"}}",
        quote(circuit),
    )
}

pub(crate) fn ping_response() -> String {
    format!("{{\"status\":\"ok\",\"service\":\"apls\",\"protocol\":{PROTOCOL_VERSION}}}")
}

// --- streaming frame builders -------------------------------------------
//
// Every frame is one JSON line tagged `"frame"` plus the client-chosen
// correlation `"id"`; the server job index travels as `"job"` (plain
// envelopes call it `"id"`). Report-frame field order past the tags matches
// the plain envelope exactly, so the report body (and its quoting) is
// byte-identical between the two paths.

pub(crate) fn accepted_frame(cid: u64, job: u64, circuit: &str, seed: u64) -> String {
    format!(
        "{{\"frame\":\"accepted\",\"id\":{cid},\"job\":{job},\"circuit\":{},\"seed\":{seed}}}",
        quote(circuit),
    )
}

pub(crate) fn queued_frame(cid: u64, depth: u64) -> String {
    format!("{{\"frame\":\"queued\",\"id\":{cid},\"depth\":{depth}}}")
}

pub(crate) fn progress_frame(
    cid: u64,
    engine: &str,
    restart: usize,
    completed: usize,
    total: usize,
    cost: f64,
) -> String {
    format!(
        "{{\"frame\":\"progress\",\"id\":{cid},\"engine\":{},\"restart\":{restart},\"completed\":{completed},\"total\":{total},\"cost\":{cost}}}",
        quote(engine),
    )
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn report_frame_ok(
    cid: u64,
    job: u64,
    circuit: &str,
    seed: u64,
    cache_hit: bool,
    queue_ms: f64,
    solve_ms: f64,
    total_ms: f64,
    report: &str,
) -> String {
    format!(
        "{{\"frame\":\"report\",\"id\":{cid},\"job\":{job},{}}}",
        ok_fields(circuit, seed, cache_hit, queue_ms, solve_ms, total_ms, report),
    )
}

pub(crate) fn report_frame_timeout(
    cid: u64,
    job: u64,
    circuit: &str,
    seed: u64,
    deadline_ms: u64,
) -> String {
    format!(
        "{{\"frame\":\"report\",\"id\":{cid},\"job\":{job},\"status\":\"timeout\",\"kind\":\"deadline\",\"circuit\":{},\"seed\":{seed},\"error\":\"deadline of {deadline_ms} ms exceeded\"}}",
        quote(circuit),
    )
}

pub(crate) fn report_frame_error(cid: u64, kind: &str, message: &str) -> String {
    format!(
        "{{\"frame\":\"report\",\"id\":{cid},\"status\":\"error\",\"kind\":{},\"error\":{}}}",
        quote(kind),
        quote(message),
    )
}

pub(crate) fn report_frame_retry(cid: u64) -> String {
    format!(
        "{{\"frame\":\"report\",\"id\":{cid},\"status\":\"retry\",\"error\":\"job queue full, retry later\"}}"
    )
}

/// Counts an error/retry outcome off the response line itself, so the
/// counters cannot drift from the protocol. Handles both plain envelopes and
/// report frames (whose status sits behind the frame tags). Timeouts are
/// counted at the worker, where expiry is detected.
pub(crate) fn count_response_outcome(shared: &Shared, response: &str) {
    let status_at = if response.starts_with("{\"status\":") {
        Some(1)
    } else if response.starts_with("{\"frame\":\"report\",") {
        // the status tags precede the report body, and inside the quoted
        // report every `"` is escaped, so the first match is the frame's own
        response.find("\"status\":")
    } else {
        None
    };
    let Some(at) = status_at else { return };
    let status = &response[at..];
    if status.starts_with("\"status\":\"error\"") {
        shared.metrics.errors_total.inc();
    } else if status.starts_with("\"status\":\"retry\"") {
        shared.metrics.retries_total.inc();
    }
}

fn process_request(line: &str, shared: &Arc<Shared>, writer: &TcpStream) -> (String, Flow) {
    shared.metrics.requests_total.inc();
    let (response, flow) = dispatch_request(line, shared, writer);
    // Centralised outcome accounting: every error/retry path funnels through
    // the envelope status, so the counters cannot drift from the protocol.
    count_response_outcome(shared, &response);
    (response, flow)
}

fn dispatch_request(line: &str, shared: &Arc<Shared>, writer: &TcpStream) -> (String, Flow) {
    let json = match Json::parse(line) {
        Ok(json) => json,
        Err(e) => {
            return (error_response("bad_request", &format!("invalid JSON: {e}")), Flow::Continue)
        }
    };
    let op = json.get("op").and_then(Json::as_str);
    apls_telemetry::event!(
        shared.telemetry,
        "service",
        "request",
        op = op.unwrap_or("(missing)").to_string()
    );
    match op {
        Some("ping") => (ping_response(), Flow::Continue),
        Some("stats") => (stats_response(shared), Flow::Continue),
        Some("dump") => (dump_response(shared), Flow::Continue),
        Some("shutdown") => {
            if let Ok(addr) = writer.local_addr() {
                initiate_shutdown(shared, addr);
            }
            ("{\"status\":\"shutting_down\"}".to_string(), Flow::Close)
        }
        Some("place") => (place(&json, shared, writer), Flow::Continue),
        Some(other) => (
            error_response(
                "bad_request",
                &format!("unknown op '{other}' (place, ping, stats, dump, shutdown)"),
            ),
            Flow::Continue,
        ),
        None => (error_response("bad_request", "request needs an 'op' field"), Flow::Continue),
    }
}

/// Handles the `dump` op: writes the flight-recorder ring to disk and
/// answers with where it landed and how much it held.
pub(crate) fn dump_response(shared: &Shared) -> String {
    let Some(recorder) = &shared.recorder else {
        return error_response("unavailable", "flight recorder is disabled (capacity 0)");
    };
    let path = shared.flight_dump_path();
    match recorder.dump_to(&path) {
        Ok(events) => {
            shared.metrics.flight_dumps_total.inc();
            apls_telemetry::event!(
                shared.telemetry,
                "service",
                "flight_dump",
                reason = "dump_op".to_string(),
                events = events as u64
            );
            format!(
                "{{\"status\":\"ok\",\"events\":{events},\"overwritten\":{},\"capacity\":{},\"path\":{}}}",
                recorder.overwritten(),
                recorder.capacity(),
                quote(&path.display().to_string()),
            )
        }
        Err(e) => error_response("internal", &format!("flight recorder dump failed: {e}")),
    }
}

pub(crate) fn stats_response(shared: &Shared) -> String {
    let (cache_stats, cache_entries) = {
        let cache = lock_or_recover(&shared.cache);
        (cache.stats(), cache.len())
    };
    let uptime_seconds = shared.refresh_uptime();
    let (ready, _) = shared.is_ready();
    format!(
        "{{\"status\":\"ok\",\"mode\":{},\"workers\":{},\"queue_capacity\":{},\"cache_capacity\":{},\"jobs_completed\":{},\"cache_hits\":{},\"cache_entries\":{},\"uptime_ms\":{:.0},\"uptime_seconds\":{},\"ready\":{},\"queue_depth\":{},\"in_flight\":{},\"connections\":{},\"telemetry_enabled\":{},\"journal_enabled\":{},\"poison_recoveries\":{},\"cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\"entries\":{},\"capacity\":{}}},\"metrics\":{}}}",
        quote(shared.config.mode.as_str()),
        shared.config.workers,
        shared.config.queue_capacity,
        shared.config.cache_capacity,
        shared.jobs_completed.load(Ordering::Relaxed),
        shared.cache_hits.load(Ordering::Relaxed),
        cache_entries,
        shared.started.elapsed().as_secs_f64() * 1e3,
        uptime_seconds,
        ready,
        shared.metrics.queue_depth.get(),
        shared.metrics.in_flight.get(),
        shared.metrics.connections_active.get(),
        shared.telemetry.is_enabled(),
        shared.journal.is_some(),
        poison_recoveries(),
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.insertions,
        cache_stats.evictions,
        cache_entries,
        shared.config.cache_capacity,
        shared.metrics.registry.snapshot_json(),
    )
}

/// The outcome of admitting a `place` request under the enqueue lock.
pub(crate) enum Admission {
    /// The service is shutting down; nothing was admitted.
    ShuttingDown,
    /// The bounded queue is full; nothing was admitted (no index consumed).
    QueueFull,
    /// A cache hit: the job consumed an index and is already complete
    /// (journaled Enqueue+Complete, counters bumped); no worker involved.
    Cached {
        /// The job's arrival-order index.
        index: u64,
        /// The resolved root seed.
        seed: u64,
        /// The cached deterministic report body.
        report: String,
    },
    /// The job was enqueued; its messages arrive via the responder.
    Enqueued {
        /// The job's arrival-order index.
        index: u64,
        /// The resolved root seed.
        seed: u64,
    },
}

/// Admits one `place` job: assigns the arrival-order index, resolves the
/// seed, probes the cache and journals — all atomically under the enqueue
/// lock, so derived seeds stay replay-stable whatever the outcome. Shared by
/// the legacy blocking handlers and the reactor; timing spans and `total_ms`
/// accounting stay with the caller.
pub(crate) fn admit_place(
    spec: &JobSpec,
    circuit: BenchmarkCircuit,
    shared: &Arc<Shared>,
    respond: Responder,
    streaming: bool,
    accepted: Instant,
) -> Admission {
    let circuit_canonical = serialize_circuit(&circuit);
    let circuit_hash = canonical_hash(&circuit_canonical);
    let config_canonical = spec.config_canonical();
    let deadline_ms = spec.deadline_ms;

    let mut guard = lock_or_recover(&shared.enqueue);
    let Some(slot) = guard.as_mut() else {
        return Admission::ShuttingDown;
    };
    let index = slot.next_index;
    let seed = spec.seed.unwrap_or_else(|| shared.seeds.seed_for(JOB_SEED_LANE, index));
    let config = spec.resolved_config(seed);
    let cache_key = CacheKey { circuit: circuit_canonical, config: config_canonical, seed };
    // The journaled spec is self-contained for replay: seed pinned to the
    // resolved value, deadline stripped (a replayed job deserves its full
    // time budget — the deadline bounded the original request's latency, not
    // the result), stream tags stripped (transport concerns, like the
    // deadline, are not part of what the job computes).
    let journal_spec = shared.journal.as_ref().map(|_| {
        let mut journal_spec = spec.clone();
        journal_spec.seed = Some(seed);
        journal_spec.deadline_ms = None;
        journal_spec.stream = None;
        journal_spec.stream_id = None;
        journal_spec.to_json_line()
    });
    let config_fp = spec.config_fingerprint();
    // Probe the cache here, before spending a queue slot: a hit is answered
    // even when the queue is full of multi-second solves. Hits still consume
    // a job index, exactly as enqueued jobs do, so derived seeds stay
    // replay-stable either way.
    let cached = lock_or_recover(&shared.cache).get(&cache_key).cloned();
    if let Some(report) = cached {
        slot.next_index += 1;
        if let Some(spec_line) = &journal_spec {
            shared.journal_append(&JournalRecord::Enqueue {
                index,
                seed,
                circuit_hash,
                config_fp,
                spec: spec_line,
            });
            shared.journal_append(&JournalRecord::Complete {
                index,
                report_fp: canonical_hash(&report),
                report: &report,
            });
        }
        drop(guard);
        shared.metrics.admit_ms.observe(accepted.elapsed().as_secs_f64() * 1e3);
        shared.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
        return Admission::Cached { index, seed, report };
    }
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let job = Job {
        index,
        circuit,
        config,
        cache_key,
        deadline,
        enqueued: Instant::now(),
        respond,
        streaming,
    };
    match slot.tx.try_send(job) {
        Ok(()) => {
            slot.next_index += 1;
            if let Some(spec_line) = &journal_spec {
                shared.journal_append(&JournalRecord::Enqueue {
                    index,
                    seed,
                    circuit_hash,
                    config_fp,
                    spec: spec_line,
                });
            }
            shared.metrics.queue_depth.add(1);
            shared.metrics.admit_ms.observe(accepted.elapsed().as_secs_f64() * 1e3);
            apls_telemetry::event!(shared.telemetry, "service", "enqueue", id = index, seed = seed);
            Admission::Enqueued { index, seed }
        }
        Err(TrySendError::Full(_)) => Admission::QueueFull,
        Err(TrySendError::Disconnected(_)) => Admission::ShuttingDown,
    }
}

pub(crate) const RETRY_LINE: &str =
    "{\"status\":\"retry\",\"error\":\"job queue full, retry later\"}";
pub(crate) const PANIC_ERROR: &str =
    "placement worker panicked while solving this job; the service is still up";
pub(crate) const WORKER_GONE_ERROR: &str = "worker terminated before completing the job";

/// Writes one intermediate stream frame (plus newline) to the peer.
/// Best-effort: a dead peer surfaces on the final write, not here.
fn write_frame(shared: &Shared, mut writer: &TcpStream, line: &str) {
    if writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_ok()
    {
        shared.metrics.frames_sent_total.inc();
        apls_telemetry::event!(shared.telemetry, "service", "frame");
    }
}

fn place(json: &Json, shared: &Arc<Shared>, writer: &TcpStream) -> String {
    let spec = match JobSpec::from_json(json) {
        Ok(spec) => spec,
        Err(e) => return error_response("bad_request", &e),
    };
    // A streamed job answers with tagged frames even on failure, so a client
    // multiplexing several jobs can attribute the failure to its id.
    let stream_id = if spec.stream == Some(true) { spec.stream_id } else { None };
    let fail = |kind: &str, message: &str| match stream_id {
        Some(cid) => count_and_frame(shared, report_frame_error(cid, kind, message)),
        None => error_response(kind, message),
    };
    let circuit = match resolve_circuit(&spec.circuit) {
        Ok(circuit) => circuit,
        Err(e) => return fail("bad_request", &e),
    };
    let circuit_name = circuit.name.clone();
    let deadline_ms = spec.deadline_ms;

    let total_start = Instant::now();
    let mut request_span = apls_telemetry::span!(
        shared.telemetry,
        "service",
        "place",
        circuit = circuit_name.as_str()
    );
    let (done_tx, done_rx) = mpsc::channel();
    let admission = admit_place(
        &spec,
        circuit,
        shared,
        Responder::Sync(done_tx),
        stream_id.is_some(),
        total_start,
    );
    let (id, seed) = match admission {
        Admission::ShuttingDown => return fail("unavailable", "service is shutting down"),
        Admission::QueueFull => {
            return match stream_id {
                Some(cid) => count_and_frame(shared, report_frame_retry(cid)),
                None => RETRY_LINE.to_string(),
            }
        }
        Admission::Cached { index, seed, report } => {
            let elapsed_ms = total_start.elapsed().as_secs_f64() * 1e3;
            shared.metrics.total_ms.observe(elapsed_ms);
            if request_span.is_recording() {
                request_span.arg("id", index);
                request_span.arg("seed", seed);
                request_span.arg("cache_hit", true);
            }
            return match stream_id {
                Some(cid) => {
                    write_frame(shared, writer, &accepted_frame(cid, index, &circuit_name, seed));
                    // a hit never consumed a queue slot: depth 0
                    write_frame(shared, writer, &queued_frame(cid, 0));
                    shared.metrics.frames_sent_total.inc();
                    report_frame_ok(
                        cid,
                        index,
                        &circuit_name,
                        seed,
                        true,
                        0.0,
                        elapsed_ms,
                        elapsed_ms,
                        &report,
                    )
                }
                None => ok_envelope(
                    index,
                    &circuit_name,
                    seed,
                    true,
                    0.0,
                    elapsed_ms,
                    elapsed_ms,
                    &report,
                ),
            };
        }
        Admission::Enqueued { index, seed } => (index, seed),
    };
    if let Some(cid) = stream_id {
        write_frame(shared, writer, &accepted_frame(cid, id, &circuit_name, seed));
        let depth = shared.metrics.queue_depth.get().max(0) as u64;
        write_frame(shared, writer, &queued_frame(cid, depth));
    }

    loop {
        let msg = match done_rx.recv() {
            Ok(msg) => msg,
            Err(_) => return fail("internal", WORKER_GONE_ERROR),
        };
        match msg {
            JobMsg::Progress { engine, restart, completed, total, cost } => {
                if let Some(cid) = stream_id {
                    write_frame(
                        shared,
                        writer,
                        &progress_frame(cid, engine, restart, completed, total, cost),
                    );
                }
            }
            JobMsg::Done(done) => {
                let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
                shared.metrics.total_ms.observe(total_ms);
                return match done.outcome {
                    Ok((report, cache_hit)) => {
                        if request_span.is_recording() {
                            request_span.arg("id", id);
                            request_span.arg("seed", seed);
                            request_span.arg("cache_hit", cache_hit);
                        }
                        match stream_id {
                            Some(cid) => {
                                shared.metrics.frames_sent_total.inc();
                                report_frame_ok(
                                    cid,
                                    id,
                                    &circuit_name,
                                    seed,
                                    cache_hit,
                                    done.queue_ms,
                                    done.solve_ms,
                                    total_ms,
                                    &report,
                                )
                            }
                            None => ok_envelope(
                                id,
                                &circuit_name,
                                seed,
                                cache_hit,
                                done.queue_ms,
                                done.solve_ms,
                                total_ms,
                                &report,
                            ),
                        }
                    }
                    Err(JobFailure::Timeout) => {
                        if request_span.is_recording() {
                            request_span.arg("id", id);
                            request_span.arg("timed_out", true);
                        }
                        match stream_id {
                            Some(cid) => {
                                shared.metrics.frames_sent_total.inc();
                                report_frame_timeout(
                                    cid,
                                    id,
                                    &circuit_name,
                                    seed,
                                    deadline_ms.unwrap_or(0),
                                )
                            }
                            None => {
                                timeout_response(id, &circuit_name, seed, deadline_ms.unwrap_or(0))
                            }
                        }
                    }
                    Err(JobFailure::Panic) => fail("internal", PANIC_ERROR),
                };
            }
        }
    }
}

/// Counts a final report frame in the frame metric and returns the line;
/// its error/retry outcome is counted by [`count_response_outcome`] at the
/// response sink, exactly like plain envelopes.
fn count_and_frame(shared: &Shared, frame: String) -> String {
    shared.metrics.frames_sent_total.inc();
    frame
}

fn ok_fields(
    circuit: &str,
    seed: u64,
    cache_hit: bool,
    queue_ms: f64,
    solve_ms: f64,
    total_ms: f64,
    report: &str,
) -> String {
    format!(
        "\"status\":\"ok\",\"circuit\":{},\"seed\":{seed},\"cache_hit\":{cache_hit},\"queue_ms\":{queue_ms:.3},\"solve_ms\":{solve_ms:.3},\"total_ms\":{total_ms:.3},\"report\":{}",
        quote(circuit),
        quote(report),
    )
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn ok_envelope(
    id: u64,
    circuit: &str,
    seed: u64,
    cache_hit: bool,
    queue_ms: f64,
    solve_ms: f64,
    total_ms: f64,
    report: &str,
) -> String {
    format!(
        "{{\"id\":{id},{}}}",
        ok_fields(circuit, seed, cache_hit, queue_ms, solve_ms, total_ms, report),
    )
}

pub(crate) fn resolve_circuit(source: &CircuitSource) -> Result<BenchmarkCircuit, String> {
    match source {
        CircuitSource::Bundled(name) => benchmarks::by_name(name).ok_or_else(|| {
            format!("unknown circuit '{name}' (available: {})", benchmarks::names().join(", "))
        }),
        CircuitSource::Inline(text) => {
            apls_io::parse_circuit(text).map_err(|e| format!("invalid inline circuit: {e}"))
        }
    }
}
