//! Placement-as-a-service: a deterministic TCP job daemon over the portfolio
//! layer.
//!
//! `apls-service` turns the one-shot placement portfolio
//! ([`apls_portfolio::run_portfolio`]) into a long-running service built
//! entirely on `std::net` and `std::sync` — no async runtime, no new
//! dependencies:
//!
//! * **JSON-lines protocol** ([`protocol`], [`json`]) — one request object
//!   per line; jobs name a bundled benchmark circuit or carry an inline
//!   [`.apls` circuit](apls_io) plus a [`PortfolioConfig`
//!   subset](apls_portfolio::PortfolioConfig);
//! * **bounded queue + worker pool** ([`PlacementService`]) — a
//!   `sync_channel` of configurable depth feeds N solver threads; a full
//!   queue answers `{"status":"retry"}` instead of buffering unboundedly;
//! * **result cache** ([`cache::LruCache`]) — keyed by (canonical circuit
//!   text, canonical config string, seed), full content rather than hashes
//!   so a collision can never cross-serve a report; hits are answered
//!   before a queue slot is spent and the response envelope says so
//!   (`"cache_hit": true`);
//! * **determinism** — report bodies are
//!   [`apls_portfolio::PortfolioReport::to_json_deterministic`], a pure
//!   function of `(circuit, config, seed)`; derived job seeds come from
//!   [`apls_anneal::rng::SeedStream::seed_for`]`(`[`JOB_SEED_LANE`]`,
//!   job_index)`, so a replayed job log reproduces every report
//!   byte-for-byte regardless of worker count;
//! * **graceful shutdown** — a `{"op":"shutdown"}` control request (or
//!   [`PlacementService::shutdown`]) stops the acceptor, drains the queue
//!   and joins every thread;
//! * **fault tolerance** ([`journal`], [`fault`], [`sync`]) — an optional
//!   durable job journal restores completed reports and replays incomplete
//!   jobs byte-identically after a crash; workers are panic-isolated
//!   (`catch_unwind` per job) and respawned; per-job deadlines cancel
//!   cooperatively and answer `{"status":"timeout"}`; a deterministic
//!   [`FaultPlan`] injects panics, slow solves, journal write failures and
//!   connection drops at pinned points (DESIGN.md §12).
//!
//! The `apls` CLI exposes all of this as `apls serve` and `apls submit`; the
//! wire protocol and guarantees are documented in DESIGN.md §10.
//!
//! # Example
//!
//! ```
//! use apls_service::{JobSpec, PlacementService, ServiceClient, ServiceConfig};
//!
//! let service = PlacementService::start(ServiceConfig::default()).expect("binds");
//! let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
//!
//! let spec = JobSpec::bundled("miller_opamp_fig6").with_seed(7).with_restarts(1).with_fast(true);
//! let first = client.place(&spec).expect("solves");
//! let second = client.place(&spec).expect("solves");
//! assert!(!first.cache_hit);
//! assert!(second.cache_hit);
//! assert_eq!(first.report, second.report);
//!
//! client.shutdown().expect("acknowledged");
//! service.join();
//! ```

// The readiness poller binds epoll/poll(2) directly (std exposes no
// selector); every other module stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod client;
pub mod fault;
mod http;
pub mod journal;
pub mod json;
mod metrics;
mod poller;
mod protocol;
#[cfg(unix)]
mod reactor;
mod server;
pub mod sync;

pub use cache::CacheStats;
pub use client::{RetryPolicy, ServiceClient};
pub use fault::FaultPlan;
pub use journal::{JournalConfig, SyncPolicy};
pub use protocol::{CircuitSource, JobSpec, PlaceResponse, StreamFrame};
pub use server::{
    PlacementService, ServeMode, ServiceConfig, DEFAULT_FLIGHT_RECORDER_CAPACITY, JOB_SEED_LANE,
    PROTOCOL_VERSION,
};
pub use sync::{lock_or_recover, poison_recoveries};
