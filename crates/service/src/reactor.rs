//! The event-loop service core: one reactor thread owns the listener and
//! every connection behind a readiness poller (epoll on Linux, `poll(2)` on
//! other Unixes — see [`crate::poller`]).
//!
//! ```text
//!            ┌───────────────── reactor thread ─────────────────┐
//!  TCP ──────► poller: listener + self-pipe + every connection  │
//!  clients   │ nonblocking reads ─ line framing ─ dispatch      │
//!            │ per-connection write buffers ─ interest-based    │
//!            │ backpressure ─ completion queue drain            │
//!            └───────▲──────────────────────────────┬───────────┘
//!                    │ CompletionQueue + wake pipe  │ admit_place
//!                    │ (JobMsg::Progress / Done)    ▼
//!                  workers ◄───── bounded job queue ─┘
//! ```
//!
//! Connections cost buffers, not threads: thousands of held-open peers sit
//! as registered fds until bytes arrive. Workers never touch a socket — a
//! finished (or progressing) job goes into the [`CompletionQueue`], the
//! self-pipe pops the reactor out of its poll, and the reactor writes the
//! response into the owning connection's buffer. Write interest is
//! registered only while a buffer is non-empty; a slow reader stalls its own
//! connection (reads pause past the high-water mark), never the reactor.
//!
//! Everything behind the protocol — admission under the enqueue lock,
//! derived seeds, cache, journal, deadlines, fault injection — is the exact
//! code the legacy thread-per-connection mode runs ([`admit_place`]), so
//! response bytes are identical between modes.

use crate::json::Json;
use crate::poller::{Interest, PollEvent, Poller, WakePipe};
use crate::protocol::JobSpec;
use crate::server::{
    accepted_frame, admit_place, count_response_outcome, error_response, initiate_shutdown,
    ok_envelope, oversized_response, ping_response, progress_frame, queued_frame,
    report_frame_error, report_frame_ok, report_frame_retry, report_frame_timeout, resolve_circuit,
    stats_response, timeout_response, Admission, CompletionQueue, JobFailure, JobMsg, Responder,
    Shared, OVERLOADED_LINE, PANIC_ERROR, RETRY_LINE,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::Instant;

/// Poller token of the listener socket.
const LISTENER: usize = 0;
/// Poller token of the wake pipe's read end.
const WAKE: usize = 1;
/// First connection token; connection at slot `s` gets token `CONN_BASE + s`.
const CONN_BASE: usize = 2;

/// Reads pause once a connection's outbound buffer exceeds this, resuming
/// when the peer drains it: a slow reader stalls itself, not the service.
const WRITE_HIGH_WATER: usize = 1 << 20;

/// Bytes read per `read` call on a readable connection.
const READ_CHUNK: usize = 16 * 1024;

/// Stall watchdog threshold: one reactor iteration (everything between two
/// readiness polls) spending longer than this is counted and traced — it
/// means every connection the reactor owns sat unserviced that long.
const STALL_WARN_MS: f64 = 250.0;

/// One reactor-owned connection.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet framed into lines.
    read_buf: Vec<u8>,
    /// Bytes queued for the peer; `wpos` marks how much is already written.
    write_buf: Vec<u8>,
    wpos: usize,
    /// A plain (non-streaming) `place` in flight: its job index. The
    /// protocol is strictly request-response for plain jobs, so parsing
    /// pauses until the response is queued.
    blocked: Option<u64>,
    /// Client-chosen ids of streamed jobs in flight on this connection.
    streaming_ids: HashSet<u64>,
    /// Jobs (plain or streamed) in flight on this connection.
    pending_jobs: usize,
    /// Peer closed its write half (or the socket errored).
    peer_eof: bool,
    /// Close once the write buffer drains (fatal protocol error, shutdown
    /// acknowledgement).
    close_after_flush: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Total bytes ever queued on this connection (monotonic, survives
    /// write-buffer resets), pairing with `abs_flushed` to resolve flush
    /// marks.
    abs_queued: u64,
    /// Total bytes ever written to the socket.
    abs_flushed: u64,
    /// Queue time of each pending response line, keyed by the `abs_queued`
    /// offset its last byte occupies; drained into the `flush_ms` histogram
    /// as writes catch up.
    flush_marks: VecDeque<(u64, Instant)>,
}

impl Conn {
    /// Queues one response line (newline appended) for the peer.
    fn push_line(&mut self, line: &str) {
        self.write_buf.reserve(line.len() + 1);
        self.write_buf.extend_from_slice(line.as_bytes());
        self.write_buf.push(b'\n');
        self.abs_queued += line.len() as u64 + 1;
        self.flush_marks.push_back((self.abs_queued, Instant::now()));
    }

    fn flushed(&self) -> bool {
        self.wpos >= self.write_buf.len()
    }

    fn backpressured(&self) -> bool {
        self.write_buf.len() - self.wpos > WRITE_HIGH_WATER
    }
}

/// A job admitted by the reactor, awaiting worker messages. `slot`/`gen`
/// identify the owning connection; a connection that died (and whose slot
/// was possibly reused) fails the generation check and the response is
/// dropped, exactly as a legacy handler hanging up drops its channel.
struct PendingJob {
    slot: usize,
    gen: u64,
    /// `Some` for streamed jobs: the client's correlation id.
    client_id: Option<u64>,
    circuit: String,
    seed: u64,
    deadline_ms: Option<u64>,
    start: Instant,
}

/// Everything the reactor mutates per iteration.
struct Reactor {
    shared: Arc<Shared>,
    completions: Arc<CompletionQueue>,
    poller: Box<dyn Poller>,
    conns: Vec<Option<Conn>>,
    /// Slot generations: bumped on every allocation so stale completions
    /// can never reach a reused slot.
    gens: Vec<u64>,
    /// Reusable slots. Slots freed this iteration are parked in
    /// `freed_this_round` until the event batch is fully processed, so a
    /// stale readiness event later in the same batch cannot hit a brand-new
    /// peer.
    free: Vec<usize>,
    freed_this_round: Vec<usize>,
    /// Slots touched this iteration that need a flush/interest/close pass.
    dirty: Vec<usize>,
    /// In-flight jobs by job index.
    pending: HashMap<u64, PendingJob>,
    live: usize,
    accepted: u64,
    draining: bool,
}

/// Runs the event-loop service core on the current thread until shutdown.
pub(crate) fn run(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    mut poller: Box<dyn Poller>,
    pipe: WakePipe,
) {
    let Some(completions) = shared.completions() else {
        // Start wiring guarantees a completion queue in event-loop mode;
        // without one the reactor cannot receive worker messages.
        crate::server::accept_loop_fallback(listener, shared);
        return;
    };
    if listener.set_nonblocking(true).is_err()
        || poller.register(listener.as_raw_fd(), LISTENER, Interest::READ).is_err()
        || poller.register(pipe.fd(), WAKE, Interest::READ).is_err()
    {
        crate::server::accept_loop_fallback(listener, shared);
        return;
    }
    shared.metrics.poller_registered_fds.set(2);
    apls_telemetry::event!(
        shared.telemetry,
        "service",
        "reactor_start",
        poller = poller.name().to_string()
    );

    let mut reactor = Reactor {
        shared: Arc::clone(shared),
        completions,
        poller,
        conns: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
        freed_this_round: Vec::new(),
        dirty: Vec::new(),
        pending: HashMap::new(),
        live: 0,
        accepted: 0,
        draining: false,
    };
    let mut events: Vec<PollEvent> = Vec::new();
    let mut listener_registered = true;

    loop {
        if reactor.shared.shutdown.load(std::sync::atomic::Ordering::SeqCst) && !reactor.draining {
            reactor.draining = true;
            if listener_registered {
                let _ = reactor.poller.deregister(listener.as_raw_fd());
                listener_registered = false;
            }
            // every idle connection should flush and close now
            for slot in 0..reactor.conns.len() {
                if reactor.conns[slot].is_some() {
                    reactor.mark_dirty(slot);
                }
            }
            reactor.finalize_dirty();
            reactor.recycle_freed();
        }
        if reactor.draining && reactor.live == 0 {
            break;
        }
        let poll_start = Instant::now();
        match reactor.poller.poll(&mut events, None) {
            Ok(n) => {
                if n > 0 {
                    reactor.shared.metrics.readiness_wakeups_total.inc();
                }
            }
            Err(_) => break, // poller died: no way to serve anything further
        }
        let work_start = Instant::now();
        reactor.shared.metrics.poll_wait_ms.observe((work_start - poll_start).as_secs_f64() * 1e3);
        for event in &events {
            match event.token {
                LISTENER => reactor.accept_burst(listener),
                WAKE => pipe.drain(),
                token => {
                    let slot = token - CONN_BASE;
                    if event.readable || event.hangup {
                        reactor.handle_conn_event(slot, true);
                    }
                    if event.writable {
                        // flushing happens in the finalize pass
                        reactor.mark_dirty(slot);
                    }
                }
            }
        }
        reactor.drain_completions();
        reactor.finalize_dirty();
        reactor.recycle_freed();
        reactor.update_fd_gauge();
        // Iteration-duration histogram + stall watchdog: time spent serving
        // this batch is time every other connection waited.
        let loop_ms = work_start.elapsed().as_secs_f64() * 1e3;
        reactor.shared.metrics.loop_ms.observe(loop_ms);
        if loop_ms > STALL_WARN_MS {
            reactor.shared.metrics.reactor_stalls_total.inc();
            apls_telemetry::event!(reactor.shared.telemetry, "reactor", "stall", ms = loop_ms);
        }
    }
    reactor.shared.metrics.poller_registered_fds.set(0);
    // conns dropped here close their sockets; the gauge must follow
    reactor.shared.metrics.connections_active.sub(reactor.live as i64);
}

impl Reactor {
    fn mark_dirty(&mut self, slot: usize) {
        if !self.dirty.contains(&slot) {
            self.dirty.push(slot);
        }
    }

    fn recycle_freed(&mut self) {
        let freed: Vec<usize> = self.freed_this_round.drain(..).collect();
        self.free.extend(freed);
    }

    fn update_fd_gauge(&self) {
        let fixed = if self.draining { 1 } else { 2 }; // wake pipe (+ listener)
        self.shared.metrics.poller_registered_fds.set(fixed + self.live as i64);
    }

    /// Accepts until the listener would block.
    fn accept_burst(&mut self, listener: &TcpListener) {
        if self.draining {
            return;
        }
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => break, // WouldBlock, or a transient accept error
            };
            let connection = self.accepted;
            self.accepted += 1;
            if self.shared.fault.as_ref().is_some_and(|plan| plan.drop_connection(connection)) {
                self.shared.metrics.connections_dropped_total.inc();
                continue; // dropping the stream closes it mid-handshake
            }
            if self.live >= self.shared.config.max_connections {
                let mut stream = stream;
                // freshly accepted socket: the refusal fits the empty kernel
                // buffer, so a nonblocking write is effectively reliable
                let _ = stream.set_nonblocking(true);
                let _ = stream.write_all(OVERLOADED_LINE);
                continue; // dropping the stream closes it
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let slot = match self.free.pop() {
                Some(slot) => slot,
                None => {
                    self.conns.push(None);
                    self.gens.push(0);
                    self.conns.len() - 1
                }
            };
            if self.poller.register(stream.as_raw_fd(), CONN_BASE + slot, Interest::READ).is_err() {
                self.free.push(slot);
                continue; // dropping the stream closes it
            }
            self.gens[slot] += 1;
            self.conns[slot] = Some(Conn {
                stream,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                wpos: 0,
                blocked: None,
                streaming_ids: HashSet::new(),
                pending_jobs: 0,
                peer_eof: false,
                close_after_flush: false,
                interest: Interest::READ,
                abs_queued: 0,
                abs_flushed: 0,
                flush_marks: VecDeque::new(),
            });
            self.live += 1;
            self.shared.metrics.connections_active.add(1);
            apls_telemetry::event!(self.shared.telemetry, "service", "accept");
        }
    }

    fn handle_conn_event(&mut self, slot: usize, readable: bool) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return; // stale event for a slot freed earlier in this batch
        };
        if readable && !conn.peer_eof && !conn.close_after_flush {
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                // stop pulling bytes while backpressured or blocked;
                // level-triggered polling re-delivers readability once
                // interest returns
                if conn.blocked.is_some() || conn.backpressured() {
                    break;
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        if conn.read_buf.len() > self.shared.config.max_request_bytes {
                            break; // oversized: process_lines answers + closes
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.peer_eof = true;
                        break;
                    }
                }
            }
            self.process_lines(slot);
        }
        self.mark_dirty(slot);
    }

    /// Frames and dispatches every complete line buffered on `slot`.
    fn process_lines(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
            if conn.blocked.is_some() || conn.close_after_flush || self.draining {
                return;
            }
            if conn.backpressured() {
                return; // finish writing before parsing more requests
            }
            let max_request = self.shared.config.max_request_bytes;
            let line = match conn.read_buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let mut line: Vec<u8> = conn.read_buf.drain(..=pos).collect();
                    line.pop(); // the newline
                    line
                }
                None => {
                    if conn.read_buf.len() > max_request {
                        // a peer streaming bytes without newlines can never
                        // make the daemon buffer more than the request cap
                        self.overlong_request(slot, max_request);
                    }
                    return;
                }
            };
            if line.len() > max_request {
                self.overlong_request(slot, max_request);
                return;
            }
            let Ok(text) = std::str::from_utf8(&line) else {
                self.shared.metrics.requests_total.inc();
                let response = error_response("bad_request", "request is not valid UTF-8");
                self.respond_plain(slot, response);
                if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                    conn.close_after_flush = true;
                }
                return;
            };
            let request = text.trim().to_string();
            if request.is_empty() {
                continue;
            }
            self.dispatch_line(slot, &request);
            self.mark_dirty(slot);
        }
    }

    /// Answers an over-limit request line and schedules the close, exactly
    /// like the legacy handler.
    fn overlong_request(&mut self, slot: usize, max_request: usize) {
        self.shared.metrics.requests_total.inc();
        let response = oversized_response(max_request);
        self.respond_plain(slot, response);
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            conn.close_after_flush = true;
        }
    }

    fn dispatch_line(&mut self, slot: usize, line: &str) {
        self.shared.metrics.requests_total.inc();
        let json = match Json::parse(line) {
            Ok(json) => json,
            Err(e) => {
                let response = error_response("bad_request", &format!("invalid JSON: {e}"));
                self.respond_plain(slot, response);
                return;
            }
        };
        let op = json.get("op").and_then(Json::as_str);
        apls_telemetry::event!(
            self.shared.telemetry,
            "service",
            "request",
            op = op.unwrap_or("(missing)").to_string()
        );
        match op {
            Some("ping") => self.respond_plain(slot, ping_response()),
            Some("stats") => {
                let response = stats_response(&self.shared);
                self.respond_plain(slot, response);
            }
            Some("shutdown") => {
                self.respond_plain(slot, "{\"status\":\"shutting_down\"}".to_string());
                let addr = self.conns.get_mut(slot).and_then(Option::as_mut).and_then(|conn| {
                    conn.close_after_flush = true;
                    conn.stream.local_addr().ok()
                });
                if let Some(addr) = addr {
                    initiate_shutdown(&self.shared, addr);
                }
            }
            Some("place") => self.place(slot, &json),
            Some("dump") => {
                let response = crate::server::dump_response(&self.shared);
                self.respond_plain(slot, response);
            }
            Some(other) => {
                let response = error_response(
                    "bad_request",
                    &format!("unknown op '{other}' (place, ping, stats, dump, shutdown)"),
                );
                self.respond_plain(slot, response);
            }
            None => {
                let response = error_response("bad_request", "request needs an 'op' field");
                self.respond_plain(slot, response);
            }
        }
    }

    /// Queues one non-frame response line and counts its outcome.
    fn respond_plain(&mut self, slot: usize, response: String) {
        count_response_outcome(&self.shared, &response);
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            conn.push_line(&response);
        }
    }

    /// Queues one stream frame line (report frames also count error/retry
    /// outcomes via their embedded status).
    fn respond_frame(&mut self, slot: usize, frame: String) {
        count_response_outcome(&self.shared, &frame);
        self.shared.metrics.frames_sent_total.inc();
        apls_telemetry::event!(self.shared.telemetry, "service", "frame");
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            conn.push_line(&frame);
        }
    }

    fn place(&mut self, slot: usize, json: &Json) {
        let start = Instant::now();
        let spec = match JobSpec::from_json(json) {
            Ok(spec) => spec,
            Err(e) => {
                let response = error_response("bad_request", &e);
                self.respond_plain(slot, response);
                return;
            }
        };
        let stream_id = if spec.stream == Some(true) { spec.stream_id } else { None };
        if let Some(cid) = stream_id {
            let duplicate = self
                .conns
                .get(slot)
                .and_then(Option::as_ref)
                .is_some_and(|c| c.streaming_ids.contains(&cid));
            if duplicate {
                let frame = report_frame_error(
                    cid,
                    "bad_request",
                    &format!("stream id {cid} is already in flight on this connection"),
                );
                self.respond_frame(slot, frame);
                return;
            }
        }
        let circuit = match resolve_circuit(&spec.circuit) {
            Ok(circuit) => circuit,
            Err(e) => {
                self.fail(slot, stream_id, "bad_request", &e);
                return;
            }
        };
        let circuit_name = circuit.name.clone();
        let deadline_ms = spec.deadline_ms;
        // the span handle must not borrow self (respond_* methods take &mut
        // self), so it hangs off an owned clone of the shared state
        let shared = Arc::clone(&self.shared);
        let mut request_span = apls_telemetry::span!(
            shared.telemetry,
            "service",
            "place",
            circuit = circuit_name.as_str()
        );
        let respond = Responder::Reactor(Arc::clone(&self.completions));
        match admit_place(&spec, circuit, &shared, respond, stream_id.is_some(), start) {
            Admission::ShuttingDown => {
                self.fail(slot, stream_id, "unavailable", "service is shutting down");
            }
            Admission::QueueFull => match stream_id {
                Some(cid) => self.respond_frame(slot, report_frame_retry(cid)),
                None => self.respond_plain(slot, RETRY_LINE.to_string()),
            },
            Admission::Cached { index, seed, report } => {
                let total_ms = start.elapsed().as_secs_f64() * 1e3;
                self.shared.metrics.total_ms.observe(total_ms);
                if request_span.is_recording() {
                    request_span.arg("id", index);
                    request_span.arg("seed", seed);
                    request_span.arg("cache_hit", true);
                }
                match stream_id {
                    Some(cid) => {
                        self.respond_frame(slot, accepted_frame(cid, index, &circuit_name, seed));
                        // a hit never consumed a queue slot: depth 0
                        self.respond_frame(slot, queued_frame(cid, 0));
                        let frame = report_frame_ok(
                            cid,
                            index,
                            &circuit_name,
                            seed,
                            true,
                            0.0,
                            total_ms,
                            total_ms,
                            &report,
                        );
                        self.respond_frame(slot, frame);
                    }
                    None => {
                        let response = ok_envelope(
                            index,
                            &circuit_name,
                            seed,
                            true,
                            0.0,
                            total_ms,
                            total_ms,
                            &report,
                        );
                        self.respond_plain(slot, response);
                    }
                }
            }
            Admission::Enqueued { index, seed } => {
                if request_span.is_recording() {
                    request_span.arg("id", index);
                    request_span.arg("seed", seed);
                }
                self.pending.insert(
                    index,
                    PendingJob {
                        slot,
                        gen: self.gens[slot],
                        client_id: stream_id,
                        circuit: circuit_name.clone(),
                        seed,
                        deadline_ms,
                        start,
                    },
                );
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    return;
                };
                conn.pending_jobs += 1;
                match stream_id {
                    Some(cid) => {
                        conn.streaming_ids.insert(cid);
                        self.respond_frame(slot, accepted_frame(cid, index, &circuit_name, seed));
                        let depth = self.shared.metrics.queue_depth.get().max(0) as u64;
                        self.respond_frame(slot, queued_frame(cid, depth));
                    }
                    None => conn.blocked = Some(index),
                }
            }
        }
    }

    /// Queues the failure response for a (possibly streamed) `place`.
    fn fail(&mut self, slot: usize, stream_id: Option<u64>, kind: &str, message: &str) {
        match stream_id {
            Some(cid) => self.respond_frame(slot, report_frame_error(cid, kind, message)),
            None => self.respond_plain(slot, error_response(kind, message)),
        }
    }

    /// Routes every queued worker message to its owning connection.
    fn drain_completions(&mut self) {
        for (index, msg) in self.completions.drain() {
            match msg {
                JobMsg::Progress { engine, restart, completed, total, cost } => {
                    let Some(p) = self.pending.get(&index) else { continue };
                    let (slot, gen, client_id) = (p.slot, p.gen, p.client_id);
                    if self.gens.get(slot).copied() != Some(gen) {
                        continue; // connection died; nothing to stream to
                    }
                    if let Some(cid) = client_id {
                        let frame = progress_frame(cid, engine, restart, completed, total, cost);
                        self.respond_frame(slot, frame);
                        self.mark_dirty(slot);
                    }
                }
                JobMsg::Done(done) => {
                    let Some(p) = self.pending.remove(&index) else { continue };
                    let total_ms = p.start.elapsed().as_secs_f64() * 1e3;
                    self.shared.metrics.total_ms.observe(total_ms);
                    let alive = self.gens.get(p.slot).copied() == Some(p.gen)
                        && self.conns.get(p.slot).and_then(Option::as_ref).is_some();
                    if !alive {
                        continue; // client hung up; the report is cached/journaled
                    }
                    let slot = p.slot;
                    match p.client_id {
                        Some(cid) => {
                            let frame = match &done.outcome {
                                Ok((report, cache_hit)) => report_frame_ok(
                                    cid,
                                    index,
                                    &p.circuit,
                                    p.seed,
                                    *cache_hit,
                                    done.queue_ms,
                                    done.solve_ms,
                                    total_ms,
                                    report,
                                ),
                                Err(JobFailure::Timeout) => report_frame_timeout(
                                    cid,
                                    index,
                                    &p.circuit,
                                    p.seed,
                                    p.deadline_ms.unwrap_or(0),
                                ),
                                Err(JobFailure::Panic) => {
                                    report_frame_error(cid, "internal", PANIC_ERROR)
                                }
                            };
                            self.respond_frame(slot, frame);
                            if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                                conn.streaming_ids.remove(&cid);
                                conn.pending_jobs = conn.pending_jobs.saturating_sub(1);
                            }
                        }
                        None => {
                            let response = match &done.outcome {
                                Ok((report, cache_hit)) => ok_envelope(
                                    index,
                                    &p.circuit,
                                    p.seed,
                                    *cache_hit,
                                    done.queue_ms,
                                    done.solve_ms,
                                    total_ms,
                                    report,
                                ),
                                Err(JobFailure::Timeout) => timeout_response(
                                    index,
                                    &p.circuit,
                                    p.seed,
                                    p.deadline_ms.unwrap_or(0),
                                ),
                                Err(JobFailure::Panic) => error_response("internal", PANIC_ERROR),
                            };
                            self.respond_plain(slot, response);
                            if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                                conn.pending_jobs = conn.pending_jobs.saturating_sub(1);
                                if conn.blocked == Some(index) {
                                    conn.blocked = None;
                                }
                            }
                            // unblocked: serve any requests the peer pipelined
                            self.process_lines(slot);
                        }
                    }
                    self.mark_dirty(slot);
                }
            }
        }
    }

    /// Flushes, closes and re-registers every connection touched this
    /// iteration.
    fn finalize_dirty(&mut self) {
        let dirty: Vec<usize> = self.dirty.drain(..).collect();
        let mut pass_high_water: u64 = 0;
        for slot in dirty {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { continue };
            // eager flush: most responses fit the socket buffer, so the
            // common case never registers write interest at all
            let mut broken = false;
            while conn.wpos < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.wpos..]) {
                    Ok(0) => {
                        broken = true;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        conn.abs_flushed += n as u64;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
            // every response line whose last byte reached the socket resolves
            // its queue-time mark into the flush-stage histogram
            while conn.flush_marks.front().is_some_and(|&(end, _)| end <= conn.abs_flushed) {
                let (_, queued_at) = conn.flush_marks.pop_front().expect("front checked");
                self.shared.metrics.flush_ms.observe(queued_at.elapsed().as_secs_f64() * 1e3);
            }
            pass_high_water = pass_high_water.max((conn.write_buf.len() - conn.wpos) as u64);
            if conn.flushed() {
                conn.write_buf.clear();
                conn.wpos = 0;
            }
            let idle = conn.pending_jobs == 0 && conn.flushed();
            let close = broken
                || (conn.close_after_flush && conn.flushed())
                || (conn.peer_eof && idle)
                || (self.draining && idle);
            if close {
                self.close_conn(slot);
                continue;
            }
            let desired = Interest {
                read: !conn.close_after_flush
                    && !conn.peer_eof
                    && conn.blocked.is_none()
                    && !self.draining
                    && !conn.backpressured(),
                write: !conn.flushed(),
            };
            if desired != conn.interest {
                let fd = conn.stream.as_raw_fd();
                if self.poller.reregister(fd, CONN_BASE + slot, desired).is_ok() {
                    if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                        conn.interest = desired;
                    }
                } else {
                    self.close_conn(slot);
                }
            }
        }
        // the reactor is single-threaded, so the get-then-set ratchet on the
        // high-water gauge cannot race
        let metrics = &self.shared.metrics;
        metrics.write_buffer_bytes.set(pass_high_water as i64);
        if pass_high_water as i64 > metrics.write_buffer_high_water.get() {
            metrics.write_buffer_high_water.set(pass_high_water as i64);
        }
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.live -= 1;
            self.shared.metrics.connections_active.sub(1);
            self.freed_this_round.push(slot);
        }
    }
}
