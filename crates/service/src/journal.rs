//! The durable job journal: an append-only JSON-lines log that carries the
//! daemon's replay guarantee across a crash.
//!
//! Two record types, one JSON object per line, each written (and by default
//! fsync'd) before the service acts on the event it describes:
//!
//! ```json
//! {"v":1,"type":"enqueue","index":0,"seed":…,"circuit_hash":…,"config_fp":…,"spec":"{…}"}
//! {"v":1,"type":"complete","index":0,"report_fp":…,"report":"{…}"}
//! ```
//!
//! * An **enqueue** record is appended at job-index assignment — atomically
//!   with the index, inside the enqueue lock — and carries everything needed
//!   to re-run the job: the resolved seed and a self-contained [`JobSpec`]
//!   request line (bundled name or full inline `.apls` text plus every
//!   result-relevant config field). `circuit_hash`/`config_fp` are
//!   fingerprints for integrity checking at recovery.
//! * A **complete** record is appended when a worker (or the cache-hit fast
//!   path) finishes the job, with the full deterministic report body — the
//!   journal doubles as the result store a restarted daemon serves
//!   pre-crash reports from.
//!
//! **Recovery** ([`Journal::open`]) replays the log: completed jobs seed the
//! result cache, incomplete jobs are re-enqueued with their *recorded* seed —
//! which is exactly the seed `SeedStream::seed_for(JOB_SEED_LANE, index)`
//! would have derived — so the restarted daemon produces byte-identical
//! reports to the ones the dead process would have written. The job counter
//! resumes past the highest journaled index, so post-restart derived seeds
//! never collide with pre-crash ones. A truncated or torn final line (the
//! usual signature of a crash mid-append) is tolerated: replay stops at the
//! first unparseable line and the file is re-opened for append.
//!
//! **Failure policy**: journal append errors (disk full, injected faults)
//! degrade the service to non-durable instead of failing jobs — the caller
//! counts the failure and keeps serving.

use crate::fault::FaultPlan;
use crate::json::{quote, Json};
use crate::protocol::JobSpec;
use crate::sync::lock_or_recover;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Journal record format version.
const JOURNAL_VERSION: u64 = 1;

/// When appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every record before the append returns: nothing the
    /// service has acted on can be lost, at ~one disk flush per record.
    EveryRecord,
    /// Records are written immediately but fsync'd by a background flusher
    /// every `interval`: a crash can lose at most the last interval's
    /// records (the jobs whose clients a dead process never answered
    /// anyway); appends cost a buffered write. Graceful shutdown still
    /// syncs everything.
    Batched {
        /// Time between background fsyncs.
        interval: Duration,
    },
}

/// Where and how the daemon journals jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalConfig {
    /// The JSON-lines journal file (created if missing, replayed if not).
    pub path: PathBuf,
    /// Fsync policy for appended records.
    pub sync: SyncPolicy,
}

impl JournalConfig {
    /// A per-record-fsync journal at `path` (the strict default).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig { path: path.into(), sync: SyncPolicy::EveryRecord }
    }

    /// Switches to batched fsync (builder style).
    #[must_use]
    pub fn with_batched_sync(mut self, interval: Duration) -> JournalConfig {
        self.sync = SyncPolicy::Batched { interval };
        self
    }
}

/// One record to append.
#[derive(Debug, Clone, Copy)]
pub(crate) enum JournalRecord<'a> {
    /// Job `index` was assigned and enqueued (or answered from cache).
    Enqueue {
        /// Arrival-order job index.
        index: u64,
        /// The resolved root seed (pinned by the client or derived).
        seed: u64,
        /// `canonical_hash` of the canonical circuit text.
        circuit_hash: u64,
        /// `JobSpec::config_fingerprint` of the resolved config.
        config_fp: u64,
        /// Self-contained request line that re-runs the job
        /// (`JobSpec::to_json_line` with the seed pinned).
        spec: &'a str,
    },
    /// Job `index` finished with the given deterministic report body.
    Complete {
        /// Arrival-order job index.
        index: u64,
        /// `canonical_hash` of the report body.
        report_fp: u64,
        /// The deterministic report JSON, verbatim.
        report: &'a str,
    },
}

impl JournalRecord<'_> {
    fn render(&self) -> String {
        match self {
            JournalRecord::Enqueue { index, seed, circuit_hash, config_fp, spec } => format!(
                "{{\"v\":{JOURNAL_VERSION},\"type\":\"enqueue\",\"index\":{index},\"seed\":{seed},\"circuit_hash\":{circuit_hash},\"config_fp\":{config_fp},\"spec\":{}}}\n",
                quote(spec)
            ),
            JournalRecord::Complete { index, report_fp, report } => format!(
                "{{\"v\":{JOURNAL_VERSION},\"type\":\"complete\",\"index\":{index},\"report_fp\":{report_fp},\"report\":{}}}\n",
                quote(report)
            ),
        }
    }
}

/// One job reconstructed from the journal at startup.
#[derive(Debug, Clone)]
pub(crate) struct RecoveredJob {
    /// Arrival-order job index.
    pub index: u64,
    /// The seed the job ran (or must run) with.
    pub seed: u64,
    /// Recorded circuit fingerprint, verified against the re-resolved spec.
    pub circuit_hash: u64,
    /// Recorded config fingerprint, verified against the re-resolved spec.
    pub config_fp: u64,
    /// The decoded job request.
    pub spec: JobSpec,
    /// The completed report body, when the job finished before the crash.
    pub report: Option<String>,
}

/// What [`Journal::open`] reconstructed from an existing journal file.
#[derive(Debug, Default)]
pub(crate) struct Recovery {
    /// Jobs in index order (completed and incomplete).
    pub jobs: Vec<RecoveredJob>,
    /// The job counter resumes here (highest journaled index + 1).
    pub next_index: u64,
    /// Unparseable lines skipped at the tail (torn final append ⇒ 1).
    pub torn_lines: usize,
}

struct Inner {
    file: File,
    /// Sequence number of the next record (drives fault injection).
    seq: u64,
    /// Batched policy: records written since the last fsync.
    dirty: bool,
}

/// An open, append-only job journal (see the module docs).
pub(crate) struct Journal {
    inner: Arc<Mutex<Inner>>,
    sync: SyncPolicy,
    fault: Option<Arc<FaultPlan>>,
    stop_flusher: Arc<AtomicBool>,
}

impl Journal {
    /// Opens (creating if missing) the journal at `config.path`, replaying
    /// any existing records into a [`Recovery`].
    ///
    /// `fault` injects deterministic append failures (tests/CI only).
    pub(crate) fn open(
        config: &JournalConfig,
        fault: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<(Journal, Recovery)> {
        let mut text = String::new();
        match File::open(&config.path) {
            Ok(mut existing) => {
                existing.read_to_string(&mut text)?;
            }
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let recovery = replay(&text);
        let file = OpenOptions::new().create(true).append(true).open(&config.path)?;
        let seq = text.lines().filter(|l| !l.trim().is_empty()).count() as u64;
        let inner = Arc::new(Mutex::new(Inner { file, seq, dirty: false }));
        let stop_flusher = Arc::new(AtomicBool::new(false));
        if let SyncPolicy::Batched { interval } = config.sync {
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&stop_flusher);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(interval);
                    let mut guard = lock_or_recover(&inner);
                    if guard.dirty {
                        let _ = guard.file.sync_data();
                        guard.dirty = false;
                    }
                }
            });
        }
        Ok((Journal { inner, sync: config.sync, fault, stop_flusher }, recovery))
    }

    /// Appends one record, fsync'ing per the configured policy.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync errors (and injected fault failures). The
    /// record is *not* durably recorded on error; callers degrade to
    /// non-durable operation rather than failing the job.
    pub(crate) fn append(&self, record: &JournalRecord<'_>) -> std::io::Result<()> {
        let line = record.render();
        let mut guard = lock_or_recover(&self.inner);
        let seq = guard.seq;
        guard.seq += 1;
        if self.fault.as_ref().is_some_and(|plan| plan.fail_journal_record(seq)) {
            return Err(std::io::Error::other(format!(
                "fault injection: journal record {seq} write failure"
            )));
        }
        guard.file.write_all(line.as_bytes())?;
        match self.sync {
            SyncPolicy::EveryRecord => guard.file.sync_data()?,
            SyncPolicy::Batched { .. } => guard.dirty = true,
        }
        Ok(())
    }

    /// Forces everything written so far to disk (graceful shutdown).
    pub(crate) fn sync(&self) {
        let mut guard = lock_or_recover(&self.inner);
        let _ = guard.file.sync_data();
        guard.dirty = false;
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.stop_flusher.store(true, Ordering::SeqCst);
        self.sync();
    }
}

/// Replays journal text into per-job state. Stops at the first unparseable
/// line (a torn tail write); records after a torn line are unreachable by
/// construction, since appends are strictly ordered.
fn replay(text: &str) -> Recovery {
    let mut jobs: BTreeMap<u64, RecoveredJob> = BTreeMap::new();
    let mut torn = 0usize;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    for (i, line) in lines.iter().enumerate() {
        let Some(record) = parse_record(line) else {
            torn = lines.len() - i;
            break;
        };
        match record {
            ParsedRecord::Enqueue(job) => {
                jobs.insert(job.index, *job);
            }
            ParsedRecord::Complete { index, report } => {
                if let Some(job) = jobs.get_mut(&index) {
                    job.report = Some(report);
                }
            }
        }
    }
    let next_index = jobs.keys().next_back().map_or(0, |max| max + 1);
    Recovery { jobs: jobs.into_values().collect(), next_index, torn_lines: torn }
}

enum ParsedRecord {
    Enqueue(Box<RecoveredJob>),
    Complete { index: u64, report: String },
}

fn parse_record(line: &str) -> Option<ParsedRecord> {
    let json = Json::parse(line).ok()?;
    if json.get("v").and_then(Json::as_u64) != Some(JOURNAL_VERSION) {
        return None;
    }
    let index = json.get("index").and_then(Json::as_u64)?;
    match json.get("type").and_then(Json::as_str)? {
        "enqueue" => {
            let seed = json.get("seed").and_then(Json::as_u64)?;
            let circuit_hash = json.get("circuit_hash").and_then(Json::as_u64)?;
            let config_fp = json.get("config_fp").and_then(Json::as_u64)?;
            let spec_text = json.get("spec").and_then(Json::as_str)?;
            let spec = JobSpec::from_json(&Json::parse(spec_text).ok()?).ok()?;
            Some(ParsedRecord::Enqueue(Box::new(RecoveredJob {
                index,
                seed,
                circuit_hash,
                config_fp,
                spec,
                report: None,
            })))
        }
        "complete" => {
            let report = json.get("report").and_then(Json::as_str)?.to_string();
            // report_fp is integrity metadata; a missing field is torn
            json.get("report_fp").and_then(Json::as_u64)?;
            Some(ParsedRecord::Complete { index, report })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CircuitSource;

    fn tempfile(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("apls-journal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn enqueue_record(index: u64, seed: u64, spec: &str) -> String {
        JournalRecord::Enqueue { index, seed, circuit_hash: 11, config_fp: 22, spec }.render()
    }

    #[test]
    fn records_round_trip_through_replay() {
        let path = tempfile("roundtrip");
        let config = JournalConfig::new(&path);
        let spec = JobSpec::bundled("miller_v2").with_seed(7).to_json_line();
        {
            let (journal, recovery) = Journal::open(&config, None).expect("opens");
            assert_eq!(recovery.next_index, 0);
            assert!(recovery.jobs.is_empty());
            journal
                .append(&JournalRecord::Enqueue {
                    index: 0,
                    seed: 7,
                    circuit_hash: 11,
                    config_fp: 22,
                    spec: &spec,
                })
                .expect("appends");
            journal
                .append(&JournalRecord::Complete { index: 0, report_fp: 33, report: "{\"x\":1}" })
                .expect("appends");
            journal
                .append(&JournalRecord::Enqueue {
                    index: 1,
                    seed: 9,
                    circuit_hash: 11,
                    config_fp: 22,
                    spec: &spec,
                })
                .expect("appends");
        }
        let (_journal, recovery) = Journal::open(&config, None).expect("re-opens");
        assert_eq!(recovery.next_index, 2);
        assert_eq!(recovery.torn_lines, 0);
        assert_eq!(recovery.jobs.len(), 2);
        let done = &recovery.jobs[0];
        assert_eq!((done.index, done.seed), (0, 7));
        assert_eq!(done.report.as_deref(), Some("{\"x\":1}"));
        assert_eq!(done.circuit_hash, 11);
        assert_eq!(done.spec.circuit, CircuitSource::Bundled("miller_v2".to_string()));
        let pending = &recovery.jobs[1];
        assert_eq!((pending.index, pending.seed), (1, 9));
        assert!(pending.report.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = tempfile("torn");
        let spec = JobSpec::bundled("miller_v2").with_seed(7).to_json_line();
        let mut text = enqueue_record(0, 7, &spec);
        text.push_str("{\"v\":1,\"type\":\"enqueue\",\"index\":1,\"se"); // torn mid-append
        std::fs::write(&path, &text).unwrap();
        let (_journal, recovery) = Journal::open(&JournalConfig::new(&path), None).expect("opens");
        assert_eq!(recovery.jobs.len(), 1);
        assert_eq!(recovery.next_index, 1);
        assert_eq!(recovery.torn_lines, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_write_failure_is_an_error_but_later_appends_work() {
        let path = tempfile("fault");
        let fault = Arc::new(FaultPlan::new().with_journal_fail(0));
        let (journal, _) = Journal::open(&JournalConfig::new(&path), Some(fault)).expect("opens");
        let spec = JobSpec::bundled("miller_v2").with_seed(7).to_json_line();
        let record = JournalRecord::Enqueue {
            index: 0,
            seed: 7,
            circuit_hash: 11,
            config_fp: 22,
            spec: &spec,
        };
        assert!(journal.append(&record).is_err(), "record 0 fails by plan");
        assert!(journal.append(&record).is_ok(), "record 1 appends normally");
        drop(journal);
        let (_journal, recovery) = Journal::open(&JournalConfig::new(&path), None).unwrap();
        assert_eq!(recovery.jobs.len(), 1, "only the surviving record replays");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batched_sync_flushes_on_drop() {
        let path = tempfile("batched");
        let config = JournalConfig::new(&path).with_batched_sync(Duration::from_millis(5));
        let spec = JobSpec::bundled("miller_v2").with_seed(7).to_json_line();
        {
            let (journal, _) = Journal::open(&config, None).expect("opens");
            journal
                .append(&JournalRecord::Enqueue {
                    index: 0,
                    seed: 7,
                    circuit_hash: 11,
                    config_fp: 22,
                    spec: &spec,
                })
                .expect("appends");
        }
        let (_journal, recovery) = Journal::open(&config, None).expect("re-opens");
        assert_eq!(recovery.jobs.len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
