//! The JSON-lines wire protocol: job requests and response envelopes.
//!
//! One JSON object per line in each direction. Requests carry an `op`:
//!
//! ```text
//! {"op":"place","circuit":"miller_v2","seed":7,"restarts":4,"fast":true}
//! {"op":"place","apls":"apls 1\ncircuit \"x\"\n…","engines":["seqpair","hier"]}
//! {"op":"ping"}   {"op":"stats"}   {"op":"shutdown"}
//! ```
//!
//! `place` responses wrap the *deterministic* portfolio report
//! ([`apls_portfolio::PortfolioReport::to_json_deterministic`]) verbatim in a
//! `"report"` string field, alongside the job envelope (id, seed, cache flag,
//! queue/solve/total milliseconds). The full schema is documented in
//! DESIGN.md §10.

use crate::json::{quote, Json};
use apls_io::canonical_hash;
use apls_portfolio::{EarlyStop, PortfolioConfig, PortfolioEngine};

/// Where a job's circuit comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitSource {
    /// One of the bundled benchmark circuits, by name
    /// (see [`apls_circuit::benchmarks::names`]).
    Bundled(String),
    /// An inline circuit in `.apls` text form.
    Inline(String),
}

/// A placement job request: a circuit source plus the `PortfolioConfig`
/// subset a client may set. Unset fields take the service defaults
/// ([`PortfolioConfig::default`], with one rayon thread per job — parallelism
/// comes from the service worker pool).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The circuit to place.
    pub circuit: CircuitSource,
    /// Root seed. `None` lets the service derive one from its own seed
    /// stream and the job index (reproducible under job-log replay).
    pub seed: Option<u64>,
    /// Restarts per stochastic engine.
    pub restarts: Option<usize>,
    /// Engine subset to race.
    pub engines: Option<Vec<PortfolioEngine>>,
    /// Short smoke annealing schedule.
    pub fast: Option<bool>,
    /// Wirelength weight of the cost function.
    pub wirelength_weight: Option<f64>,
    /// The hier engine's annealing threshold.
    pub hier_anneal_threshold: Option<usize>,
    /// Plateau early-stop window.
    pub plateau: Option<usize>,
    /// Rayon threads *within* the job (default 1).
    pub threads: Option<usize>,
    /// Per-job deadline in milliseconds, measured from enqueue. Checked
    /// cooperatively between restarts; an expired job answers
    /// `{"status":"timeout"}` and frees its worker. Timing-only: never part
    /// of the cache key, and stripped before journaling so recovery replays
    /// the job with its full time budget.
    pub deadline_ms: Option<u64>,
    /// Requests a streamed response: tagged frames
    /// (`accepted → queued → progress* → report`) instead of one envelope
    /// line, so one connection can interleave many in-flight jobs. Requires
    /// [`JobSpec::stream_id`]. Transport-only: like `deadline_ms`, never part
    /// of the cache key and stripped before journaling — the final report
    /// body is byte-identical to the non-streaming path.
    pub stream: Option<bool>,
    /// Client-chosen correlation id echoed in every frame of a streamed
    /// job. Scoped to the connection: two ids may not be in flight on the
    /// same connection at once. Only valid together with `stream: true`.
    pub stream_id: Option<u64>,
}

impl JobSpec {
    /// A default-configured job for a bundled benchmark circuit.
    #[must_use]
    pub fn bundled(name: impl Into<String>) -> Self {
        JobSpec::new(CircuitSource::Bundled(name.into()))
    }

    /// A default-configured job for an inline `.apls` circuit.
    #[must_use]
    pub fn inline(text: impl Into<String>) -> Self {
        JobSpec::new(CircuitSource::Inline(text.into()))
    }

    fn new(circuit: CircuitSource) -> Self {
        JobSpec {
            circuit,
            seed: None,
            restarts: None,
            engines: None,
            fast: None,
            wirelength_weight: None,
            hier_anneal_threshold: None,
            plateau: None,
            threads: None,
            deadline_ms: None,
            stream: None,
            stream_id: None,
        }
    }

    /// Pins the root seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the restarts per stochastic engine (builder style).
    #[must_use]
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = Some(restarts);
        self
    }

    /// Restricts the racing engines (builder style).
    #[must_use]
    pub fn with_engines(mut self, engines: impl Into<Vec<PortfolioEngine>>) -> Self {
        self.engines = Some(engines.into());
        self
    }

    /// Selects the short smoke schedule (builder style).
    #[must_use]
    pub fn with_fast(mut self, fast: bool) -> Self {
        self.fast = Some(fast);
        self
    }

    /// Sets the per-job deadline in milliseconds (builder style).
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Requests a streamed response correlated by `id` (builder style).
    #[must_use]
    pub fn with_stream(mut self, id: u64) -> Self {
        self.stream = Some(true);
        self.stream_id = Some(id);
        self
    }

    /// Encodes the request as one JSON line (without trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{\"op\":\"place\"");
        match &self.circuit {
            CircuitSource::Bundled(name) => {
                out.push_str(&format!(",\"circuit\":{}", quote(name)));
            }
            CircuitSource::Inline(text) => {
                out.push_str(&format!(",\"apls\":{}", quote(text)));
            }
        }
        if let Some(seed) = self.seed {
            out.push_str(&format!(",\"seed\":{seed}"));
        }
        if let Some(restarts) = self.restarts {
            out.push_str(&format!(",\"restarts\":{restarts}"));
        }
        if let Some(engines) = &self.engines {
            let names: Vec<String> = engines.iter().map(|e| quote(e.name())).collect();
            out.push_str(&format!(",\"engines\":[{}]", names.join(",")));
        }
        if let Some(fast) = self.fast {
            out.push_str(&format!(",\"fast\":{fast}"));
        }
        if let Some(w) = self.wirelength_weight {
            out.push_str(&format!(",\"wirelength_weight\":{w}"));
        }
        if let Some(t) = self.hier_anneal_threshold {
            out.push_str(&format!(",\"hier_anneal_threshold\":{t}"));
        }
        if let Some(p) = self.plateau {
            out.push_str(&format!(",\"plateau\":{p}"));
        }
        if let Some(t) = self.threads {
            out.push_str(&format!(",\"threads\":{t}"));
        }
        if let Some(d) = self.deadline_ms {
            out.push_str(&format!(",\"deadline_ms\":{d}"));
        }
        if let Some(s) = self.stream {
            out.push_str(&format!(",\"stream\":{s}"));
        }
        if let Some(id) = self.stream_id {
            out.push_str(&format!(",\"id\":{id}"));
        }
        out.push('}');
        out
    }

    /// Decodes a `place` request object (the server side of
    /// [`JobSpec::to_json_line`]).
    ///
    /// # Errors
    ///
    /// Returns a message when the request is structurally valid JSON but not
    /// a valid job: missing/conflicting circuit source, out-of-range or
    /// wrong-typed fields, unknown engine names, duplicate engines.
    pub fn from_json(json: &Json) -> Result<JobSpec, String> {
        // strict field set: a typo'd option must error, not silently run the
        // job with defaults
        const KNOWN: [&str; 14] = [
            "op",
            "circuit",
            "apls",
            "seed",
            "restarts",
            "engines",
            "fast",
            "wirelength_weight",
            "hier_anneal_threshold",
            "plateau",
            "threads",
            "deadline_ms",
            "stream",
            "id",
        ];
        if let Json::Obj(fields) = json {
            for (key, _) in fields {
                if !KNOWN.contains(&key.as_str()) {
                    return Err(format!(
                        "unknown request field '{key}' (known: {})",
                        KNOWN.join(", ")
                    ));
                }
            }
        }
        let circuit = match (json.get("circuit"), json.get("apls")) {
            (Some(_), Some(_)) => {
                return Err("request has both 'circuit' and 'apls'; pick one".to_string())
            }
            (Some(name), None) => CircuitSource::Bundled(
                name.as_str().ok_or("'circuit' must be a string")?.to_string(),
            ),
            (None, Some(text)) => {
                CircuitSource::Inline(text.as_str().ok_or("'apls' must be a string")?.to_string())
            }
            (None, None) => {
                return Err(
                    "request needs a circuit: 'circuit' (bundled name) or 'apls' (inline text)"
                        .to_string(),
                )
            }
        };
        let mut spec = JobSpec::new(circuit);
        if let Some(v) = json.get("seed") {
            spec.seed = Some(v.as_u64().ok_or("'seed' must be an unsigned 64-bit integer")?);
        }
        if let Some(v) = json.get("restarts") {
            let restarts = v.as_usize().ok_or("'restarts' must be a positive integer")?;
            if restarts == 0 {
                return Err("'restarts' must be at least 1".to_string());
            }
            spec.restarts = Some(restarts);
        }
        if let Some(v) = json.get("engines") {
            let items = v.as_arr().ok_or("'engines' must be an array of engine names")?;
            let mut engines = Vec::with_capacity(items.len());
            for item in items {
                let name = item.as_str().ok_or("'engines' entries must be strings")?;
                let engine = PortfolioEngine::from_name(name).ok_or_else(|| {
                    format!(
                        "unknown engine '{name}' (seqpair, hbtree, deterministic, hier, tempering)"
                    )
                })?;
                if engines.contains(&engine) {
                    return Err(format!("duplicate engine '{name}'"));
                }
                engines.push(engine);
            }
            if engines.is_empty() {
                return Err("'engines' must name at least one engine".to_string());
            }
            spec.engines = Some(engines);
        }
        if let Some(v) = json.get("fast") {
            spec.fast = Some(v.as_bool().ok_or("'fast' must be a boolean")?);
        }
        if let Some(v) = json.get("wirelength_weight") {
            let w = v.as_f64().ok_or("'wirelength_weight' must be a number")?;
            if !w.is_finite() || w < 0.0 {
                return Err("'wirelength_weight' must be finite and non-negative".to_string());
            }
            spec.wirelength_weight = Some(w);
        }
        if let Some(v) = json.get("hier_anneal_threshold") {
            let t = v.as_usize().ok_or("'hier_anneal_threshold' must be a positive integer")?;
            if t == 0 {
                return Err("'hier_anneal_threshold' must be at least 1".to_string());
            }
            spec.hier_anneal_threshold = Some(t);
        }
        if let Some(v) = json.get("plateau") {
            let p = v.as_usize().ok_or("'plateau' must be a positive integer")?;
            if p == 0 {
                return Err("'plateau' must be at least 1".to_string());
            }
            spec.plateau = Some(p);
        }
        if let Some(v) = json.get("threads") {
            spec.threads = Some(v.as_usize().ok_or("'threads' must be an integer")?);
        }
        if let Some(v) = json.get("deadline_ms") {
            let d = v.as_u64().ok_or("'deadline_ms' must be an unsigned integer")?;
            if d == 0 {
                return Err("'deadline_ms' must be at least 1".to_string());
            }
            spec.deadline_ms = Some(d);
        }
        if let Some(v) = json.get("stream") {
            spec.stream = Some(v.as_bool().ok_or("'stream' must be a boolean")?);
        }
        if let Some(v) = json.get("id") {
            spec.stream_id = Some(v.as_u64().ok_or("'id' must be an unsigned 64-bit integer")?);
        }
        match (spec.stream, spec.stream_id) {
            (Some(true), None) => {
                return Err("'stream':true needs a client-chosen 'id' to tag frames".to_string())
            }
            (None | Some(false), Some(_)) => {
                return Err("'id' is only valid with 'stream':true".to_string())
            }
            _ => {}
        }
        Ok(spec)
    }

    /// Resolves the spec into a full portfolio configuration rooted at
    /// `seed`. Defaults match [`PortfolioConfig::default`] except `threads`,
    /// which defaults to 1: job-level parallelism belongs to the service's
    /// worker pool, not to rayon inside one job.
    #[must_use]
    pub fn resolved_config(&self, seed: u64) -> PortfolioConfig {
        let mut config = PortfolioConfig::new(seed).with_threads(self.threads.unwrap_or(1));
        if let Some(restarts) = self.restarts {
            config = config.with_restarts(restarts);
        }
        if let Some(engines) = &self.engines {
            config = config.with_engines(engines.clone());
        }
        if let Some(fast) = self.fast {
            config = config.with_fast_schedule(fast);
        }
        if let Some(w) = self.wirelength_weight {
            config = config.with_wirelength_weight(w);
        }
        if let Some(t) = self.hier_anneal_threshold {
            config = config.with_hier_anneal_threshold(t);
        }
        if let Some(p) = self.plateau {
            config = config.with_early_stop(EarlyStop::after(p));
        }
        config
    }

    /// Canonical string of every *result-relevant* configuration field.
    ///
    /// Built over the resolved configuration, so explicit defaults and
    /// omitted fields produce identical strings. `threads` and `deadline_ms`
    /// are deliberately excluded — thread count and time budget never change
    /// a *completed* report — and the seed is a separate cache-key
    /// component. The service uses this string (with
    /// the canonical circuit text and the seed) as its cache key, comparing
    /// content rather than hashes so collisions cannot cross-serve reports.
    #[must_use]
    pub fn config_canonical(&self) -> String {
        let config = self.resolved_config(0);
        let engines: Vec<&str> = config.engines.iter().map(|e| e.name()).collect();
        format!(
            "restarts={};engines={};fast={};ww={:016x};hat={};plateau={}",
            config.restarts,
            engines.join(","),
            config.fast_schedule,
            config.wirelength_weight.to_bits(),
            config.hier_anneal_threshold,
            config.early_stop.map_or_else(|| "none".to_string(), |e| e.window.to_string()),
        )
    }

    /// [`canonical_hash`] of [`JobSpec::config_canonical`] — a compact
    /// summary for logs and tests (the cache itself keys on the full
    /// string).
    #[must_use]
    pub fn config_fingerprint(&self) -> u64 {
        canonical_hash(&self.config_canonical())
    }
}

/// A decoded `place` response envelope.
#[derive(Debug, Clone)]
pub struct PlaceResponse {
    /// Job id assigned by the service (arrival order), when the job was
    /// accepted.
    pub id: Option<u64>,
    /// `"ok"`, `"retry"`, `"timeout"` or `"error"`.
    pub status: String,
    /// Machine-readable error category (`"request_too_large"`,
    /// `"internal"`, `"deadline"`, `"bad_request"`, `"unavailable"`), when
    /// the service attached one.
    pub kind: Option<String>,
    /// How many attempts [`crate::ServiceClient::place_with_retry`] spent to
    /// obtain this response. Always 1 for a plain decode — the field is
    /// client-side bookkeeping, not part of the wire envelope.
    pub attempts: u32,
    /// Circuit name, echoed back.
    pub circuit: Option<String>,
    /// The root seed the job ran with (pinned or derived).
    pub seed: Option<u64>,
    /// Whether the report came from the result cache.
    pub cache_hit: bool,
    /// Time spent queued, in milliseconds.
    pub queue_ms: Option<f64>,
    /// Time spent solving (or fetching from cache), in milliseconds.
    pub solve_ms: Option<f64>,
    /// Total request latency observed by the service, in milliseconds.
    pub total_ms: Option<f64>,
    /// The deterministic portfolio report JSON, verbatim.
    pub report: Option<String>,
    /// Error message for `"error"` / `"retry"` responses.
    pub error: Option<String>,
}

impl PlaceResponse {
    /// Decodes one response line.
    ///
    /// # Errors
    ///
    /// Returns a message when the line is not a JSON object.
    pub fn from_json_line(line: &str) -> Result<PlaceResponse, String> {
        let json = Json::parse(line)?;
        if !matches!(json, Json::Obj(_)) {
            return Err("response is not a JSON object".to_string());
        }
        Ok(PlaceResponse {
            id: json.get("id").and_then(Json::as_u64),
            status: json.get("status").and_then(Json::as_str).unwrap_or("error").to_string(),
            kind: json.get("kind").and_then(Json::as_str).map(str::to_string),
            attempts: 1,
            circuit: json.get("circuit").and_then(Json::as_str).map(str::to_string),
            seed: json.get("seed").and_then(Json::as_u64),
            cache_hit: json.get("cache_hit").and_then(Json::as_bool).unwrap_or(false),
            queue_ms: json.get("queue_ms").and_then(Json::as_f64),
            solve_ms: json.get("solve_ms").and_then(Json::as_f64),
            total_ms: json.get("total_ms").and_then(Json::as_f64),
            report: json.get("report").and_then(Json::as_str).map(str::to_string),
            error: json.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// `true` for a successful placement response.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// `true` when the service asked the client to retry (queue full).
    #[must_use]
    pub fn is_retry(&self) -> bool {
        self.status == "retry"
    }

    /// `true` when the job expired its deadline before completing.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        self.status == "timeout"
    }
}

/// One decoded frame of a streamed `place` response.
///
/// A streamed job answers with tagged single-line frames in the fixed order
/// `accepted → queued → progress* → report`; a job the service could not
/// accept (queue full, bad request, duplicate id) skips straight to a
/// `report` frame carrying the error envelope. Frames of concurrent jobs on
/// one connection interleave only at line granularity — never mid-line.
#[derive(Debug, Clone)]
pub enum StreamFrame {
    /// The job was admitted: the service assigned `job` (the arrival-order
    /// index non-streamed envelopes call `id`) and resolved the seed.
    Accepted {
        /// Client-chosen correlation id.
        id: u64,
        /// Server-assigned arrival-order job index.
        job: u64,
        /// Circuit name, echoed back.
        circuit: String,
        /// The root seed the job will run with (pinned or derived).
        seed: u64,
    },
    /// The job entered the bounded queue (`depth` jobs were queued after the
    /// insert; a cache hit reports depth 0 — it never consumes a slot).
    Queued {
        /// Client-chosen correlation id.
        id: u64,
        /// Queue depth right after the insert.
        depth: u64,
    },
    /// One restart of the portfolio plan completed.
    Progress {
        /// Client-chosen correlation id.
        id: u64,
        /// Engine that ran the restart.
        engine: String,
        /// Restart number within that engine.
        restart: u64,
        /// Restarts completed so far (1-based, plan order).
        completed: u64,
        /// Planned total restarts.
        total: u64,
        /// The restart's placement cost.
        cost: f64,
    },
    /// The final envelope; `response.report` is byte-identical to the
    /// non-streaming path for the same `(circuit, config, seed)`.
    Report {
        /// Client-chosen correlation id.
        id: u64,
        /// The decoded terminal envelope ([`PlaceResponse::id`] carries the
        /// server job index from the frame's `job` field).
        response: Box<PlaceResponse>,
    },
}

impl StreamFrame {
    /// Decodes one frame line.
    ///
    /// # Errors
    ///
    /// Returns a message when the line is not a JSON object, is missing the
    /// `frame`/`id` tags, or names an unknown frame type. A plain
    /// (non-frame) response line is an error too — callers that multiplex
    /// should only feed lines from streaming connections here.
    pub fn from_json_line(line: &str) -> Result<StreamFrame, String> {
        let json = Json::parse(line)?;
        let frame = json
            .get("frame")
            .and_then(Json::as_str)
            .ok_or("not a stream frame: no 'frame' tag")?
            .to_string();
        let id = json.get("id").and_then(Json::as_u64).ok_or("frame has no 'id'")?;
        match frame.as_str() {
            "accepted" => Ok(StreamFrame::Accepted {
                id,
                job: json.get("job").and_then(Json::as_u64).ok_or("accepted frame has no 'job'")?,
                circuit: json.get("circuit").and_then(Json::as_str).unwrap_or_default().to_string(),
                seed: json
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or("accepted frame has no 'seed'")?,
            }),
            "queued" => Ok(StreamFrame::Queued {
                id,
                depth: json.get("depth").and_then(Json::as_u64).unwrap_or(0),
            }),
            "progress" => Ok(StreamFrame::Progress {
                id,
                engine: json.get("engine").and_then(Json::as_str).unwrap_or_default().to_string(),
                restart: json.get("restart").and_then(Json::as_u64).unwrap_or(0),
                completed: json.get("completed").and_then(Json::as_u64).unwrap_or(0),
                total: json.get("total").and_then(Json::as_u64).unwrap_or(0),
                cost: json.get("cost").and_then(Json::as_f64).unwrap_or(f64::NAN),
            }),
            "report" => {
                let mut response = PlaceResponse::from_json_line(line)?;
                // in a report frame, `id` is the client correlation id and
                // `job` the server index that plain envelopes call `id`
                response.id = json.get("job").and_then(Json::as_u64);
                Ok(StreamFrame::Report { id, response: Box::new(response) })
            }
            other => Err(format!("unknown frame type '{other}'")),
        }
    }

    /// The client correlation id carried by every frame.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            StreamFrame::Accepted { id, .. }
            | StreamFrame::Queued { id, .. }
            | StreamFrame::Progress { id, .. }
            | StreamFrame::Report { id, .. } => *id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let spec = JobSpec::bundled("miller_v2")
            .with_seed(0xDEAD_BEEF_DEAD_BEEF)
            .with_restarts(4)
            .with_engines([PortfolioEngine::SequencePair, PortfolioEngine::Hier])
            .with_fast(true);
        let line = spec.to_json_line();
        let json = Json::parse(&line).expect("encodes valid JSON");
        assert_eq!(json.get("op").and_then(Json::as_str), Some("place"));
        let decoded = JobSpec::from_json(&json).expect("decodes");
        assert_eq!(decoded, spec);
    }

    #[test]
    fn inline_circuits_survive_quoting() {
        let spec = JobSpec::inline("apls 1\ncircuit \"x\"\n");
        let json = Json::parse(&spec.to_json_line()).unwrap();
        let decoded = JobSpec::from_json(&json).unwrap();
        assert_eq!(decoded.circuit, CircuitSource::Inline("apls 1\ncircuit \"x\"\n".to_string()));
    }

    #[test]
    fn bad_requests_are_rejected_with_messages() {
        for (line, needle) in [
            (r#"{"op":"place"}"#, "needs a circuit"),
            (r#"{"op":"place","circuit":"x","apls":"y"}"#, "pick one"),
            (r#"{"op":"place","circuit":"x","restarts":0}"#, "at least 1"),
            (r#"{"op":"place","circuit":"x","engines":["warp"]}"#, "unknown engine"),
            (r#"{"op":"place","circuit":"x","engines":["hier","hier"]}"#, "duplicate engine"),
            (r#"{"op":"place","circuit":"x","wirelength_weight":-1}"#, "non-negative"),
            (r#"{"op":"place","circuit":"x","seed":"abc"}"#, "'seed'"),
            // typo'd field names must not silently fall back to defaults
            (r#"{"op":"place","circuit":"x","restart":4}"#, "unknown request field 'restart'"),
            (r#"{"op":"place","circuit":"x","Seed":7}"#, "unknown request field 'Seed'"),
        ] {
            let err = JobSpec::from_json(&Json::parse(line).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn fingerprint_ignores_threads_and_matches_explicit_defaults() {
        let base = JobSpec::bundled("miller_v2");
        let mut threaded = base.clone();
        threaded.threads = Some(8);
        assert_eq!(base.config_fingerprint(), threaded.config_fingerprint());

        let mut explicit = base.clone();
        explicit.restarts = Some(PortfolioConfig::default().restarts);
        assert_eq!(base.config_fingerprint(), explicit.config_fingerprint());

        let different = base.clone().with_restarts(3);
        assert_ne!(base.config_fingerprint(), different.config_fingerprint());
    }

    #[test]
    fn deadline_round_trips_but_never_touches_the_cache_key() {
        let base = JobSpec::bundled("miller_v2").with_seed(7);
        let deadlined = base.clone().with_deadline_ms(250);
        let line = deadlined.to_json_line();
        let decoded = JobSpec::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(decoded.deadline_ms, Some(250));
        assert_eq!(decoded, deadlined);
        // a deadline changes when a job may be cut, never what it computes
        assert_eq!(base.config_fingerprint(), deadlined.config_fingerprint());

        let err = JobSpec::from_json(
            &Json::parse(r#"{"op":"place","circuit":"x","deadline_ms":0}"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn stream_round_trips_validates_and_never_touches_the_cache_key() {
        let base = JobSpec::bundled("miller_v2").with_seed(7);
        let streamed = base.clone().with_stream(17);
        let line = streamed.to_json_line();
        let decoded = JobSpec::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(decoded.stream, Some(true));
        assert_eq!(decoded.stream_id, Some(17));
        assert_eq!(decoded, streamed);
        // streaming changes how the answer is delivered, never what it is
        assert_eq!(base.config_fingerprint(), streamed.config_fingerprint());
        assert_eq!(base.config_canonical(), streamed.config_canonical());

        for (line, needle) in [
            (r#"{"op":"place","circuit":"x","stream":true}"#, "needs a client-chosen 'id'"),
            (r#"{"op":"place","circuit":"x","id":3}"#, "only valid with 'stream':true"),
            (r#"{"op":"place","circuit":"x","stream":false,"id":3}"#, "only valid with"),
            (r#"{"op":"place","circuit":"x","stream":1,"id":3}"#, "'stream' must be a boolean"),
            (r#"{"op":"place","circuit":"x","stream":true,"id":-1}"#, "'id'"),
        ] {
            let err = JobSpec::from_json(&Json::parse(line).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn stream_frames_decode_in_grammar_order() {
        let frames = [
            r#"{"frame":"accepted","id":17,"job":4,"circuit":"miller_v2","seed":9}"#,
            r#"{"frame":"queued","id":17,"depth":2}"#,
            r#"{"frame":"progress","id":17,"engine":"seqpair","restart":0,"completed":1,"total":8,"cost":123.5}"#,
            r#"{"frame":"report","id":17,"job":4,"status":"ok","circuit":"miller_v2","seed":9,"cache_hit":false,"queue_ms":0.100,"solve_ms":5.000,"total_ms":5.100,"report":"{}"}"#,
        ];
        match StreamFrame::from_json_line(frames[0]).unwrap() {
            StreamFrame::Accepted { id, job, circuit, seed } => {
                assert_eq!((id, job, circuit.as_str(), seed), (17, 4, "miller_v2", 9));
            }
            other => panic!("{other:?}"),
        }
        match StreamFrame::from_json_line(frames[1]).unwrap() {
            StreamFrame::Queued { id, depth } => assert_eq!((id, depth), (17, 2)),
            other => panic!("{other:?}"),
        }
        match StreamFrame::from_json_line(frames[2]).unwrap() {
            StreamFrame::Progress { id, engine, restart, completed, total, cost } => {
                assert_eq!((id, engine.as_str(), restart), (17, "seqpair", 0));
                assert_eq!((completed, total), (1, 8));
                assert!((cost - 123.5).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
        match StreamFrame::from_json_line(frames[3]).unwrap() {
            StreamFrame::Report { id, response } => {
                assert_eq!(id, 17);
                assert!(response.is_ok());
                assert_eq!(response.id, Some(4), "report frames map 'job' to the envelope id");
                assert_eq!(response.report.as_deref(), Some("{}"));
            }
            other => panic!("{other:?}"),
        }
        for frame in &frames {
            let decoded = StreamFrame::from_json_line(frame).unwrap();
            assert_eq!(decoded.id(), 17);
        }

        // a plain envelope is not a frame, and unknown frame types error
        assert!(StreamFrame::from_json_line(r#"{"status":"ok"}"#)
            .unwrap_err()
            .contains("no 'frame' tag"));
        assert!(StreamFrame::from_json_line(r#"{"frame":"surprise","id":1}"#)
            .unwrap_err()
            .contains("unknown frame type"));
    }

    #[test]
    fn timeout_and_kind_decode() {
        let timeout = PlaceResponse::from_json_line(
            r#"{"id":4,"status":"timeout","kind":"deadline","error":"deadline exceeded"}"#,
        )
        .unwrap();
        assert!(timeout.is_timeout() && !timeout.is_ok());
        assert_eq!(timeout.kind.as_deref(), Some("deadline"));
        assert_eq!(timeout.attempts, 1);

        let internal = PlaceResponse::from_json_line(
            r#"{"status":"error","kind":"internal","error":"worker panicked"}"#,
        )
        .unwrap();
        assert_eq!(internal.kind.as_deref(), Some("internal"));
    }

    #[test]
    fn response_envelope_decodes() {
        let line = r#"{"id":3,"status":"ok","circuit":"miller_v2","seed":7,"cache_hit":true,"queue_ms":0.5,"solve_ms":12.0,"total_ms":12.5,"report":"{\n}\n"}"#;
        let response = PlaceResponse::from_json_line(line).unwrap();
        assert!(response.is_ok());
        assert!(response.cache_hit);
        assert_eq!(response.id, Some(3));
        assert_eq!(response.report.as_deref(), Some("{\n}\n"));

        let retry =
            PlaceResponse::from_json_line(r#"{"status":"retry","error":"queue full"}"#).unwrap();
        assert!(retry.is_retry());
    }
}
