//! Poison-recovering lock acquisition.
//!
//! `std::sync::Mutex` poisons itself when a holder panics, and every later
//! `lock().expect(..)` then panics too — one crashed worker cascades into
//! whole-service death. All the state the daemon guards this way (the LRU
//! cache, the enqueue slot, the queue receiver, the journal file) stays
//! structurally valid across a panic: each critical section either completes
//! its mutation or leaves a value that is merely stale, never torn. So the
//! right recovery is to take the poisoned guard and keep going, counting the
//! event so `stats` can report that a panic happened.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// How many poisoned locks have been recovered process-wide (reported by the
/// daemon's `stats` command; a non-zero value means a worker panicked while
/// holding service state and the service kept going).
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Locks `mutex`, recovering (and counting) a poisoned guard instead of
/// propagating the panic of whoever poisoned it.
pub fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        }
    }
}

/// Lifetime count of poisoned-lock recoveries in this process.
#[must_use]
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_a_poisoned_lock_and_counts_it() {
        let mutex = Arc::new(Mutex::new(7u64));
        let before = poison_recoveries();
        let poisoner = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(mutex.lock().is_err(), "lock is poisoned");
        assert_eq!(*lock_or_recover(&mutex), 7, "value survives the poisoning");
        assert!(poison_recoveries() > before);
        // the guard works normally after recovery
        *lock_or_recover(&mutex) = 8;
        assert_eq!(*lock_or_recover(&mutex), 8);
    }
}
