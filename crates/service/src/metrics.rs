//! Service-level metrics: counters, gauges and latency histograms behind
//! the daemon's enriched `stats` command.
//!
//! Everything lives in one [`MetricsRegistry`] so the `stats` response can
//! embed a single deterministic-order snapshot. The handles below are
//! pre-resolved at service start so the hot request path never takes the
//! registry lock.

use apls_telemetry::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_MS_BOUNDS};

/// Pre-resolved metric handles of one service instance.
#[derive(Debug)]
pub(crate) struct ServiceMetrics {
    /// The backing registry (snapshot source of the `stats` response).
    pub registry: MetricsRegistry,
    /// Requests parsed off a connection, by any op.
    pub requests_total: Counter,
    /// Requests refused with `retry` because the job queue was full.
    pub retries_total: Counter,
    /// Requests answered with an error envelope.
    pub errors_total: Counter,
    /// Jobs currently waiting in the bounded queue.
    pub queue_depth: Gauge,
    /// Jobs currently being solved by a worker.
    pub in_flight: Gauge,
    /// Live client connections.
    pub connections_active: Gauge,
    /// Worker panics caught and converted to `internal` error responses.
    pub worker_panics_total: Counter,
    /// Worker threads respawned after a panic escaped the job boundary.
    pub worker_respawns_total: Counter,
    /// Jobs that expired their deadline and were answered `timeout`.
    pub timeouts_total: Counter,
    /// Journal records durably appended.
    pub journal_records_total: Counter,
    /// Journal appends that failed (service degraded to non-durable).
    pub journal_write_failures_total: Counter,
    /// Completed pre-crash reports restored into the cache at startup.
    pub jobs_recovered_total: Counter,
    /// Incomplete journaled jobs replayed through the workers at startup.
    pub jobs_replayed_total: Counter,
    /// Accepted connections dropped by fault injection.
    pub connections_dropped_total: Counter,
    /// Fds currently registered in the readiness poller (event-loop mode:
    /// listener + wake pipe + one per connection).
    pub poller_registered_fds: Gauge,
    /// Times the reactor (or the legacy acceptor) woke from its readiness
    /// poll with at least one event.
    pub readiness_wakeups_total: Counter,
    /// Streaming frames written (accepted/queued/progress/report).
    pub frames_sent_total: Counter,
    /// Live handler threads in legacy-threads mode (reaped opportunistically
    /// on accept; the regression bound for 10k short-lived connections).
    pub handler_threads: Gauge,
    /// Reactor iterations that exceeded the stall-watchdog threshold.
    pub reactor_stalls_total: Counter,
    /// Largest outstanding per-connection write buffer seen in the most
    /// recent reactor flush pass (bytes).
    pub write_buffer_bytes: Gauge,
    /// High-water mark of [`Self::write_buffer_bytes`] over the process
    /// lifetime.
    pub write_buffer_high_water: Gauge,
    /// Seconds since the service started (refreshed at snapshot/scrape time).
    pub uptime_seconds: Gauge,
    /// Flight-recorder dumps written to disk (panic, fault trip, or `dump`).
    pub flight_dumps_total: Counter,
    /// Time from request accept (line parsed) to the admission decision —
    /// index/seed/cache/journal work under the enqueue lock (ms).
    pub admit_ms: Histogram,
    /// Time a job spent queued before a worker picked it up (ms).
    pub queue_ms: Histogram,
    /// Time a worker spent solving (or fetching from cache) a job (ms).
    pub solve_ms: Histogram,
    /// Time from a response/frame being queued to its bytes reaching the
    /// socket (ms): the write-stall component of job latency.
    pub flush_ms: Histogram,
    /// End-to-end `place` latency as the handler saw it (ms).
    pub total_ms: Histogram,
    /// Time the reactor spent blocked in its readiness poll (ms).
    pub poll_wait_ms: Histogram,
    /// Time one reactor iteration spent processing after the poll
    /// returned (ms).
    pub loop_ms: Histogram,
}

impl ServiceMetrics {
    pub(crate) fn new() -> ServiceMetrics {
        let registry = MetricsRegistry::new();
        ServiceMetrics {
            requests_total: registry.counter("requests_total"),
            retries_total: registry.counter("retries_total"),
            errors_total: registry.counter("errors_total"),
            queue_depth: registry.gauge("queue_depth"),
            in_flight: registry.gauge("in_flight_jobs"),
            connections_active: registry.gauge("connections_active"),
            worker_panics_total: registry.counter("worker_panics_total"),
            worker_respawns_total: registry.counter("worker_respawns_total"),
            timeouts_total: registry.counter("timeouts_total"),
            journal_records_total: registry.counter("journal_records_total"),
            journal_write_failures_total: registry.counter("journal_write_failures_total"),
            jobs_recovered_total: registry.counter("jobs_recovered_total"),
            jobs_replayed_total: registry.counter("jobs_replayed_total"),
            connections_dropped_total: registry.counter("connections_dropped_total"),
            poller_registered_fds: registry.gauge("poller_registered_fds"),
            readiness_wakeups_total: registry.counter("readiness_wakeups_total"),
            frames_sent_total: registry.counter("frames_sent_total"),
            handler_threads: registry.gauge("handler_threads"),
            reactor_stalls_total: registry.counter("reactor_stalls_total"),
            write_buffer_bytes: registry.gauge("write_buffer_bytes"),
            write_buffer_high_water: registry.gauge("write_buffer_high_water_bytes"),
            uptime_seconds: registry.gauge("uptime_seconds"),
            flight_dumps_total: registry.counter("flight_dumps_total"),
            admit_ms: registry.histogram("admit_ms", LATENCY_MS_BOUNDS),
            queue_ms: registry.histogram("queue_ms", LATENCY_MS_BOUNDS),
            solve_ms: registry.histogram("solve_ms", LATENCY_MS_BOUNDS),
            flush_ms: registry.histogram("flush_ms", LATENCY_MS_BOUNDS),
            total_ms: registry.histogram("total_ms", LATENCY_MS_BOUNDS),
            poll_wait_ms: registry.histogram("poll_wait_ms", LATENCY_MS_BOUNDS),
            loop_ms: registry.histogram("loop_ms", LATENCY_MS_BOUNDS),
            registry,
        }
    }
}
