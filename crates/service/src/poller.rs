//! Readiness polling behind a tiny [`Poller`] trait — the only unsafe code
//! in the service crate.
//!
//! The event-driven reactor ([`crate::PlacementService`] in its default
//! event-loop mode) needs "tell me which fds are readable/writable" without
//! pulling in an async runtime or any dependency. `std` deliberately does not
//! expose this, so this module binds the two relevant POSIX syscalls
//! directly:
//!
//! * [`EpollPoller`] — Linux `epoll_create1`/`epoll_ctl`/`epoll_wait`,
//!   level-triggered, O(ready) per wakeup. The production path.
//! * [`PollPoller`] — portable POSIX `poll(2)`, O(registered) per wakeup.
//!   Compiled (and unit-tested) on every Unix, so the Linux-only epoll
//!   bindings always have a living fallback.
//! * non-Unix — [`new_poller`] returns `Unsupported`; the service falls back
//!   to the legacy thread-per-connection mode, which is pure `std`.
//!
//! [`WakePipe`] is the classic self-pipe: a nonblocking pipe whose read end
//! is registered in the poller, so another thread (a worker finishing a job,
//! [`crate::PlacementService::shutdown`]) can interrupt a blocked
//! `poll`/`epoll_wait` by writing one byte — no sleep ticks, no throwaway
//! TCP connects.
//!
//! All bindings are `extern "C"` declarations of syscall wrappers that every
//! libc this crate can build against exports; no new dependency is added.

#![allow(unsafe_code)]

use std::io;
use std::time::Duration;

#[cfg(unix)]
pub(crate) use imp::{new_poller, WakePipe, WakeSender};

/// Readiness interest for one registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Interest {
    /// Wake when the fd becomes readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd becomes writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub(crate) const READ: Interest = Interest { read: true, write: false };
}

/// One readiness event out of [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEvent {
    /// The token the fd was registered under.
    pub token: usize,
    /// The fd is readable (includes EOF: a read will not block).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// Error/hangup condition (delivered regardless of interest).
    pub hangup: bool,
}

/// A minimal readiness selector: register fds under integer tokens, block
/// until one is ready.
///
/// Implementations are level-triggered: an event keeps firing while the
/// condition holds, so a handler that drains only part of a socket's data is
/// woken again. The reactor relies on this for its pause/resume backpressure
/// (deregistering read interest is the only thing that silences a readable
/// fd).
#[cfg(unix)]
pub(crate) trait Poller: Send {
    /// Starts watching `fd` under `token` with the given interest.
    fn register(
        &mut self,
        fd: std::os::unix::io::RawFd,
        token: usize,
        interest: Interest,
    ) -> io::Result<()>;
    /// Replaces the interest of an already-registered fd.
    fn reregister(
        &mut self,
        fd: std::os::unix::io::RawFd,
        token: usize,
        interest: Interest,
    ) -> io::Result<()>;
    /// Stops watching `fd`.
    fn deregister(&mut self, fd: std::os::unix::io::RawFd) -> io::Result<()>;
    /// Blocks until at least one fd is ready (or `timeout` expires), filling
    /// `events`. Returns the number of events. `None` blocks indefinitely.
    fn poll(&mut self, events: &mut Vec<PollEvent>, timeout: Option<Duration>)
        -> io::Result<usize>;
    /// Implementation name, surfaced in `stats` for observability.
    fn name(&self) -> &'static str;
}

/// Builds the platform poller.
///
/// # Errors
///
/// `Unsupported` on non-Unix targets (the caller falls back to
/// thread-per-connection serving).
#[cfg(not(unix))]
pub(crate) fn new_poller() -> io::Result<()> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "no readiness poller on this platform"))
}

#[cfg(unix)]
mod imp {
    use super::{Interest, PollEvent, Poller};
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::RawFd;
    use std::sync::Arc;
    use std::time::Duration;

    extern "C" {
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }

    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    const F_SETFD: c_int = 2;
    const FD_CLOEXEC: c_int = 1;
    // O_NONBLOCK is 0o4000 on Linux/x86 but differs on other Unixes
    // (e.g. 0x0004 on the BSDs); resolve it per target.
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: c_int = 0x0004;

    /// Converts a `-1` syscall return into the thread's errno as an
    /// [`io::Error`].
    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret == -1 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An owned raw fd, closed on drop.
    #[derive(Debug)]
    struct OwnedFd(RawFd);

    impl Drop for OwnedFd {
        fn drop(&mut self) {
            // SAFETY: the fd is owned by this struct and closed exactly once.
            unsafe {
                close(self.0);
            }
        }
    }

    /// The receiving half of the self-pipe: registered in the poller and
    /// drained on wakeup.
    #[derive(Debug)]
    pub(crate) struct WakePipe {
        rx: OwnedFd,
        tx: Arc<OwnedFd>,
    }

    /// The sending half of the self-pipe: cheap to clone, safe to use from
    /// any thread. Writing to a full pipe is fine — the reader is already
    /// guaranteed a wakeup.
    #[derive(Debug, Clone)]
    pub(crate) struct WakeSender(Arc<OwnedFd>);

    impl WakePipe {
        /// Creates a nonblocking close-on-exec pipe.
        ///
        /// # Errors
        ///
        /// Propagates `pipe(2)`/`fcntl(2)` failures (fd exhaustion).
        pub(crate) fn new() -> io::Result<WakePipe> {
            let mut fds: [c_int; 2] = [-1, -1];
            // SAFETY: fds points at two writable c_ints.
            cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
            let rx = OwnedFd(fds[0]);
            let tx = OwnedFd(fds[1]);
            for fd in [rx.0, tx.0] {
                // SAFETY: plain fcntl on fds this function owns.
                unsafe {
                    let flags = cvt(fcntl(fd, F_GETFL, 0))?;
                    cvt(fcntl(fd, F_SETFL, flags | O_NONBLOCK))?;
                    cvt(fcntl(fd, F_SETFD, FD_CLOEXEC))?;
                }
            }
            Ok(WakePipe { rx, tx: Arc::new(tx) })
        }

        /// The fd to register for read interest.
        pub(crate) fn fd(&self) -> RawFd {
            self.rx.0
        }

        /// A clonable waker for other threads.
        pub(crate) fn sender(&self) -> WakeSender {
            WakeSender(Arc::clone(&self.tx))
        }

        /// Consumes every pending wake byte (level-triggered pollers would
        /// otherwise spin on the readable pipe).
        pub(crate) fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: buf is a valid writable buffer of the given length.
                let n = unsafe { read(self.rx.0, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
                if n <= 0 {
                    break; // empty (EAGAIN) or closed — either way, drained
                }
            }
        }
    }

    impl WakeSender {
        /// Interrupts a blocked poll. Best-effort: a full pipe already
        /// guarantees a pending wakeup, so errors are ignored.
        pub(crate) fn wake(&self) {
            let byte = 1u8;
            // SAFETY: writes one byte from a valid buffer to an owned fd.
            unsafe {
                let _ = write(self.0 .0, std::ptr::addr_of!(byte).cast::<c_void>(), 1);
            }
        }
    }

    // ---------------------------------------------------------------- epoll

    #[cfg(target_os = "linux")]
    mod epoll {
        use super::{cvt, Interest, OwnedFd, PollEvent, Poller};
        use std::io;
        use std::os::raw::c_int;
        use std::os::unix::io::RawFd;
        use std::time::Duration;

        // x86-64 packs epoll_event to match the 32-bit layout; every other
        // Linux target uses natural alignment.
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        struct EpollEvent {
            events: u32,
            data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }

        const EPOLL_CLOEXEC: c_int = 0o2000000;
        const EPOLL_CTL_ADD: c_int = 1;
        const EPOLL_CTL_DEL: c_int = 2;
        const EPOLL_CTL_MOD: c_int = 3;
        const EPOLLIN: u32 = 0x001;
        const EPOLLOUT: u32 = 0x004;
        const EPOLLERR: u32 = 0x008;
        const EPOLLHUP: u32 = 0x010;
        const EPOLLRDHUP: u32 = 0x2000;

        fn mask(interest: Interest) -> u32 {
            let mut mask = EPOLLRDHUP;
            if interest.read {
                mask |= EPOLLIN;
            }
            if interest.write {
                mask |= EPOLLOUT;
            }
            mask
        }

        /// Level-triggered epoll selector (Linux).
        pub(crate) struct EpollPoller {
            epfd: OwnedFd,
            buf: Vec<EpollEvent>,
        }

        impl EpollPoller {
            pub(crate) fn new() -> io::Result<EpollPoller> {
                // SAFETY: plain syscall, no pointers.
                let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
                Ok(EpollPoller {
                    epfd: OwnedFd(epfd),
                    buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
                })
            }

            fn ctl(
                &self,
                op: c_int,
                fd: RawFd,
                token: usize,
                interest: Interest,
            ) -> io::Result<()> {
                let mut event = EpollEvent { events: mask(interest), data: token as u64 };
                // SAFETY: event is a valid EpollEvent for the duration of
                // the call; epfd and fd are live fds.
                cvt(unsafe { epoll_ctl(self.epfd.0, op, fd, &mut event) })?;
                Ok(())
            }
        }

        impl Poller for EpollPoller {
            fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
                self.ctl(EPOLL_CTL_ADD, fd, token, interest)
            }

            fn reregister(
                &mut self,
                fd: RawFd,
                token: usize,
                interest: Interest,
            ) -> io::Result<()> {
                self.ctl(EPOLL_CTL_MOD, fd, token, interest)
            }

            fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
                self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::default())
            }

            fn poll(
                &mut self,
                events: &mut Vec<PollEvent>,
                timeout: Option<Duration>,
            ) -> io::Result<usize> {
                events.clear();
                let timeout_ms: c_int = match timeout {
                    None => -1,
                    Some(t) => c_int::try_from(t.as_millis().min(i32::MAX as u128)).unwrap_or(0),
                };
                let n = loop {
                    // SAFETY: buf is a live array of maxevents EpollEvents.
                    let ret = unsafe {
                        epoll_wait(
                            self.epfd.0,
                            self.buf.as_mut_ptr(),
                            self.buf.len() as c_int,
                            timeout_ms,
                        )
                    };
                    match cvt(ret) {
                        Ok(n) => break n as usize,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    }
                };
                for raw in &self.buf[..n] {
                    let bits = raw.events;
                    events.push(PollEvent {
                        token: raw.data as usize,
                        readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                        writable: bits & EPOLLOUT != 0,
                        hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                    });
                }
                Ok(n)
            }

            fn name(&self) -> &'static str {
                "epoll"
            }
        }
    }

    // ---------------------------------------------------------- poll(2)

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    #[cfg(target_os = "linux")]
    type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    /// Portable `poll(2)` selector: O(registered fds) per wakeup, used where
    /// epoll is unavailable and as the always-compiled fallback.
    #[derive(Debug, Default)]
    pub(crate) struct PollPoller {
        /// Registered fds in insertion order: (fd, token, interest).
        entries: Vec<(RawFd, usize, Interest)>,
    }

    impl PollPoller {
        pub(crate) fn new() -> PollPoller {
            PollPoller::default()
        }

        fn position(&self, fd: RawFd) -> Option<usize> {
            self.entries.iter().position(|(f, _, _)| *f == fd)
        }
    }

    impl Poller for PollPoller {
        fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            if self.position(fd).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("fd {fd} is already registered"),
                ));
            }
            self.entries.push((fd, token, interest));
            Ok(())
        }

        fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let i = self.position(fd).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("fd {fd} is not registered"))
            })?;
            self.entries[i] = (fd, token, interest);
            Ok(())
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self.position(fd).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("fd {fd} is not registered"))
            })?;
            self.entries.remove(i);
            Ok(())
        }

        fn poll(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let mut fds: Vec<PollFd> = self
                .entries
                .iter()
                .map(|(fd, _, interest)| {
                    let mut mask: i16 = 0;
                    if interest.read {
                        mask |= POLLIN;
                    }
                    if interest.write {
                        mask |= POLLOUT;
                    }
                    PollFd { fd: *fd, events: mask, revents: 0 }
                })
                .collect();
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(t) => c_int::try_from(t.as_millis().min(i32::MAX as u128)).unwrap_or(0),
            };
            loop {
                // SAFETY: fds is a live array of nfds PollFds.
                let ret = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
                match cvt(ret) {
                    Ok(_) => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            for (slot, raw) in fds.iter().enumerate() {
                if raw.revents == 0 {
                    continue;
                }
                let token = self.entries[slot].1;
                events.push(PollEvent {
                    token,
                    readable: raw.revents & POLLIN != 0,
                    writable: raw.revents & POLLOUT != 0,
                    hangup: raw.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
            }
            Ok(events.len())
        }

        fn name(&self) -> &'static str {
            "poll"
        }
    }

    /// Builds the platform poller: epoll on Linux, `poll(2)` elsewhere.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure when the epoll fd cannot be
    /// created *and* no fallback applies (the Linux path silently falls back
    /// to `poll(2)` instead).
    pub(crate) fn new_poller() -> io::Result<Box<dyn Poller>> {
        #[cfg(target_os = "linux")]
        {
            match epoll::EpollPoller::new() {
                Ok(poller) => Ok(Box::new(poller)),
                Err(_) => Ok(Box::new(PollPoller::new())),
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Box::new(PollPoller::new()))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::io::{Read as _, Write as _};
        use std::net::{TcpListener, TcpStream};
        use std::os::unix::io::AsRawFd;

        fn pollers() -> Vec<Box<dyn Poller>> {
            let mut pollers: Vec<Box<dyn Poller>> = vec![Box::new(PollPoller::new())];
            #[cfg(target_os = "linux")]
            pollers.push(Box::new(super::epoll::EpollPoller::new().expect("epoll fd")));
            pollers
        }

        #[test]
        fn readable_sockets_fire_and_silence_follows_deregistration() {
            for mut poller in pollers() {
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                let (server, _) = listener.accept().unwrap();
                server.set_nonblocking(true).unwrap();
                poller.register(server.as_raw_fd(), 7, Interest::READ).unwrap();

                // nothing pending: a zero timeout returns no events
                let mut events = Vec::new();
                poller.poll(&mut events, Some(Duration::from_millis(0))).unwrap();
                assert!(events.is_empty(), "{}: {events:?}", poller.name());

                client.write_all(b"x").unwrap();
                client.flush().unwrap();
                poller.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
                assert_eq!(events.len(), 1, "{}", poller.name());
                assert_eq!(events[0].token, 7);
                assert!(events[0].readable);

                // level-triggered: unread data keeps firing
                poller.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
                assert!(events.iter().any(|e| e.token == 7 && e.readable), "{}", poller.name());

                poller.deregister(server.as_raw_fd()).unwrap();
                poller.poll(&mut events, Some(Duration::from_millis(0))).unwrap();
                assert!(events.is_empty(), "{}: deregistered fd still fires", poller.name());
            }
        }

        #[test]
        fn write_interest_and_reregistration() {
            for mut poller in pollers() {
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                let (server, _) = listener.accept().unwrap();
                server.set_nonblocking(true).unwrap();

                // an idle socket with an empty send buffer is writable
                poller
                    .register(server.as_raw_fd(), 3, Interest { read: false, write: true })
                    .unwrap();
                let mut events = Vec::new();
                poller.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
                assert!(events.iter().any(|e| e.token == 3 && e.writable), "{}", poller.name());

                // dropping write interest silences it
                poller.reregister(server.as_raw_fd(), 3, Interest::READ).unwrap();
                poller.poll(&mut events, Some(Duration::from_millis(0))).unwrap();
                assert!(events.is_empty(), "{}: {events:?}", poller.name());
            }
        }

        #[test]
        fn peer_eof_reads_as_readable() {
            for mut poller in pollers() {
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                let (mut server, _) = listener.accept().unwrap();
                server.set_nonblocking(true).unwrap();
                poller.register(server.as_raw_fd(), 9, Interest::READ).unwrap();
                drop(client);

                let mut events = Vec::new();
                poller.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
                let ev = events.iter().find(|e| e.token == 9).expect("event for the closed peer");
                assert!(ev.readable || ev.hangup, "{}: {ev:?}", poller.name());
                let mut buf = [0u8; 8];
                assert_eq!(server.read(&mut buf).unwrap(), 0, "EOF");
            }
        }

        #[test]
        fn wake_pipe_interrupts_a_blocked_poll_and_drains() {
            for mut poller in pollers() {
                let pipe = WakePipe::new().expect("pipe");
                poller.register(pipe.fd(), 1, Interest::READ).unwrap();
                let sender = pipe.sender();
                let waker = std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(50));
                    sender.wake();
                });
                let mut events = Vec::new();
                // no timeout: only the wake can unblock this
                poller.poll(&mut events, Some(Duration::from_secs(30))).unwrap();
                assert!(events.iter().any(|e| e.token == 1 && e.readable), "{}", poller.name());
                waker.join().unwrap();

                pipe.drain();
                poller.poll(&mut events, Some(Duration::from_millis(0))).unwrap();
                assert!(events.is_empty(), "{}: drained pipe still readable", poller.name());

                // many wakes coalesce into (at least) one readable event
                let sender = pipe.sender();
                for _ in 0..100 {
                    sender.wake();
                }
                poller.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
                assert!(events.iter().any(|e| e.token == 1 && e.readable), "{}", poller.name());
                pipe.drain();
            }
        }
    }
}
