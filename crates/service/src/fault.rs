//! Deterministic fault injection for the placement daemon.
//!
//! A [`FaultPlan`] names the exact points where the service misbehaves —
//! job indices whose solve panics or runs slow, journal record sequence
//! numbers whose write fails, accepted-connection sequence numbers that are
//! dropped on the floor. Every trigger is a deterministic counter the service
//! already maintains (job index, journal record number, connection number),
//! never wall-clock time or randomness, so a fault-injection test reproduces
//! the same degradation on every run.
//!
//! Plans are inert by default: the daemon only honours `serve --fault-plan`
//! when the `APLS_FAULT_INJECTION=1` environment guard is set (embedding
//! [`FaultPlan`] programmatically via `ServiceConfig` is always allowed —
//! that is what the test suite does).
//!
//! File format (JSON, one object):
//!
//! ```json
//! {
//!   "panic_jobs": [1],
//!   "slow_solves": [{"job": 2, "ms": 500}],
//!   "journal_fail_records": [3],
//!   "drop_connections": [0]
//! }
//! ```

use crate::json::Json;

/// One forced-slow solve: job `job` sleeps `ms` milliseconds before solving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowSolve {
    /// Job index (arrival order, the same index the envelope reports as `id`).
    pub job: u64,
    /// Injected extra latency in milliseconds.
    pub ms: u64,
}

/// A deterministic set of injected faults (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    panic_jobs: Vec<u64>,
    slow_solves: Vec<SlowSolve>,
    journal_fail_records: Vec<u64>,
    drop_connections: Vec<u64>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a worker panic when solving job `index` (builder style).
    #[must_use]
    pub fn with_panic_job(mut self, index: u64) -> FaultPlan {
        self.panic_jobs.push(index);
        self
    }

    /// Adds `ms` milliseconds of forced latency to job `index` (builder
    /// style).
    #[must_use]
    pub fn with_slow_solve(mut self, index: u64, ms: u64) -> FaultPlan {
        self.slow_solves.push(SlowSolve { job: index, ms });
        self
    }

    /// Fails the journal append of record sequence number `seq` (builder
    /// style).
    #[must_use]
    pub fn with_journal_fail(mut self, seq: u64) -> FaultPlan {
        self.journal_fail_records.push(seq);
        self
    }

    /// Drops accepted connection number `n` immediately (builder style).
    #[must_use]
    pub fn with_drop_connection(mut self, n: u64) -> FaultPlan {
        self.drop_connections.push(n);
        self
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.panic_jobs.is_empty()
            && self.slow_solves.is_empty()
            && self.journal_fail_records.is_empty()
            && self.drop_connections.is_empty()
    }

    /// Should the worker panic when solving job `index`?
    #[must_use]
    pub fn panic_on_job(&self, index: u64) -> bool {
        self.panic_jobs.contains(&index)
    }

    /// Forced extra solve latency for job `index`, if any.
    #[must_use]
    pub fn slow_solve_ms(&self, index: u64) -> Option<u64> {
        self.slow_solves.iter().find(|s| s.job == index).map(|s| s.ms)
    }

    /// Should journal record `seq` fail to append?
    #[must_use]
    pub fn fail_journal_record(&self, seq: u64) -> bool {
        self.journal_fail_records.contains(&seq)
    }

    /// Should accepted connection `n` be dropped on the floor?
    #[must_use]
    pub fn drop_connection(&self, n: u64) -> bool {
        self.drop_connections.contains(&n)
    }

    /// Parses a plan from its JSON text form.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, unknown fields (typos must not
    /// silently disable a fault) or wrong-typed entries.
    pub fn from_json_text(text: &str) -> Result<FaultPlan, String> {
        let json = Json::parse(text.trim()).map_err(|e| format!("invalid fault plan: {e}"))?;
        let Json::Obj(fields) = &json else {
            return Err("fault plan must be a JSON object".to_string());
        };
        const KNOWN: [&str; 4] =
            ["panic_jobs", "slow_solves", "journal_fail_records", "drop_connections"];
        for (key, _) in fields {
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!(
                    "unknown fault plan field '{key}' (known: {})",
                    KNOWN.join(", ")
                ));
            }
        }
        let mut plan = FaultPlan::new();
        plan.panic_jobs = index_list(&json, "panic_jobs")?;
        plan.journal_fail_records = index_list(&json, "journal_fail_records")?;
        plan.drop_connections = index_list(&json, "drop_connections")?;
        if let Some(v) = json.get("slow_solves") {
            let items = v.as_arr().ok_or("'slow_solves' must be an array of {job, ms} objects")?;
            for item in items {
                let job = item
                    .get("job")
                    .and_then(Json::as_u64)
                    .ok_or("'slow_solves' entries need an unsigned 'job' index")?;
                let ms = item
                    .get("ms")
                    .and_then(Json::as_u64)
                    .ok_or("'slow_solves' entries need unsigned 'ms' latency")?;
                plan.slow_solves.push(SlowSolve { job, ms });
            }
        }
        Ok(plan)
    }

    /// Loads a plan from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns a message for I/O and parse failures.
    pub fn load(path: &std::path::Path) -> Result<FaultPlan, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read fault plan {}: {e}", path.display()))?;
        FaultPlan::from_json_text(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn index_list(json: &Json, field: &str) -> Result<Vec<u64>, String> {
    match json.get(field) {
        None => Ok(Vec::new()),
        Some(v) => {
            let items = v.as_arr().ok_or(format!("'{field}' must be an array of indices"))?;
            items
                .iter()
                .map(|item| {
                    item.as_u64().ok_or(format!("'{field}' entries must be unsigned integers"))
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_plan() {
        let plan = FaultPlan::from_json_text(
            r#"{"panic_jobs":[1,4],"slow_solves":[{"job":2,"ms":500}],
                "journal_fail_records":[3],"drop_connections":[0]}"#,
        )
        .expect("parses");
        assert!(plan.panic_on_job(1) && plan.panic_on_job(4) && !plan.panic_on_job(2));
        assert_eq!(plan.slow_solve_ms(2), Some(500));
        assert_eq!(plan.slow_solve_ms(1), None);
        assert!(plan.fail_journal_record(3) && !plan.fail_journal_record(2));
        assert!(plan.drop_connection(0) && !plan.drop_connection(1));
        assert!(!plan.is_empty());
    }

    #[test]
    fn builder_matches_parsed_form() {
        let built = FaultPlan::new().with_panic_job(1).with_slow_solve(2, 500);
        let parsed =
            FaultPlan::from_json_text(r#"{"panic_jobs":[1],"slow_solves":[{"job":2,"ms":500}]}"#)
                .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn unknown_fields_and_bad_types_are_rejected() {
        for (text, needle) in [
            (r#"{"panic_job":[1]}"#, "unknown fault plan field"),
            (r#"{"panic_jobs":"1"}"#, "array of indices"),
            (r#"{"slow_solves":[{"job":2}]}"#, "'ms'"),
            (r#"[1,2]"#, "JSON object"),
            ("not json", "invalid fault plan"),
        ] {
            let err = FaultPlan::from_json_text(text).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::from_json_text("{}").unwrap().is_empty());
    }
}
