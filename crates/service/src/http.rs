//! The observability HTTP sidecar: a tiny std-only HTTP/1.1 listener
//! serving Prometheus text-format `/metrics`, liveness (`/healthz`) and
//! readiness (`/readyz`).
//!
//! Deliberately minimal — GET only, one request per connection,
//! `Connection: close` — because its sole clients are scrapers and load
//! balancers, and because the job protocol (JSON lines over TCP) must stay
//! the only stateful surface. The sidecar thread polls the shared shutdown
//! flag between accepts so `PlacementService::join` terminates it without a
//! dedicated wake channel.

use crate::server::Shared;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the sidecar sleeps between accept attempts; bounds both idle CPU
/// and shutdown latency.
const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// Largest request head the sidecar will buffer before answering 400.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Prometheus metric-name prefix for everything in the registry.
const METRIC_PREFIX: &str = "apls_";

/// Spawns the sidecar thread serving `listener` until shutdown.
pub(crate) fn spawn(listener: TcpListener, shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::spawn(move || serve(&listener, &shared))
}

fn serve(listener: &TcpListener, shared: &Arc<Shared>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => handle_request(stream, shared),
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_TICK),
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
}

/// Serves exactly one request on `stream`. All errors are swallowed: a
/// half-open scraper must never disturb the daemon.
fn handle_request(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let Some(path) = read_request_path(&mut stream) else {
        respond(&mut stream, 400, "text/plain; charset=utf-8", "bad request\n");
        return;
    };
    match path.as_str() {
        "/metrics" => {
            shared.refresh_uptime();
            let body = shared.metrics.registry.render_prometheus(METRIC_PREFIX);
            respond(&mut stream, 200, "text/plain; version=0.0.4; charset=utf-8", &body);
        }
        "/healthz" => respond(&mut stream, 200, "text/plain; charset=utf-8", "ok\n"),
        "/readyz" => {
            let (ready, reason) = shared.is_ready();
            let status = if ready { 200 } else { 503 };
            respond(&mut stream, status, "text/plain; charset=utf-8", &format!("{reason}\n"));
        }
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Reads the request head and extracts the path of a `GET <path> HTTP/1.x`
/// request line. Returns `None` for anything else.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the end of the request line; scrapers send tiny heads, so a
    // couple of reads suffice. Stop early once a full line is buffered.
    while !head.contains(&b'\n') {
        if head.len() > MAX_HEAD_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&head);
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    if method != "GET" || !version.starts_with("HTTP/1.") {
        return None;
    }
    // Scrapers may append query strings; the sidecar ignores them.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "OK",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    let _ = stream.write_all(head.as_bytes()).and_then(|()| stream.write_all(body.as_bytes()));
    let _ = stream.flush();
}
