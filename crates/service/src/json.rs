//! A minimal JSON reader/writer for the service protocol.
//!
//! The workspace's vendored serde is a marker-only shim, so the JSON-lines
//! protocol is handled by this hand-rolled module instead: a recursive
//! descent parser into a [`Json`] value tree plus the string-escaping helpers
//! the envelope writers use. Numbers keep their raw source text so 64-bit
//! seeds round-trip without `f64` precision loss.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw literal text (see [`Json::as_u64`]).
    Num(String),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { s: text, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos < p.s.len() {
            return Err(format!("trailing characters after JSON value at offset {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an integral number in range.
    /// Parses the raw literal, so full 64-bit seeds are exact.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `usize`, if this is an integral number in range.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` when the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) JSON emission.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(raw) => f.write_str(raw),
            Json::Str(s) => write!(f, "{}", quote(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{value}", quote(key))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes and quotes a string as a JSON string literal.
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deepest allowed array/object nesting. A hostile request of hundreds of
/// thousands of `[` would otherwise overflow the handler thread's stack and
/// abort the whole process.
const MAX_DEPTH: usize = 64;

/// Byte-offset parser over the input `&str` — no up-front `Vec<char>` copy,
/// so a request near the service's 16 MiB line cap costs one buffer, not
/// five (offsets in error messages are byte offsets).
struct Parser<'a> {
    s: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.s[self.pos..].chars().next()
    }

    /// Advances past `c`, which must be the char `peek` just returned.
    fn bump(&mut self, c: char) {
        self.pos += c.len_utf8();
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if !c.is_whitespace() {
                break;
            }
            self.bump(c);
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.bump(c);
            Ok(())
        } else {
            Err(format!("expected '{c}' at offset {}", self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.s[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.peek() {
            Some('n') => self.literal("null", Json::Null),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('[') => self.array(depth),
            Some('{') => self.object(depth),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected character '{c}' at offset {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let raw = &self.s[start..self.pos];
        // validate by parsing; the raw text is what gets stored
        raw.parse::<f64>().map_err(|_| format!("invalid number '{raw}' at offset {start}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or("unterminated string")?;
            self.bump(c);
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.bump(esc);
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let first = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // high surrogate: require a low surrogate next
                                self.expect('\\')?;
                                self.expect('u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err("invalid surrogate pair".to_string());
                                }
                                0x10000 + ((first - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                            );
                        }
                        other => return Err(format!("unknown escape '\\{other}'")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or("truncated \\u escape")?;
            self.bump(c);
            code = code * 16 + c.to_digit(16).ok_or(format!("invalid hex digit '{c}'"))?;
        }
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(Json::parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn u64_seeds_do_not_lose_precision() {
        let seed = u64::MAX - 7;
        let json = Json::parse(&seed.to_string()).unwrap();
        assert_eq!(json.as_u64(), Some(seed));
    }

    #[test]
    fn objects_and_arrays_round_trip() {
        let text = r#"{"op":"place","seed":7,"engines":["seqpair","hier"],"fast":true,"x":null}"#;
        let json = Json::parse(text).unwrap();
        assert_eq!(json.get("op").and_then(Json::as_str), Some("place"));
        assert_eq!(json.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(json.get("engines").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert!(json.get("x").is_some_and(Json::is_null));
        assert_eq!(Json::parse(&json.to_string()).unwrap(), json);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f\u{1F600}";
        let quoted = quote(original);
        let parsed = Json::parse(&quoted).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
        // embedded multi-line report bodies survive quoting
        let report = "{\n  \"circuit\": \"x\"\n}\n";
        assert_eq!(Json::parse(&quote(report)).unwrap().as_str(), Some(report));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let json = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(json.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn deep_nesting_is_rejected_not_fatal() {
        // 200k nested brackets must yield an error, not a stack overflow
        let bomb = "[".repeat(200_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        // moderate nesting still parses
        let ok = format!("{}1{}", "[".repeat(32), "]".repeat(32));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn malformed_documents_error() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"\\ud800x\"").is_err());
    }
}
