//! A small LRU map for finished placement reports.
//!
//! The service keys results by `(canonical circuit text, canonical config
//! string, seed)` — full content, not hashes, so key collisions are
//! impossible by construction; values are the deterministic report bodies.
//! Capacities are small
//! (hundreds), so recency is tracked with a monotonic stamp per entry and
//! eviction scans for the minimum — O(capacity), branch-free simple, and
//! plenty fast next to placement jobs that take milliseconds to seconds.

use std::collections::HashMap;
use std::hash::Hash;

/// Lifetime counters of one cache instance, reported by the daemon's
/// `stats` command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that missed (including every lookup of a zero-capacity cache).
    pub misses: u64,
    /// Entries stored (new keys and refreshes; the no-op inserts of a
    /// zero-capacity cache are not counted).
    pub insertions: u64,
    /// Entries evicted to make room for a new key.
    pub evictions: u64,
}

/// A least-recently-used cache with a fixed entry capacity.
///
/// A capacity of 0 disables the cache (every `get` misses, `insert` is a
/// no-op).
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    stats: CacheStats,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache that holds at most `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            stats: CacheStats::default(),
            map: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// Looks a key up, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((stamp, value)) => {
                *stamp = tick;
                self.stats.hits += 1;
                Some(&*value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently-used one
    /// when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        self.stats.insertions += 1;
        self.map.insert(key, (self.tick, value));
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime hit/miss/insertion/eviction counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut cache = LruCache::new(4);
        cache.insert(1, "a");
        assert_eq!(cache.get(&1), Some(&"a"));
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert(1, "a");
        cache.insert(2, "b");
        assert_eq!(cache.get(&1), Some(&"a")); // 1 is now fresher than 2
        cache.insert(3, "c"); // evicts 2
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(&"a"));
        assert_eq!(cache.get(&3), Some(&"c"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert(1, "a");
        cache.insert(2, "b");
        cache.insert(1, "a2"); // refresh, not a new entry
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), Some(&"a2"));
        assert_eq!(cache.get(&2), Some(&"b"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert(1, "a");
        assert_eq!(cache.get(&1), None);
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1, insertions: 0, evictions: 0 });
    }

    #[test]
    fn stats_count_hits_misses_insertions_and_evictions() {
        let mut cache = LruCache::new(2);
        cache.insert(1, "a");
        cache.insert(2, "b");
        assert_eq!(cache.get(&1), Some(&"a")); // hit
        assert_eq!(cache.get(&3), None); // miss
        cache.insert(3, "c"); // evicts 2
        assert_eq!(cache.get(&2), None); // miss
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2, insertions: 3, evictions: 1 });
    }
}
