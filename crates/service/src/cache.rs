//! A small LRU map for finished placement reports.
//!
//! The service keys results by `(canonical circuit text, canonical config
//! string, seed)` — full content, not hashes, so key collisions are
//! impossible by construction; values are the deterministic report bodies.
//! Capacities are small
//! (hundreds), so recency is tracked with a monotonic stamp per entry and
//! eviction scans for the minimum — O(capacity), branch-free simple, and
//! plenty fast next to placement jobs that take milliseconds to seconds.

use std::collections::HashMap;
use std::hash::Hash;

/// A least-recently-used cache with a fixed entry capacity.
///
/// A capacity of 0 disables the cache (every `get` misses, `insert` is a
/// no-op).
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache that holds at most `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache { capacity, tick: 0, map: HashMap::with_capacity(capacity.min(1024)) }
    }

    /// Looks a key up, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(stamp, value)| {
            *stamp = tick;
            &*value
        })
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently-used one
    /// when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut cache = LruCache::new(4);
        cache.insert(1, "a");
        assert_eq!(cache.get(&1), Some(&"a"));
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert(1, "a");
        cache.insert(2, "b");
        assert_eq!(cache.get(&1), Some(&"a")); // 1 is now fresher than 2
        cache.insert(3, "c"); // evicts 2
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(&"a"));
        assert_eq!(cache.get(&3), Some(&"c"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert(1, "a");
        cache.insert(2, "b");
        cache.insert(1, "a2"); // refresh, not a new entry
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), Some(&"a2"));
        assert_eq!(cache.get(&2), Some(&"b"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert(1, "a");
        assert_eq!(cache.get(&1), None);
        assert!(cache.is_empty());
    }
}
