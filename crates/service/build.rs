//! Embeds the git commit into the binary for the `build_info` metric.
//! Falls back to "unknown" outside a git checkout (e.g. a source tarball).

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=APLS_GIT_HASH={hash}");
    // Re-run when HEAD moves so the hash stays honest in dev builds.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=build.rs");
}
