//! Cross-crate format check: every JSON line emitted by the telemetry layer
//! must parse back through the service's own JSON reader with all fields
//! intact. The trace file format and the wire protocol share one JSON
//! dialect, so `apls trace` can summarise whatever `--trace` wrote.

use apls_service::json::Json;
use apls_telemetry::{Collector, RecordingCollector, TraceEvent, Value};
use proptest::prelude::*;

/// Hostile-but-legal characters for names, categories and argument strings:
/// quotes, backslashes, control characters and non-ASCII.
const CHARS: [char; 14] =
    ['a', 'Z', '0', '_', '-', ' ', '"', '\\', '\n', '\t', '\r', '\u{1}', 'µ', '好'];

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..CHARS.len(), 0..12)
        .prop_map(|picks| picks.into_iter().map(|i| CHARS[i]).collect())
}

/// All five `Value` variants, plus the non-finite float that must render as
/// JSON `null`. (The vendored proptest shim has no union/float strategies,
/// so variants are chosen by an integer selector.)
fn arb_value() -> impl Strategy<Value = Value> {
    (0usize..6, 0u64..u64::MAX, arb_string()).prop_map(|(kind, raw, s)| match kind {
        0 => Value::U64(raw),
        1 => Value::I64((raw as i64).wrapping_sub(1 << 40)),
        2 => {
            let sign = if raw % 2 == 0 { 1.0 } else { -1.0 };
            Value::F64(sign * (raw as f64) / 997.0)
        }
        3 => Value::F64(f64::NAN),
        4 => Value::Bool(raw % 2 == 0),
        _ => Value::Str(s),
    })
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        arb_string(),
        arb_string(),
        0usize..3,
        0u64..1_000_000_000_000,
        1u64..64,
        proptest::collection::vec((arb_string(), arb_value()), 0..4),
    )
        .prop_map(|(name, cat, ph_sel, ts_us, tid, args)| {
            let ph = ['X', 'i', 'C'][ph_sel];
            let dur_us = if ph == 'X' { Some(ts_us % 9_999) } else { None };
            TraceEvent { name, cat, ph, ts_us, dur_us, tid, args }
        })
}

/// Asserts one argument value survived the JSON round trip.
fn check_value(original: &Value, parsed: &Json) {
    match original {
        Value::U64(v) => assert_eq!(parsed.as_u64(), Some(*v)),
        Value::I64(v) => match parsed {
            Json::Num(raw) => assert_eq!(raw.parse::<i64>().ok(), Some(*v)),
            other => panic!("expected number for I64, got {other:?}"),
        },
        Value::F64(v) if v.is_finite() => assert_eq!(parsed.as_f64(), Some(*v)),
        Value::F64(_) => assert!(parsed.is_null(), "non-finite floats must render as null"),
        Value::Bool(v) => assert_eq!(parsed.as_bool(), Some(*v)),
        Value::Str(s) => assert_eq!(parsed.as_str(), Some(s.as_str())),
    }
}

proptest! {
    /// Any event — hostile strings, every value variant, with or without a
    /// duration — renders to a single line the service JSON parser reads
    /// back field-for-field.
    #[test]
    fn trace_json_lines_parse_back_through_the_service_parser(event in arb_event()) {
        let line = event.to_json_line();
        prop_assert!(!line.contains('\n'), "a JSON line must stay on one line: {line:?}");

        let parsed = Json::parse(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        prop_assert_eq!(parsed.get("name").and_then(Json::as_str), Some(event.name.as_str()));
        prop_assert_eq!(parsed.get("cat").and_then(Json::as_str), Some(event.cat.as_str()));
        let ph = event.ph.to_string();
        prop_assert_eq!(parsed.get("ph").and_then(Json::as_str), Some(ph.as_str()));
        prop_assert_eq!(parsed.get("ts").and_then(Json::as_u64), Some(event.ts_us));
        prop_assert_eq!(parsed.get("pid").and_then(Json::as_u64), Some(1));
        prop_assert_eq!(parsed.get("tid").and_then(Json::as_u64), Some(event.tid));
        prop_assert_eq!(parsed.get("dur").and_then(Json::as_u64), event.dur_us);

        match parsed.get("args") {
            None => prop_assert!(event.args.is_empty(), "args object missing"),
            Some(Json::Obj(fields)) => {
                // source order is preserved, so fields align index-wise even
                // under duplicate keys
                prop_assert_eq!(fields.len(), event.args.len());
                for ((key, value), (k, v)) in fields.iter().zip(&event.args) {
                    prop_assert_eq!(key, k);
                    check_value(v, value);
                }
            }
            Some(other) => panic!("args must be an object, got {other:?}"),
        }
    }
}

/// A recorded Chrome trace document is one valid JSON object whose
/// `traceEvents` array holds every recorded event.
#[test]
fn chrome_trace_document_parses_as_one_json_object() {
    let collector = RecordingCollector::new();
    for i in 0..5u64 {
        collector.record(TraceEvent {
            name: format!("phase\"{i}\""),
            cat: "test".to_string(),
            ph: if i % 2 == 0 { 'X' } else { 'i' },
            ts_us: i * 10,
            dur_us: (i % 2 == 0).then_some(7),
            tid: 1,
            args: vec![("i".to_string(), Value::U64(i))],
        });
    }
    let doc = Json::parse(&collector.to_chrome_trace()).expect("valid JSON document");
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert_eq!(events.len(), 5);
    assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    assert_eq!(events[0].get("name").and_then(Json::as_str), Some("phase\"0\""));
}
