//! Service lifecycle tests: backpressure on a full queue, graceful shutdown
//! that drains queued work, derived-seed replayability, and protocol errors.

use apls_portfolio::PortfolioEngine;
use apls_service::{JobSpec, PlacementService, ServiceClient, ServiceConfig};
use std::time::Duration;

/// A cheap job: single deterministic-engine run of the 9-module Miller
/// op-amp.
fn cheap_spec() -> JobSpec {
    JobSpec::bundled("miller_opamp_fig6")
        .with_restarts(1)
        .with_engines([PortfolioEngine::Deterministic])
        .with_fast(true)
}

#[test]
fn full_queue_answers_retry() {
    // One worker, queue depth 1, and an artificial 400 ms solve time: the
    // first job occupies the worker, the second fills the queue, the rest of
    // the burst must be told to retry.
    let service = PlacementService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 0,
        job_delay: Some(Duration::from_millis(400)),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let addr = service.local_addr();

    let mut first = ServiceClient::connect(addr).expect("connects");
    let pioneer = std::thread::spawn(move || first.place(&cheap_spec().with_seed(0)));
    // give the pioneer time to occupy the worker before the burst
    std::thread::sleep(Duration::from_millis(100));

    let burst: Vec<_> = (1..=5u64)
        .map(|seed| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connects");
                client.place(&cheap_spec().with_seed(seed)).expect("round-trips")
            })
        })
        .collect();
    let responses: Vec<_> = burst.into_iter().map(|h| h.join().expect("no panic")).collect();
    let retries = responses.iter().filter(|r| r.is_retry()).count();
    let oks = responses.iter().filter(|r| r.is_ok()).count();
    assert_eq!(retries + oks, responses.len(), "only ok/retry are acceptable");
    assert!(retries >= 1, "a 5-job burst into a 1-deep queue must shed load");
    for r in responses.iter().filter(|r| r.is_retry()) {
        assert!(r.error.as_deref().unwrap_or("").contains("queue full"));
    }
    assert!(pioneer.join().expect("no panic").expect("round-trips").is_ok());
    service.shutdown();
    service.join();
}

#[test]
fn shutdown_drains_queued_jobs() {
    let service = PlacementService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        job_delay: Some(Duration::from_millis(150)),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let addr = service.local_addr();

    let clients: Vec<_> = (0..3u64)
        .map(|seed| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connects");
                client.place(&cheap_spec().with_seed(seed)).expect("round-trips")
            })
        })
        .collect();
    // let all three jobs reach the queue, then pull the plug mid-flight
    std::thread::sleep(Duration::from_millis(100));
    service.shutdown();
    for handle in clients {
        let response = handle.join().expect("no panic");
        assert!(response.is_ok(), "queued jobs must still be answered: {response:?}");
    }
    service.join();
}

#[test]
fn derived_seeds_replay_across_service_restarts() {
    let config = ServiceConfig { workers: 2, seed: 99, ..ServiceConfig::default() };
    let run = |config: &ServiceConfig| -> Vec<(u64, String)> {
        let service = PlacementService::start(config.clone()).expect("service starts");
        let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
        let mut out = Vec::new();
        for _ in 0..3 {
            // no pinned seed: the service derives one from (its seed, job index)
            let response = client.place(&cheap_spec()).expect("round-trips");
            assert!(response.is_ok());
            out.push((response.seed.expect("seed echoed"), response.report.expect("report")));
        }
        service.shutdown();
        service.join();
        out
    };
    let first = run(&config);
    let second = run(&config);
    assert_eq!(first, second, "same job log, same service seed: bit-identical replies");
    assert_ne!(first[0].0, first[1].0, "distinct jobs draw distinct seeds");

    let other = run(&ServiceConfig { seed: 100, ..config });
    assert_ne!(
        first.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        other.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        "a different service seed shifts the derived job seeds"
    );
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let service = PlacementService::start(ServiceConfig::default()).expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");

    let cases = [
        ("this is not json", "invalid JSON"),
        ("{\"op\":\"warp\"}", "unknown op 'warp'"),
        ("{\"no_op\":1}", "needs an 'op' field"),
        ("{\"op\":\"place\"}", "needs a circuit"),
        ("{\"op\":\"place\",\"circuit\":\"no_such\"}", "unknown circuit 'no_such'"),
        // inline parse failures surface the positioned .apls diagnostic
        ("{\"op\":\"place\",\"apls\":\"apls 1\\ncircuit 7\\n\"}", "2:9: expected circuit name"),
    ];
    for (request, fragment) in cases {
        let response = client.request_line(request).expect("server keeps talking");
        assert!(response.contains("\"status\":\"error\""), "{request}: {response}");
        assert!(response.contains(fragment), "{request}: {response}");
    }

    // the connection survived all of that
    let pong = client.ping().expect("ping");
    assert!(pong.contains("\"status\":\"ok\""));
    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"jobs_completed\":0"));

    let bye = client.shutdown().expect("shutdown ack");
    assert!(bye.contains("shutting_down"));
    service.join();
}

#[test]
fn cache_capacity_zero_never_reports_hits() {
    let service =
        PlacementService::start(ServiceConfig { cache_capacity: 0, ..ServiceConfig::default() })
            .expect("service starts");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
    let spec = cheap_spec().with_seed(5);
    let a = client.place(&spec).expect("round-trips");
    let b = client.place(&spec).expect("round-trips");
    assert!(!a.cache_hit && !b.cache_hit);
    // determinism holds with or without the cache
    assert_eq!(a.report, b.report);
    service.shutdown();
    service.join();
}
