//! Unified facade for the analog layout synthesis workspace.
//!
//! `apls-core` is the crate a downstream user depends on: it re-exports every
//! engine of the workspace under one namespace and offers [`AnalogPlacer`], a
//! single entry point that runs any of the three placement engines of the
//! DATE 2009 survey on a [`circuit::benchmarks::BenchmarkCircuit`] and returns
//! a uniform [`PlacementReport`]:
//!
//! * [`Engine::SequencePair`] — simulated annealing over symmetric-feasible
//!   sequence-pairs (Section II);
//! * [`Engine::HbTree`] — hierarchical B*-tree annealing with symmetry
//!   islands and common-centroid patterns (Section III);
//! * [`Engine::Deterministic`] — hierarchically bounded enumeration with
//!   enhanced shape functions (Section IV).
//!
//! Layout-aware sizing (Section V) lives in [`layoutaware`] and is exercised
//! through the example binaries and the `fig10` bench.
//!
//! # Example
//!
//! ```
//! use apls_core::{AnalogPlacer, Engine};
//! use apls_core::circuit::benchmarks::miller_opamp_fig6;
//!
//! let circuit = miller_opamp_fig6();
//! let report = AnalogPlacer::new(Engine::HbTree)
//!     .with_seed(7)
//!     .with_fast_schedule(true)
//!     .place(&circuit);
//! assert_eq!(report.metrics.overlap_area, 0);
//! assert!(report.constraints.symmetry_satisfied);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use apls_anneal as anneal;
pub use apls_btree as btree;
pub use apls_circuit as circuit;
pub use apls_geometry as geometry;
pub use apls_layoutaware as layoutaware;
pub use apls_seqpair as seqpair;
pub use apls_shapefn as shapefn;

mod report;

pub use report::{ConstraintReport, PlacementReport};

use apls_anneal::Schedule;
use apls_btree::{HbTreePlacer, HbTreePlacerConfig};
use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_seqpair::{SeqPairPlacer, SeqPairPlacerConfig};
use apls_shapefn::{DeterministicPlacer, ShapeModel};
use std::time::Instant;

/// Which placement engine [`AnalogPlacer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Symmetric-feasible sequence-pair annealing (Section II).
    SequencePair,
    /// Hierarchical B*-tree annealing (Section III).
    HbTree,
    /// Deterministic enumeration with enhanced shape functions (Section IV).
    Deterministic,
}

/// The unified placement entry point.
#[derive(Debug, Clone)]
pub struct AnalogPlacer {
    engine: Engine,
    seed: u64,
    fast_schedule: bool,
    wirelength_weight: f64,
}

impl AnalogPlacer {
    /// Creates a placer for the chosen engine with default settings.
    #[must_use]
    pub fn new(engine: Engine) -> Self {
        AnalogPlacer { engine, seed: 1, fast_schedule: false, wirelength_weight: 0.5 }
    }

    /// Sets the RNG seed (builder style). Deterministic engines ignore it.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects a short annealing schedule for quick runs and tests (builder
    /// style).
    #[must_use]
    pub fn with_fast_schedule(mut self, fast: bool) -> Self {
        self.fast_schedule = fast;
        self
    }

    /// Sets the wirelength weight of the annealing cost functions (builder
    /// style).
    #[must_use]
    pub fn with_wirelength_weight(mut self, weight: f64) -> Self {
        self.wirelength_weight = weight;
        self
    }

    /// The engine this placer runs.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Places the circuit and reports the result.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's hierarchy or constraints are inconsistent with
    /// its netlist (validate them with [`apls_circuit::HierarchyTree::validate`]
    /// and [`apls_circuit::ConstraintSet::validate`] first when in doubt).
    #[must_use]
    pub fn place(&self, circuit: &BenchmarkCircuit) -> PlacementReport {
        let start = Instant::now();
        let placement = match self.engine {
            Engine::SequencePair => {
                let mut config = SeqPairPlacerConfig {
                    seed: self.seed,
                    wirelength_weight: self.wirelength_weight,
                    ..SeqPairPlacerConfig::for_netlist(&circuit.netlist)
                };
                if self.fast_schedule {
                    config.schedule = Schedule::fast();
                }
                SeqPairPlacer::new(&circuit.netlist, &circuit.constraints)
                    .run(&config)
                    .placement
            }
            Engine::HbTree => {
                let mut config = HbTreePlacerConfig {
                    seed: self.seed,
                    wirelength_weight: self.wirelength_weight,
                    ..HbTreePlacerConfig::for_circuit(circuit)
                };
                if self.fast_schedule {
                    config.schedule = Schedule::fast();
                }
                HbTreePlacer::new(circuit).run(&config).placement
            }
            Engine::Deterministic => DeterministicPlacer::new(circuit)
                .run(ShapeModel::Enhanced)
                .placement
                .expect("the enhanced model always returns a placement"),
        };
        PlacementReport::new(self.engine, circuit, placement, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::benchmarks;

    #[test]
    fn every_engine_produces_a_legal_placement_report() {
        let circuit = benchmarks::miller_opamp_fig6();
        for engine in [Engine::SequencePair, Engine::HbTree, Engine::Deterministic] {
            let report = AnalogPlacer::new(engine)
                .with_seed(3)
                .with_fast_schedule(true)
                .place(&circuit);
            assert!(report.placement.is_complete(), "{engine:?}");
            assert_eq!(report.metrics.overlap_area, 0, "{engine:?}");
            assert!(report.metrics.area_usage >= 1.0, "{engine:?}");
        }
    }

    #[test]
    fn constraint_aware_engines_satisfy_symmetry_exactly() {
        let circuit = benchmarks::miller_v2();
        for engine in [Engine::SequencePair, Engine::HbTree] {
            let report = AnalogPlacer::new(engine)
                .with_seed(1)
                .with_fast_schedule(true)
                .place(&circuit);
            assert!(report.constraints.symmetry_satisfied, "{engine:?}");
            assert_eq!(report.constraints.symmetry_error, 0, "{engine:?}");
        }
    }

    #[test]
    fn reports_are_reproducible_for_a_fixed_seed() {
        let circuit = benchmarks::comparator_v2();
        let a = AnalogPlacer::new(Engine::HbTree).with_seed(9).with_fast_schedule(true).place(&circuit);
        let b = AnalogPlacer::new(Engine::HbTree).with_seed(9).with_fast_schedule(true).place(&circuit);
        assert_eq!(a.metrics.bounding_area, b.metrics.bounding_area);
    }
}
