//! Unified facade for the analog layout synthesis workspace.
//!
//! `apls-core` is the crate a downstream user depends on: it re-exports every
//! engine of the workspace under one namespace and offers [`AnalogPlacer`], a
//! single entry point that runs any of the three placement engines of the
//! DATE 2009 survey on a [`circuit::benchmarks::BenchmarkCircuit`] and returns
//! a uniform [`PlacementReport`]:
//!
//! * [`Engine::SequencePair`] — simulated annealing over symmetric-feasible
//!   sequence-pairs (Section II);
//! * [`Engine::HbTree`] — hierarchical B*-tree annealing with symmetry
//!   islands and common-centroid patterns (Section III);
//! * [`Engine::Deterministic`] — hierarchically bounded enumeration with
//!   enhanced shape functions (Section IV);
//! * [`Engine::Hier`] — the hierarchical cross-engine pipeline
//!   ([`shapefn::hier`]): enumeration for small basic sets, pinned-seed
//!   annealing sub-solvers for larger hierarchy nodes, rayon-parallel
//!   shape-function composition;
//! * [`Engine::Tempering`] — parallel-tempering sequence-pair annealing
//!   ([`seqpair::tempering`]): temperature replicas exchanging
//!   configurations on a deterministic pinned-seed swap schedule.
//!
//! Layout-aware sizing (Section V) lives in [`layoutaware`] and is exercised
//! through the example binaries and the `fig10` bench.
//!
//! Circuits travel as `.apls` text through [`io`] (parser, canonical
//! serializer, content hashing), and [`service`] serves placement jobs over
//! TCP with caching and a worker pool (see `apls serve` / `apls submit`).
//!
//! Beyond single-engine runs, [`AnalogPlacer::place_portfolio`] races all
//! five engines across seeded annealing restarts in parallel (the
//! [`portfolio`] crate) and returns the best-of-portfolio result.
//!
//! # Example
//!
//! ```
//! use apls_core::{AnalogPlacer, Engine};
//! use apls_core::circuit::benchmarks::miller_opamp_fig6;
//!
//! let circuit = miller_opamp_fig6();
//! let report = AnalogPlacer::new(Engine::HbTree)
//!     .with_seed(7)
//!     .with_fast_schedule(true)
//!     .place(&circuit);
//! assert_eq!(report.metrics.overlap_area, 0);
//! assert!(report.constraints.symmetry_satisfied);
//! ```
//!
//! # Portfolio example
//!
//! ```
//! use apls_core::{AnalogPlacer, Engine};
//! use apls_core::circuit::benchmarks::miller_opamp_fig6;
//!
//! let circuit = miller_opamp_fig6();
//! let report = AnalogPlacer::new(Engine::HbTree)
//!     .with_seed(7)
//!     .with_fast_schedule(true)
//!     .place_portfolio(&circuit, 2);
//! assert!(report.best().placement.is_complete());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use apls_anneal as anneal;
pub use apls_btree as btree;
pub use apls_circuit as circuit;
pub use apls_geometry as geometry;
pub use apls_io as io;
pub use apls_layoutaware as layoutaware;
pub use apls_portfolio as portfolio;
pub use apls_seqpair as seqpair;
pub use apls_service as service;
pub use apls_shapefn as shapefn;
pub use apls_telemetry as telemetry;

mod report;

pub use report::{ConstraintReport, PlacementReport};

use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_portfolio::{run_engine_once, run_portfolio};
use apls_portfolio::{PortfolioConfig, PortfolioEngine, PortfolioReport};
use std::time::Instant;

/// Which placement engine [`AnalogPlacer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Symmetric-feasible sequence-pair annealing (Section II).
    SequencePair,
    /// Hierarchical B*-tree annealing (Section III).
    HbTree,
    /// Deterministic enumeration with enhanced shape functions (Section IV).
    Deterministic,
    /// Hierarchical cross-engine pipeline: exhaustive enumeration for small
    /// basic sets, pinned-seed annealing for larger hierarchy nodes, composed
    /// bottom-up as enhanced shape functions (see [`shapefn::hier`]). Never
    /// loses to [`Engine::Deterministic`] by construction.
    Hier,
    /// Parallel-tempering sequence-pair annealing (see
    /// [`seqpair::tempering`]): replicas at a geometric temperature ladder
    /// exchange configurations on a deterministic pinned-seed swap schedule.
    Tempering,
}

/// The unified placement entry point.
#[derive(Debug, Clone)]
pub struct AnalogPlacer {
    engine: Engine,
    seed: u64,
    fast_schedule: bool,
    wirelength_weight: f64,
}

impl AnalogPlacer {
    /// Creates a placer for the chosen engine with default settings.
    #[must_use]
    pub fn new(engine: Engine) -> Self {
        AnalogPlacer { engine, seed: 1, fast_schedule: false, wirelength_weight: 0.5 }
    }

    /// Sets the RNG seed (builder style). Deterministic engines ignore it.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects a short annealing schedule for quick runs and tests (builder
    /// style).
    #[must_use]
    pub fn with_fast_schedule(mut self, fast: bool) -> Self {
        self.fast_schedule = fast;
        self
    }

    /// Sets the wirelength weight of the annealing cost functions (builder
    /// style).
    #[must_use]
    pub fn with_wirelength_weight(mut self, weight: f64) -> Self {
        self.wirelength_weight = weight;
        self
    }

    /// The engine this placer runs.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// This placer's settings as a portfolio configuration racing all five
    /// engines with `restarts` restarts each: the seed becomes the root seed
    /// and the schedule/wirelength settings carry over.
    #[must_use]
    pub fn portfolio_config(&self, restarts: usize) -> PortfolioConfig {
        PortfolioConfig::new(self.seed)
            .with_restarts(restarts)
            .with_fast_schedule(self.fast_schedule)
            .with_wirelength_weight(self.wirelength_weight)
    }

    /// Places the circuit and reports the result.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's hierarchy or constraints are inconsistent with
    /// its netlist (validate them with [`apls_circuit::HierarchyTree::validate`]
    /// and [`apls_circuit::ConstraintSet::validate`] first when in doubt).
    #[must_use]
    pub fn place(&self, circuit: &BenchmarkCircuit) -> PlacementReport {
        let start = Instant::now();
        let settings = apls_portfolio::RestartSettings {
            fast_schedule: self.fast_schedule,
            wirelength_weight: self.wirelength_weight,
            ..apls_portfolio::RestartSettings::default()
        };
        // Dispatch through the portfolio's engine adapter: a single-engine
        // run IS restart 0 of that engine's portfolio lane, which is what
        // guarantees a portfolio can never lose to a single run.
        let outcome = run_engine_once(circuit, self.engine.into(), self.seed, &settings);
        PlacementReport::new(self.engine, circuit, outcome.placement, start.elapsed())
    }

    /// Races all five engines across `restarts` seeded annealing restarts in
    /// parallel and returns the aggregated [`PortfolioReport`].
    ///
    /// Seeds derive from this placer's seed via
    /// [`anneal::rng::SeedStream`]; restart 0 of every engine replays the
    /// corresponding [`AnalogPlacer::place`] run exactly, so the portfolio's
    /// best cost is never worse than any single engine's under the uniform
    /// cost of [`portfolio::stats::placement_cost`]. Results are independent
    /// of the worker thread count. Use [`apls_portfolio::run_portfolio`]
    /// directly for full control (engine subsets, thread pinning, early
    /// stopping).
    ///
    /// # Panics
    ///
    /// Panics if `restarts == 0` or the circuit is inconsistent.
    #[must_use]
    pub fn place_portfolio(&self, circuit: &BenchmarkCircuit, restarts: usize) -> PortfolioReport {
        run_portfolio(circuit, &self.portfolio_config(restarts))
    }
}

impl From<Engine> for PortfolioEngine {
    fn from(engine: Engine) -> PortfolioEngine {
        match engine {
            Engine::SequencePair => PortfolioEngine::SequencePair,
            Engine::HbTree => PortfolioEngine::HbTree,
            Engine::Deterministic => PortfolioEngine::Deterministic,
            Engine::Hier => PortfolioEngine::Hier,
            Engine::Tempering => PortfolioEngine::Tempering,
        }
    }
}

impl From<PortfolioEngine> for Engine {
    fn from(engine: PortfolioEngine) -> Engine {
        match engine {
            PortfolioEngine::SequencePair => Engine::SequencePair,
            PortfolioEngine::HbTree => Engine::HbTree,
            PortfolioEngine::Deterministic => Engine::Deterministic,
            PortfolioEngine::Hier => Engine::Hier,
            PortfolioEngine::Tempering => Engine::Tempering,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::benchmarks;

    #[test]
    fn every_engine_produces_a_legal_placement_report() {
        let circuit = benchmarks::miller_opamp_fig6();
        let all = [
            Engine::SequencePair,
            Engine::HbTree,
            Engine::Deterministic,
            Engine::Hier,
            Engine::Tempering,
        ];
        for engine in all {
            let report =
                AnalogPlacer::new(engine).with_seed(3).with_fast_schedule(true).place(&circuit);
            assert!(report.placement.is_complete(), "{engine:?}");
            assert_eq!(report.metrics.overlap_area, 0, "{engine:?}");
            assert!(report.metrics.area_usage >= 1.0, "{engine:?}");
        }
    }

    #[test]
    fn constraint_aware_engines_satisfy_symmetry_exactly() {
        let circuit = benchmarks::miller_v2();
        for engine in [Engine::SequencePair, Engine::HbTree] {
            let report =
                AnalogPlacer::new(engine).with_seed(1).with_fast_schedule(true).place(&circuit);
            assert!(report.constraints.symmetry_satisfied, "{engine:?}");
            assert_eq!(report.constraints.symmetry_error, 0, "{engine:?}");
        }
    }

    #[test]
    fn portfolio_beats_or_matches_every_single_engine() {
        use apls_portfolio::stats::placement_cost;
        let circuit = benchmarks::miller_opamp_fig6();
        let w = 0.5;
        let portfolio = AnalogPlacer::new(Engine::HbTree)
            .with_seed(7)
            .with_fast_schedule(true)
            .place_portfolio(&circuit, 2);
        let all = [
            Engine::SequencePair,
            Engine::HbTree,
            Engine::Deterministic,
            Engine::Hier,
            Engine::Tempering,
        ];
        for engine in all {
            let single =
                AnalogPlacer::new(engine).with_seed(7).with_fast_schedule(true).place(&circuit);
            assert!(
                portfolio.best_cost() <= placement_cost(&single.metrics, w) + 1e-9,
                "portfolio lost to {engine:?}"
            );
        }
    }

    #[test]
    fn reports_are_reproducible_for_a_fixed_seed() {
        let circuit = benchmarks::comparator_v2();
        let a =
            AnalogPlacer::new(Engine::HbTree).with_seed(9).with_fast_schedule(true).place(&circuit);
        let b =
            AnalogPlacer::new(Engine::HbTree).with_seed(9).with_fast_schedule(true).place(&circuit);
        assert_eq!(a.metrics.bounding_area, b.metrics.bounding_area);
    }
}
