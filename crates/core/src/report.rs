//! Uniform placement reports.

use crate::Engine;
use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_circuit::{Placement, PlacementMetrics};
use std::time::Duration;

/// Compliance summary of every constraint class of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintReport {
    /// Largest symmetry-axis deviation over all groups (doubled dbu).
    pub symmetry_error: i64,
    /// `true` when every symmetry group is exactly mirrored.
    pub symmetry_satisfied: bool,
    /// Largest centroid distance over all common-centroid groups (doubled dbu).
    pub common_centroid_error: i64,
    /// Number of proximity groups whose members form one connected cluster.
    pub proximity_connected: usize,
    /// Total number of proximity groups.
    pub proximity_total: usize,
}

impl ConstraintReport {
    /// Evaluates all constraints of a circuit against a placement.
    #[must_use]
    pub fn evaluate(circuit: &BenchmarkCircuit, placement: &Placement) -> Self {
        let symmetry_error = placement.symmetry_error(&circuit.constraints);
        let common_centroid_error = circuit
            .constraints
            .common_centroid_groups()
            .iter()
            .map(|g| g.centroid_error(placement))
            .max()
            .unwrap_or(0);
        let proximity_total = circuit.constraints.proximity_groups().len();
        let proximity_connected = circuit
            .constraints
            .proximity_groups()
            .iter()
            .filter(|g| g.is_connected(placement))
            .count();
        ConstraintReport {
            symmetry_error,
            symmetry_satisfied: symmetry_error == 0,
            common_centroid_error,
            proximity_connected,
            proximity_total,
        }
    }
}

/// The uniform result type returned by [`crate::AnalogPlacer::place`].
#[derive(Debug, Clone)]
pub struct PlacementReport {
    /// Engine that produced the placement.
    pub engine: Engine,
    /// Circuit name.
    pub circuit_name: String,
    /// The placement itself.
    pub placement: Placement,
    /// Area / wirelength / overlap metrics.
    pub metrics: PlacementMetrics,
    /// Constraint compliance summary.
    pub constraints: ConstraintReport,
    /// Wall-clock time of the run.
    pub runtime: Duration,
}

impl PlacementReport {
    /// Builds a report by evaluating the placement against the circuit.
    #[must_use]
    pub fn new(
        engine: Engine,
        circuit: &BenchmarkCircuit,
        placement: Placement,
        runtime: Duration,
    ) -> Self {
        let metrics = placement.metrics(&circuit.netlist);
        let constraints = ConstraintReport::evaluate(circuit, &placement);
        PlacementReport {
            engine,
            circuit_name: circuit.name.clone(),
            placement,
            metrics,
            constraints,
            runtime,
        }
    }

    /// One-line human-readable summary (used by the example binaries).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{:?} on {}: {}x{} dbu, area usage {:.2}%, HPWL {:.0}, symmetry error {}, {}/{} proximity groups connected, {:.1} ms",
            self.engine,
            self.circuit_name,
            self.metrics.width,
            self.metrics.height,
            self.metrics.area_usage * 100.0,
            self.metrics.wirelength,
            self.constraints.symmetry_error,
            self.constraints.proximity_connected,
            self.constraints.proximity_total,
            self.runtime.as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::benchmarks;
    use apls_geometry::{Orientation, Rect};

    #[test]
    fn constraint_report_flags_violations() {
        let circuit = benchmarks::miller_opamp_fig6();
        // an intentionally bad placement: everything stacked in a diagonal line
        let mut placement = Placement::new(&circuit.netlist);
        for (i, id) in circuit.netlist.module_ids().enumerate() {
            let d = circuit.netlist.module(id).dims();
            let x = i as i64 * 500;
            let y = i as i64 * 300;
            placement.place(id, Rect::new(x, y, x + d.w, y + d.h), Orientation::R0, 0);
        }
        let report = ConstraintReport::evaluate(&circuit, &placement);
        assert!(!report.symmetry_satisfied);
        assert!(report.symmetry_error > 0);
        assert!(report.proximity_connected < report.proximity_total);
    }

    #[test]
    fn summary_mentions_the_circuit() {
        let circuit = benchmarks::miller_opamp_fig6();
        let report = crate::AnalogPlacer::new(crate::Engine::Deterministic).place(&circuit);
        let text = report.summary();
        assert!(text.contains("miller_opamp"));
        assert!(text.contains("area usage"));
    }
}
