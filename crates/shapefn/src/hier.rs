//! The hierarchical cross-engine placement pipeline.
//!
//! Section IV of the paper bounds B*-tree enumeration with the layout design
//! hierarchy; this module promotes that idea from a single-engine detail into
//! a shared execution substrate. [`HierPlacer`] walks the hierarchy bottom-up
//! and solves **every node with a pluggable [`SubSolver`]**:
//!
//! * *basic module sets* small enough to enumerate exhaustively are solved
//!   exactly (every B*-tree and rotation assignment, as in the deterministic
//!   placer);
//! * larger sets are handed to an annealing sub-solver — a flat B*-tree
//!   annealer over the subset ([`BTreeAnnealSolver`]) or the full
//!   symmetric-feasible sequence-pair engine on the extracted sub-netlist
//!   ([`SeqPairAnnealSolver`]) — with seeds derived per node from one root
//!   seed, so runs are reproducible and independent of the worker thread
//!   count;
//! * every sub-result is abstracted as an [`EnhancedShapeFunction`] and
//!   siblings are composed bottom-up with rayon-parallel candidate packing
//!   and dominance pruning.
//!
//! The pure-enumeration configuration of this driver (no sub-solver) **is**
//! the deterministic placer of Section IV: [`crate::DeterministicPlacer`]
//! delegates to it, and the equivalence is pinned bit-for-bit by the
//! `hier_equivalence` integration tests. The hybrid configuration can only
//! improve on it: the driver keeps the pure enumeration result as a fallback
//! and returns whichever root shape has the smaller area, mirroring the
//! portfolio's restart-0 guarantee.

use crate::{EnhancedShape, EnhancedShapeFunction};
use apls_anneal::rng::SeedStream;
use apls_anneal::Schedule;
use apls_btree::{anneal_subset, pack_btree, BStarTree, SubsetAnnealConfig};
use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_circuit::{HierarchyNode, HierarchyNodeId, ModuleId, Placement, SubCircuit};
use apls_geometry::{Dims, Orientation, Rect};
use apls_seqpair::{place_subcircuit, SeqPairPlacerConfig};
use apls_telemetry::Telemetry;
use rayon::prelude::*;
use std::time::Instant;

/// Tuning options of the hierarchical pipeline.
#[derive(Debug, Clone)]
pub struct HierOptions {
    /// Maximum number of shapes kept per shape function after every addition.
    pub max_shapes: usize,
    /// Basic module sets larger than this are not exhaustively enumerated.
    pub max_enumerated_set: usize,
    /// Hierarchy nodes with more than this many modules qualify for the
    /// annealing sub-solver (when one is installed). Exhaustively enumerated
    /// nodes are never annealed — enumeration is already exact.
    pub anneal_threshold: usize,
    /// Nodes with more than this many modules are composed from their
    /// children only; annealing a flat sub-problem that large would dominate
    /// the runtime without improving on composition.
    pub anneal_cap: usize,
    /// Aspect-ratio targets (`w / h`) the annealing sub-solver sweeps; one
    /// extra pure-area run is always added. More targets widen the staircase
    /// a node contributes upward.
    pub aspect_targets: Vec<f64>,
    /// Root seed of the per-node sub-solver seed derivation.
    pub seed: u64,
    /// Use the short smoke-test schedule in the annealing sub-solvers.
    pub fast_schedule: bool,
}

impl Default for HierOptions {
    fn default() -> Self {
        HierOptions {
            max_shapes: 24,
            max_enumerated_set: 5,
            anneal_threshold: 5,
            anneal_cap: 24,
            aspect_targets: vec![0.5, 1.0, 2.0],
            seed: 1,
            fast_schedule: false,
        }
    }
}

impl HierOptions {
    /// The options of the pure-enumeration configuration behind
    /// [`crate::DeterministicPlacer`].
    #[must_use]
    pub fn pure(options: crate::PlacerOptions) -> Self {
        HierOptions {
            max_shapes: options.max_shapes,
            max_enumerated_set: options.max_enumerated_set,
            ..HierOptions::default()
        }
    }

    /// Sets the root seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the short annealing schedule (builder style).
    #[must_use]
    pub fn with_fast_schedule(mut self, fast: bool) -> Self {
        self.fast_schedule = fast;
        self
    }

    /// Sets the annealing threshold (builder style).
    #[must_use]
    pub fn with_anneal_threshold(mut self, threshold: usize) -> Self {
        self.anneal_threshold = threshold;
        self
    }
}

/// One sub-problem of the hierarchical pipeline: a hierarchy node, its
/// modules, and everything a solver needs to produce candidate shapes.
#[derive(Debug)]
pub struct SubProblem<'a> {
    /// The full circuit (sub-netlist extraction needs nets and constraints).
    pub circuit: &'a BenchmarkCircuit,
    /// The hierarchy node being solved.
    pub node: HierarchyNodeId,
    /// The modules under the node, in schematic order.
    pub modules: &'a [ModuleId],
    /// Global module dimension table (hoisted once per run).
    pub module_dims: &'a [Dims],
    /// Global rotation permissions (false for constrained modules).
    pub rotatable: &'a [bool],
    /// The run's root seed, identical for every node. Solvers must derive
    /// their per-run seeds through [`SubProblem::run_seed`], which mixes in
    /// the node id and run index — seeding an RNG from this value directly
    /// would give every node the same stream.
    pub seed: u64,
    /// Whether to use the short smoke-test schedule.
    pub fast_schedule: bool,
    /// Aspect-ratio targets to sweep.
    pub aspect_targets: &'a [f64],
}

impl SubProblem<'_> {
    /// The seed of run `index` of this node's solver (pure in the index).
    #[must_use]
    pub fn run_seed(&self, index: u64) -> u64 {
        SeedStream::new(self.seed).seed_for(self.node.index() as u64, index)
    }

    /// The annealing schedule for this sub-problem's size.
    #[must_use]
    pub fn schedule(&self) -> Schedule {
        if self.fast_schedule {
            Schedule::fast()
        } else {
            Schedule::for_problem_size(self.modules.len())
        }
    }
}

/// A pluggable per-node solver of the hierarchical pipeline.
///
/// Implementations must be pure functions of the [`SubProblem`] (no hidden
/// state, no wall-clock or thread-identity dependence): the driver fans nodes
/// out over rayon workers and pins the guarantee that results do not depend
/// on the thread count.
pub trait SubSolver: Send + Sync {
    /// Stable name, used in reports and debugging.
    fn name(&self) -> &'static str;

    /// Produces candidate shapes for the node. The returned function may be
    /// empty (the driver then keeps the composed candidates only).
    fn solve(&self, problem: &SubProblem<'_>) -> EnhancedShapeFunction;
}

/// Flat B*-tree annealing over the node's modules (global ids, so the best
/// trees feed straight into the enhanced shape functions). One pinned-seed
/// run per aspect-ratio target plus one pure-area run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BTreeAnnealSolver;

impl SubSolver for BTreeAnnealSolver {
    fn name(&self) -> &'static str {
        "btree-anneal"
    }

    fn solve(&self, problem: &SubProblem<'_>) -> EnhancedShapeFunction {
        let mut esf = EnhancedShapeFunction::new();
        let runs = problem.aspect_targets.len() + 1;
        for run in 0..runs {
            let mut config = SubsetAnnealConfig {
                seed: problem.run_seed(run as u64),
                schedule: problem.schedule(),
                aspect_target: None,
                aspect_weight: 0.3,
            };
            if run < problem.aspect_targets.len() {
                config.aspect_target = Some(problem.aspect_targets[run]);
            }
            let result =
                anneal_subset(problem.modules, problem.module_dims, problem.rotatable, &config);
            esf.insert(EnhancedShape::from_tree(result.tree, problem.module_dims));
        }
        esf
    }
}

/// Symmetric-feasible sequence-pair annealing on the extracted sub-netlist
/// (inherited symmetry / common-centroid / proximity constraints), with the
/// resulting placement re-encoded as a B*-tree for shape-function
/// composition.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqPairAnnealSolver;

impl SubSolver for SeqPairAnnealSolver {
    fn name(&self) -> &'static str {
        "seqpair-anneal"
    }

    fn solve(&self, problem: &SubProblem<'_>) -> EnhancedShapeFunction {
        let sub = SubCircuit::restrict(
            &problem.circuit.netlist,
            &problem.circuit.constraints,
            problem.modules,
        );
        let config = SeqPairPlacerConfig {
            seed: problem.run_seed(0),
            schedule: problem.schedule(),
            ..SeqPairPlacerConfig::default()
        };
        let result = place_subcircuit(&sub, &config);
        let mut esf = EnhancedShapeFunction::new();
        let tree = tree_from_rects(&result.rects);
        esf.insert(EnhancedShape::from_tree(tree, problem.module_dims));
        esf
    }
}

/// Re-encodes a placed rectangle set as a B*-tree.
///
/// The reconstruction is a deterministic greedy sweep in `(x_min, y_min)`
/// order: each module prefers to become the *left child* of its left-abutting
/// neighbour (same packing position), falling back to the *right child* of
/// the module directly below it, and finally to any free slot. Packing the
/// resulting tree left/bottom-compacts the placement, so the encoded shape is
/// never larger than the bounding box of an already-compacted input; for
/// non-admissible inputs (e.g. symmetry-legalised placements with slack) the
/// tree is a compacted *candidate* whose exact footprint the caller re-packs.
#[must_use]
pub fn tree_from_rects(rects: &[(ModuleId, Rect)]) -> BStarTree {
    assert!(!rects.is_empty(), "cannot encode an empty placement");
    let mut order: Vec<(ModuleId, Rect)> = rects.to_vec();
    order.sort_by_key(|&(m, r)| (r.x_min, r.y_min, m));
    let mut tree = BStarTree::left_chain(&[order[0].0]);
    let mut placed: Vec<(ModuleId, Rect)> = vec![order[0]];
    for &(m, r) in &order[1..] {
        let single = BStarTree::left_chain(&[m]);
        // 1. left-abutting neighbour with the largest vertical overlap
        let left_anchor = placed
            .iter()
            .filter(|(_, p)| p.x_max == r.x_min && p.y_min < r.y_max && r.y_min < p.y_max)
            .max_by_key(|(_, p)| {
                (p.y_max.min(r.y_max) - p.y_min.max(r.y_min), std::cmp::Reverse(p.y_min))
            })
            .map(|&(pm, _)| pm);
        // 2. module directly below, sharing the left edge if possible
        let below_anchor = placed
            .iter()
            .filter(|(_, p)| p.y_max <= r.y_min && p.x_min < r.x_max && r.x_min < p.x_max)
            .max_by_key(|(_, p)| (p.y_max, p.x_min == r.x_min))
            .map(|&(pm, _)| pm);
        let grafted = left_anchor.is_some_and(|anchor| tree.graft(&single, anchor, true))
            || below_anchor.is_some_and(|anchor| tree.graft(&single, anchor, false));
        if !grafted {
            // 3. any free slot, scanning in insertion order (always succeeds:
            //    a binary tree over n nodes has n + 1 free slots)
            let attached = placed
                .iter()
                .any(|&(pm, _)| tree.graft(&single, pm, true) || tree.graft(&single, pm, false));
            assert!(attached, "a binary tree always has a free slot");
        }
        placed.push((m, r));
    }
    tree
}

/// Result of one hierarchical pipeline run.
#[derive(Debug, Clone)]
pub struct HierResult {
    /// Footprint of the minimum-area root shape.
    pub dims: Dims,
    /// Bounding-box area of the root shape divided by the total module area.
    pub area_usage: f64,
    /// Wall-clock runtime of the run.
    pub runtime: std::time::Duration,
    /// Number of shapes in the root shape function.
    pub root_shapes: usize,
    /// The root shape-function staircase as `(width, height)` pairs.
    pub staircase: Vec<(i64, i64)>,
    /// The final placement, extracted from the minimum-area root shape's
    /// realising B*-tree.
    pub placement: Placement,
    /// Hierarchy nodes the annealing sub-solver was *applied* to during the
    /// hybrid walk. When [`HierResult::enumeration_won`] is `true` the
    /// refinements were attempted but discarded — the returned shapes owe
    /// them nothing.
    pub annealed_nodes: usize,
    /// `true` when the pure-enumeration fallback beat the hybrid root shape
    /// (the driver then returns the enumeration result, so the hybrid can
    /// never lose to the deterministic placer).
    pub enumeration_won: bool,
}

/// The hierarchical cross-engine placer.
///
/// # Example
///
/// ```
/// use apls_circuit::benchmarks::miller_opamp_fig6;
/// use apls_shapefn::hier::HierPlacer;
///
/// let circuit = miller_opamp_fig6();
/// let result = HierPlacer::hybrid(&circuit, 7).run();
/// assert!(result.placement.is_complete());
/// assert_eq!(result.placement.metrics(&circuit.netlist).overlap_area, 0);
/// ```
pub struct HierPlacer<'a> {
    circuit: &'a BenchmarkCircuit,
    options: HierOptions,
    solver: Option<Box<dyn SubSolver>>,
    telemetry: Telemetry,
}

impl<'a> HierPlacer<'a> {
    /// Creates a pure-enumeration placer (no sub-solver): the configuration
    /// behind [`crate::DeterministicPlacer`].
    #[must_use]
    pub fn new(circuit: &'a BenchmarkCircuit) -> Self {
        HierPlacer {
            circuit,
            options: HierOptions::default(),
            solver: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Creates the default hybrid placer: B*-tree annealing sub-solver with
    /// the given root seed.
    #[must_use]
    pub fn hybrid(circuit: &'a BenchmarkCircuit, seed: u64) -> Self {
        HierPlacer::new(circuit)
            .with_options(HierOptions::default().with_seed(seed))
            .with_sub_solver(Box::new(BTreeAnnealSolver))
    }

    /// Overrides the tuning options (builder style).
    #[must_use]
    pub fn with_options(mut self, options: HierOptions) -> Self {
        self.options = options;
        self
    }

    /// Installs an annealing sub-solver (builder style). Without one the
    /// placer is the pure enumeration pipeline.
    #[must_use]
    pub fn with_sub_solver(mut self, solver: Box<dyn SubSolver>) -> Self {
        self.solver = Some(solver);
        self
    }

    /// Installs a telemetry handle (builder style). Observe-only: the result
    /// is bit-identical whatever collector is installed.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Runs the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's hierarchy tree has no root.
    #[must_use]
    pub fn run(&self) -> HierResult {
        let start = Instant::now();
        let mut run_span = apls_telemetry::span!(
            self.telemetry,
            "hier",
            "hier_run",
            seed = self.options.seed,
            modules = self.circuit.netlist.module_count()
        );
        let root = self.circuit.hierarchy.root().expect("hierarchy has a root");
        // hoisted once per run; the old deterministic placer rebuilt the
        // dimension table on every recursive node visit
        let dims = self.circuit.netlist.default_dims();
        let rotatable = self.circuit.rotatable_modules();
        let ctx = Ctx {
            circuit: self.circuit,
            dims: &dims,
            rotatable: &rotatable,
            options: &self.options,
            solver: self.solver.as_deref(),
            telemetry: &self.telemetry,
        };
        let solution = solve_node(&ctx, root);
        let annealed_nodes = solution.annealed;

        // The never-lose anchor: the walk carries the pure-enumeration shape
        // function alongside the hybrid one (sharing every subtree the
        // sub-solver never touched), and the better root shape wins. This
        // mirrors the portfolio's restart-0 guarantee — the hybrid engine can
        // match the deterministic engine in the worst case, never trail it.
        let (esf, enumeration_won) = match solution.pure {
            Some(pure_esf) => {
                let hybrid_area =
                    solution.hybrid.min_area_shape().map_or(i128::MAX, EnhancedShape::area);
                let pure_area = pure_esf.min_area_shape().map_or(i128::MAX, EnhancedShape::area);
                if pure_area < hybrid_area {
                    (pure_esf, true)
                } else {
                    (solution.hybrid, false)
                }
            }
            None => (solution.hybrid, false),
        };

        let best = esf.min_area_shape().expect("root shape function is non-empty");
        let placement = placement_from_tree(self.circuit, best.tree(), &dims);
        let dims = best.dims();
        if run_span.is_recording() {
            run_span.arg("annealed_nodes", annealed_nodes as u64);
            run_span.arg("root_shapes", esf.len() as u64);
            run_span.arg("enumeration_won", enumeration_won);
        }
        HierResult {
            dims,
            area_usage: dims.area() as f64 / self.circuit.netlist.total_module_area() as f64,
            runtime: start.elapsed(),
            root_shapes: esf.len(),
            staircase: esf.shapes().iter().map(|s| (s.dims().w, s.dims().h)).collect(),
            placement,
            annealed_nodes,
            enumeration_won,
        }
    }
}

/// Shared per-run context of the recursive solve: the hoisted dimension and
/// rotation tables plus the installed solver.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    circuit: &'a BenchmarkCircuit,
    dims: &'a [Dims],
    rotatable: &'a [bool],
    options: &'a HierOptions,
    solver: Option<&'a dyn SubSolver>,
    telemetry: &'a Telemetry,
}

/// The result of solving one hierarchy node.
struct NodeSolution {
    /// Shape function of the hybrid walk (annealing refinements included).
    hybrid: EnhancedShapeFunction,
    /// The pure-enumeration shape function of the same subtree, materialised
    /// only once a sub-solver has touched the subtree — `None` means "equal
    /// to `hybrid`", which lets untouched subtrees (leaves, enumerated basic
    /// sets, and everything below the first annealed node) be computed and
    /// stored exactly once instead of re-running the whole pure pipeline for
    /// the never-lose anchor.
    pure: Option<EnhancedShapeFunction>,
    /// Sub-solver refinements in the subtree.
    annealed: usize,
}

impl NodeSolution {
    fn shared(esf: EnhancedShapeFunction) -> Self {
        NodeSolution { hybrid: esf, pure: None, annealed: 0 }
    }

    /// The pure-enumeration side (falls back to `hybrid` when shared).
    fn pure_esf(&self) -> &EnhancedShapeFunction {
        self.pure.as_ref().unwrap_or(&self.hybrid)
    }
}

/// Solves one hierarchy node bottom-up.
fn solve_node(ctx: &Ctx<'_>, node: HierarchyNodeId) -> NodeSolution {
    match ctx.circuit.hierarchy.node(node) {
        HierarchyNode::Leaf { module } => NodeSolution::shared(EnhancedShapeFunction::for_module(
            *module,
            ctx.dims,
            ctx.rotatable[module.index()],
        )),
        HierarchyNode::Internal { .. } => {
            let modules = ctx.circuit.hierarchy.leaves_under(node);
            let is_basic = ctx.circuit.hierarchy.is_basic_module_set(node);
            let enumerated = is_basic && modules.len() <= ctx.options.max_enumerated_set;
            if enumerated {
                // exact — annealing could only rediscover a subset
                let _span = apls_telemetry::span!(
                    ctx.telemetry,
                    "hier",
                    "enumerate_basic_set",
                    node = node.index() as u64,
                    modules = modules.len()
                );
                let mut esf = enumerate_basic_set(ctx, &modules);
                esf.truncate(ctx.options.max_shapes);
                return NodeSolution::shared(esf);
            }

            // solve the children in parallel (each is a pure function of its
            // subtree), then compose in schematic order — the fold order
            // fixes the result, so thread count never matters
            let children = ctx.circuit.hierarchy.children(node).to_vec();
            let solved: Vec<NodeSolution> =
                children.into_par_iter().map(|child| solve_node(ctx, child)).collect();
            let mut annealed: usize = solved.iter().map(|s| s.annealed).sum();
            let anneals_here = ctx.solver.is_some()
                && modules.len() > ctx.options.anneal_threshold
                && modules.len() <= ctx.options.anneal_cap;

            // the pure side diverges from the hybrid side only above annealed
            // nodes; below them it is the same object and costs nothing
            let (mut hybrid, mut pure) = if annealed > 0 {
                let mut h: Option<EnhancedShapeFunction> = None;
                let mut p: Option<EnhancedShapeFunction> = None;
                for child in solved {
                    match h {
                        None => {
                            // first child: move both sides out; a shared pure
                            // side needs one clone to materialise
                            p = Some(match child.pure {
                                Some(child_pure) => child_pure,
                                None => child.hybrid.clone(),
                            });
                            h = Some(child.hybrid);
                        }
                        Some(prev_h) => {
                            let prev_p = p.take().expect("pure fold tracks hybrid fold");
                            p = Some(prev_p.add_parallel(child.pure_esf(), ctx.dims));
                            h = Some(prev_h.add_parallel(&child.hybrid, ctx.dims));
                        }
                    }
                }
                (h.unwrap_or_default(), p)
            } else {
                let mut h: Option<EnhancedShapeFunction> = None;
                for child in solved {
                    h = Some(match h {
                        None => child.hybrid,
                        Some(prev) => prev.add_parallel(&child.hybrid, ctx.dims),
                    });
                }
                let h = h.unwrap_or_default();
                let p = if anneals_here { Some(h.clone()) } else { None };
                (h, p)
            };

            if anneals_here {
                let problem = SubProblem {
                    circuit: ctx.circuit,
                    node,
                    modules: &modules,
                    module_dims: ctx.dims,
                    rotatable: ctx.rotatable,
                    seed: ctx.options.seed,
                    fast_schedule: ctx.options.fast_schedule,
                    aspect_targets: &ctx.options.aspect_targets,
                };
                let solver = ctx.solver.expect("anneals_here");
                let _span = apls_telemetry::span!(
                    ctx.telemetry,
                    "hier",
                    "sub_solve",
                    node = node.index() as u64,
                    modules = modules.len(),
                    solver = solver.name()
                );
                hybrid.merge_from(solver.solve(&problem));
                annealed += 1;
            }
            hybrid.truncate(ctx.options.max_shapes);
            if let Some(p) = &mut pure {
                p.truncate(ctx.options.max_shapes);
            }
            NodeSolution { hybrid, pure, annealed }
        }
    }
}

/// Exhaustive enumeration of every B*-tree (and rotation assignment) of a
/// basic module set.
fn enumerate_basic_set(ctx: &Ctx<'_>, modules: &[ModuleId]) -> EnhancedShapeFunction {
    use apls_btree::counting::enumerate_trees;
    let mut esf = EnhancedShapeFunction::new();
    let rotatable: Vec<bool> = modules.iter().map(|&m| ctx.rotatable[m.index()]).collect();
    let rot_count = 1usize << rotatable.iter().filter(|&&r| r).count();
    for tree in enumerate_trees(modules) {
        for rot_mask in 0..rot_count {
            let mut t: BStarTree = tree.clone();
            let mut bit = 0;
            for (i, &m) in modules.iter().enumerate() {
                if rotatable[i] {
                    if (rot_mask >> bit) & 1 == 1 {
                        t.rotate_node(m);
                    }
                    bit += 1;
                }
            }
            esf.insert(EnhancedShape::from_tree(t, ctx.dims));
        }
    }
    esf
}

/// Extracts the full placement realised by a root-shape B*-tree.
pub(crate) fn placement_from_tree(
    circuit: &BenchmarkCircuit,
    tree: &BStarTree,
    module_dims: &[Dims],
) -> Placement {
    let packed = pack_btree(tree, module_dims);
    let mut placement = Placement::new(&circuit.netlist);
    for &(m, r) in packed.rects() {
        let orientation = if tree.is_rotated(m) { Orientation::R90 } else { Orientation::R0 };
        placement.place(m, r, orientation, 0);
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::benchmarks::{self, miller_opamp_fig6};

    #[test]
    fn hybrid_run_produces_a_legal_complete_placement() {
        let circuit = miller_opamp_fig6();
        let mut options = HierOptions::default().with_seed(7).with_fast_schedule(true);
        options.anneal_threshold = 4;
        let result = HierPlacer::new(&circuit)
            .with_options(options)
            .with_sub_solver(Box::new(BTreeAnnealSolver))
            .run();
        assert!(result.placement.is_complete());
        let metrics = result.placement.metrics(&circuit.netlist);
        assert_eq!(metrics.overlap_area, 0);
        assert_eq!(metrics.bounding_area, result.dims.area());
        assert!(result.annealed_nodes > 0, "the miller root must qualify for annealing");
    }

    #[test]
    fn hybrid_never_loses_to_pure_enumeration() {
        for circuit in [miller_opamp_fig6(), benchmarks::comparator_v2()] {
            let pure = HierPlacer::new(&circuit).run();
            let hybrid = HierPlacer::new(&circuit)
                .with_options(HierOptions::default().with_seed(3).with_fast_schedule(true))
                .with_sub_solver(Box::new(BTreeAnnealSolver))
                .run();
            assert!(
                hybrid.dims.area() <= pure.dims.area(),
                "{}: hybrid {:?} lost to pure {:?}",
                circuit.name,
                hybrid.dims,
                pure.dims
            );
        }
    }

    #[test]
    fn hybrid_runs_are_seed_reproducible() {
        let circuit = benchmarks::miller_v2();
        let run = || {
            HierPlacer::new(&circuit)
                .with_options(HierOptions::default().with_seed(11).with_fast_schedule(true))
                .with_sub_solver(Box::new(BTreeAnnealSolver))
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.dims, b.dims);
        assert_eq!(a.staircase, b.staircase);
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn seqpair_sub_solver_produces_legal_shapes() {
        let circuit = miller_opamp_fig6();
        let mut options = HierOptions::default().with_seed(5).with_fast_schedule(true);
        options.anneal_threshold = 4;
        let result = HierPlacer::new(&circuit)
            .with_options(options)
            .with_sub_solver(Box::new(SeqPairAnnealSolver))
            .run();
        assert!(result.placement.is_complete());
        assert_eq!(result.placement.metrics(&circuit.netlist).overlap_area, 0);
    }

    #[test]
    fn tree_reconstruction_round_trips_an_admissible_placement() {
        // a 2x2 grid packing: reconstruction + repack must reproduce it
        let rects = vec![
            (ModuleId::from_index(0), Rect::new(0, 0, 20, 10)),
            (ModuleId::from_index(1), Rect::new(20, 0, 30, 10)),
            (ModuleId::from_index(2), Rect::new(0, 10, 20, 25)),
            (ModuleId::from_index(3), Rect::new(20, 10, 30, 20)),
        ];
        let dims = vec![Dims::new(20, 10), Dims::new(10, 10), Dims::new(20, 15), Dims::new(10, 10)];
        let tree = tree_from_rects(&rects);
        let packed = pack_btree(&tree, &dims);
        assert_eq!(packed.dims(), Dims::new(30, 25));
    }
}
