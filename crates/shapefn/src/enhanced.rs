//! Enhanced shape functions: shapes that carry their B*-tree.

use apls_btree::{pack_btree, BStarTree};
use apls_circuit::ModuleId;
use apls_geometry::Dims;
use rayon::prelude::*;

/// One realisable placement of a sub-circuit: its bounding box together with
/// the B*-tree that produces it.
///
/// Carrying the tree is what distinguishes the *enhanced* shape function from
/// the regular one: when two enhanced shapes are added, their trees are merged
/// and repacked, so the outlines of the operands can interleave and the result
/// can be strictly smaller than the bounding-box sum (the `w_imp` of Fig. 7 in
/// the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnhancedShape {
    dims: Dims,
    tree: BStarTree,
}

impl EnhancedShape {
    /// Creates an enhanced shape by packing a tree with the given module
    /// dimension table.
    #[must_use]
    pub fn from_tree(tree: BStarTree, module_dims: &[Dims]) -> Self {
        let packed = pack_btree(&tree, module_dims);
        EnhancedShape { dims: packed.dims(), tree }
    }

    /// Bounding box of the placement.
    #[must_use]
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Bounding-box area.
    #[must_use]
    pub fn area(&self) -> i128 {
        self.dims.area()
    }

    /// The B*-tree realising this shape.
    #[must_use]
    pub fn tree(&self) -> &BStarTree {
        &self.tree
    }
}

/// An enhanced shape function: the non-dominated set of [`EnhancedShape`]s of
/// a sub-circuit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnhancedShapeFunction {
    shapes: Vec<EnhancedShape>,
}

impl EnhancedShapeFunction {
    /// An empty enhanced shape function.
    #[must_use]
    pub fn new() -> Self {
        EnhancedShapeFunction::default()
    }

    /// The enhanced shape function of a single module: its default orientation
    /// plus, when `rotatable`, the 90°-rotated one.
    #[must_use]
    pub fn for_module(module: ModuleId, module_dims: &[Dims], rotatable: bool) -> Self {
        let mut esf = EnhancedShapeFunction::new();
        esf.insert(EnhancedShape::from_tree(BStarTree::left_chain(&[module]), module_dims));
        if rotatable {
            let mut rotated = BStarTree::left_chain(&[module]);
            rotated.rotate_node(module);
            esf.insert(EnhancedShape::from_tree(rotated, module_dims));
        }
        esf
    }

    /// Inserts a candidate shape, pruning dominated entries.
    pub fn insert(&mut self, shape: EnhancedShape) {
        if self.shapes.iter().any(|s| shape.dims.dominates(s.dims) && shape.dims != s.dims) {
            return;
        }
        if self.shapes.iter().any(|s| s.dims == shape.dims) {
            return; // keep one representative per footprint
        }
        self.shapes.retain(|s| !s.dims.dominates(shape.dims) || s.dims == shape.dims);
        self.shapes.push(shape);
        self.shapes.sort_by_key(|s| (s.dims.w, s.dims.h));
    }

    /// The staircase of shapes, sorted by increasing width.
    #[must_use]
    pub fn shapes(&self) -> &[EnhancedShape] {
        &self.shapes
    }

    /// Number of non-dominated shapes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Returns `true` when no shape is realisable.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// The minimum-area shape.
    #[must_use]
    pub fn min_area_shape(&self) -> Option<&EnhancedShape> {
        self.shapes.iter().min_by_key(|s| s.area())
    }

    /// Enhanced addition of two shape functions.
    ///
    /// For every pair of operand shapes three candidate combinations are
    /// packed and inserted:
    ///
    /// * *horizontal interleave* — the second tree is grafted onto the end of
    ///   the first tree's left-child spine, letting the second operand slide
    ///   into concavities of the first (this is the enhanced addition of
    ///   Fig. 7);
    /// * *horizontal abut* — the second tree is grafted onto the node with the
    ///   largest right edge, which reproduces the plain bounding-box addition
    ///   exactly and guarantees the enhanced result is never worse than the
    ///   regular one;
    /// * *vertical stack/interleave* — the second tree is grafted onto the end
    ///   of the first tree's right-child spine (placed above, possibly sinking
    ///   into the skyline).
    #[must_use]
    pub fn add(
        &self,
        other: &EnhancedShapeFunction,
        module_dims: &[Dims],
    ) -> EnhancedShapeFunction {
        let mut out = EnhancedShapeFunction::new();
        out.shapes.reserve(self.shapes.len() + other.shapes.len());
        for a in &self.shapes {
            for b in &other.shapes {
                for merged in merge_trees(&a.tree, &b.tree, module_dims) {
                    out.insert(merged);
                }
            }
        }
        out
    }

    /// [`EnhancedShapeFunction::add`] with the candidate packings fanned out
    /// over rayon workers.
    ///
    /// Candidates are collected per operand pair and inserted in exactly the
    /// order the sequential `add` produces them, so the two methods return
    /// bit-identical shape functions — parallelism only changes wall time.
    /// Small operands fall through to the sequential path.
    #[must_use]
    pub fn add_parallel(
        &self,
        other: &EnhancedShapeFunction,
        module_dims: &[Dims],
    ) -> EnhancedShapeFunction {
        /// Below this many tree merges the fan-out overhead dominates.
        const MIN_PARALLEL_PAIRS: usize = 32;
        if self.shapes.len() * other.shapes.len() < MIN_PARALLEL_PAIRS {
            return self.add(other, module_dims);
        }
        let pairs: Vec<(usize, usize)> = (0..self.shapes.len())
            .flat_map(|i| (0..other.shapes.len()).map(move |j| (i, j)))
            .collect();
        let merged: Vec<Vec<EnhancedShape>> = pairs
            .into_par_iter()
            .map(|(i, j)| merge_trees(&self.shapes[i].tree, &other.shapes[j].tree, module_dims))
            .collect();
        let mut out = EnhancedShapeFunction::new();
        out.shapes.reserve(self.shapes.len() + other.shapes.len());
        for batch in merged {
            for shape in batch {
                out.insert(shape);
            }
        }
        out
    }

    /// Union with another enhanced shape function (alternative realisations of
    /// the same module set).
    #[must_use]
    pub fn union(&self, other: &EnhancedShapeFunction) -> EnhancedShapeFunction {
        let mut out = self.clone();
        out.shapes.reserve(other.shapes.len());
        for s in other.shapes() {
            out.insert(s.clone());
        }
        out
    }

    /// Consuming union: moves `other`'s shapes into `self` instead of cloning
    /// them (the composition hot path of the hierarchical driver unions whole
    /// sub-solver results, whose realising trees can be large).
    pub fn merge_from(&mut self, other: EnhancedShapeFunction) {
        self.shapes.reserve(other.shapes.len());
        for s in other.shapes {
            self.insert(s);
        }
    }

    /// Caps the staircase at `max_shapes` entries (even spread over widths,
    /// the minimum-area shape always kept).
    pub fn truncate(&mut self, max_shapes: usize) {
        if self.shapes.len() <= max_shapes || max_shapes == 0 {
            return;
        }
        let min_area_dims = self.min_area_shape().map(|s| s.dims);
        let n = self.shapes.len();
        let mut keep_indices: Vec<usize> =
            (0..max_shapes).map(|k| k * (n - 1) / (max_shapes - 1).max(1)).collect();
        if let Some(md) = min_area_dims {
            if let Some(idx) = self.shapes.iter().position(|s| s.dims == md) {
                keep_indices.push(idx);
            }
        }
        keep_indices.sort_unstable();
        keep_indices.dedup();
        // drain by moving: the kept shapes (and their realising trees) are
        // reused, not cloned
        let mut kept = Vec::with_capacity(keep_indices.len());
        for (i, shape) in std::mem::take(&mut self.shapes).into_iter().enumerate() {
            if keep_indices.binary_search(&i).is_ok() {
                kept.push(shape);
            }
        }
        self.shapes = kept;
    }
}

/// Grafts `b` onto `a` in the three ways described in
/// [`EnhancedShapeFunction::add`] and packs each candidate.
fn merge_trees(a: &BStarTree, b: &BStarTree, module_dims: &[Dims]) -> Vec<EnhancedShape> {
    if a.is_empty() {
        return vec![EnhancedShape::from_tree(b.clone(), module_dims)];
    }
    if b.is_empty() {
        return vec![EnhancedShape::from_tree(a.clone(), module_dims)];
    }
    let packed_a = pack_btree(a, module_dims);
    // anchor modules in `a` for the three graft points
    let left_spine_end = {
        // the node reached by following left children from the root has the
        // largest x of the bottom row; equivalently the module whose rect ends
        // the first (pre-order) left chain. We identify it as the module whose
        // rectangle has the maximal x_max among those with y_min == 0 on the
        // left spine; walking the preorder is simpler: the left spine is the
        // maximal prefix of the preorder reachable through left children.
        // `BStarTree` does not expose child pointers, so use geometry instead:
        // the module with the largest x_max among those at y_min == 0.
        packed_a
            .rects()
            .iter()
            .filter(|(_, r)| r.y_min == 0)
            .max_by_key(|(_, r)| r.x_max)
            .map(|(m, _)| *m)
            .expect("non-empty packing")
    };
    let rightmost = packed_a
        .rects()
        .iter()
        .max_by_key(|(_, r)| r.x_max)
        .map(|(m, _)| *m)
        .expect("non-empty packing");
    let top_spine_end = packed_a
        .rects()
        .iter()
        .filter(|(_, r)| r.x_min == 0)
        .max_by_key(|(_, r)| r.y_max)
        .map(|(m, _)| *m)
        .expect("non-empty packing");

    let mut out = Vec::with_capacity(3);
    let grafts = [
        (left_spine_end, true), // horizontal interleave: left child slot
        (rightmost, true),      // horizontal abut: left child of the widest node
        (top_spine_end, false), // vertical: right child slot of the tallest x=0 node
    ];
    for (anchor, as_left) in grafts {
        if let Some(shape) = graft(a, b, anchor, as_left, module_dims) {
            out.push(shape);
        }
    }
    out
}

/// Builds a combined tree by grafting a copy of `b` (structure and rotation
/// flags preserved) under `anchor` in a copy of `a`, then packing it.
fn graft(
    a: &BStarTree,
    b: &BStarTree,
    anchor: ModuleId,
    as_left: bool,
    module_dims: &[Dims],
) -> Option<EnhancedShape> {
    let mut combined = a.clone();
    if !combined.graft(b, anchor, as_left) {
        return None;
    }
    Some(EnhancedShape::from_tree(combined, module_dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_geometry::total_overlap_area;

    fn id(i: usize) -> ModuleId {
        ModuleId::from_index(i)
    }

    #[test]
    fn module_esf_has_rotation_variant() {
        let dims = vec![Dims::new(30, 10)];
        let esf = EnhancedShapeFunction::for_module(id(0), &dims, true);
        assert_eq!(esf.len(), 2);
        let fixed = EnhancedShapeFunction::for_module(id(0), &dims, false);
        assert_eq!(fixed.len(), 1);
    }

    #[test]
    fn enhanced_addition_never_beats_total_area_and_never_overlaps() {
        let dims = vec![Dims::new(20, 10), Dims::new(10, 30), Dims::new(15, 15)];
        let a = EnhancedShapeFunction::for_module(id(0), &dims, true);
        let b = EnhancedShapeFunction::for_module(id(1), &dims, true);
        let c = EnhancedShapeFunction::for_module(id(2), &dims, false);
        let ab = a.add(&b, &dims);
        let abc = ab.add(&c, &dims);
        assert!(!abc.is_empty());
        let total: i128 = dims.iter().map(|d| d.area()).sum();
        for shape in abc.shapes() {
            assert!(shape.area() >= total);
            let packed = pack_btree(shape.tree(), &dims);
            assert_eq!(packed.dims(), shape.dims());
            let rects: Vec<_> = packed.rects().iter().map(|(_, r)| *r).collect();
            assert_eq!(rects.len(), 3);
            assert_eq!(total_overlap_area(&rects), 0);
        }
    }

    #[test]
    fn enhanced_addition_matches_or_beats_regular_addition() {
        use crate::ShapeFunction;
        // an L-shaped first operand (tall module next to a short one) leaves a
        // concavity that the enhanced addition can exploit
        let dims = vec![Dims::new(10, 40), Dims::new(30, 10), Dims::new(25, 20)];
        let a01 = {
            let a = EnhancedShapeFunction::for_module(id(0), &dims, false);
            let b = EnhancedShapeFunction::for_module(id(1), &dims, false);
            a.add(&b, &dims)
        };
        let c = EnhancedShapeFunction::for_module(id(2), &dims, false);
        let enhanced = a01.add(&c, &dims);

        let ra01 = ShapeFunction::for_module(dims[0], false)
            .add_both(&ShapeFunction::for_module(dims[1], false));
        let regular = ra01.add_both(&ShapeFunction::for_module(dims[2], false));

        let best_enhanced = enhanced.min_area_shape().unwrap().area();
        let best_regular = regular.min_area_shape().unwrap().dims.area();
        assert!(
            best_enhanced <= best_regular,
            "enhanced {best_enhanced} should not exceed regular {best_regular}"
        );
    }

    #[test]
    fn fig7_interleaving_improves_width() {
        // Fig. 7: the first operand has a notch (a wide low module under a
        // narrow tall one); horizontally adding a short module can slide into
        // the notch, so the combined width improves over the bounding-box sum.
        let dims = vec![
            Dims::new(40, 12), // wide low base
            Dims::new(16, 30), // narrow tall tower (stacked at x = 0)
            Dims::new(20, 14), // the module to add: fits right of the tower, above the base
        ];
        let base = EnhancedShapeFunction::for_module(id(0), &dims, false);
        let tower = EnhancedShapeFunction::for_module(id(1), &dims, false);
        let operand = base.add(&tower, &dims);
        let addend = EnhancedShapeFunction::for_module(id(2), &dims, false);
        let combined = operand.add(&addend, &dims);

        let operand_dims = operand.min_area_shape().unwrap().dims();
        let bbox_sum_width = operand_dims.w + dims[2].w;
        let best_width = combined.shapes().iter().map(|s| s.dims().w).min().unwrap();
        assert!(
            best_width < bbox_sum_width,
            "expected interleaving to beat the bounding-box width {bbox_sum_width}, got {best_width}"
        );
    }

    #[test]
    fn pruning_keeps_the_pareto_front() {
        let dims = vec![Dims::new(20, 10), Dims::new(10, 30)];
        let a = EnhancedShapeFunction::for_module(id(0), &dims, true);
        let b = EnhancedShapeFunction::for_module(id(1), &dims, true);
        let sum = a.add(&b, &dims);
        for (i, x) in sum.shapes().iter().enumerate() {
            for (j, y) in sum.shapes().iter().enumerate() {
                if i != j {
                    assert!(
                        !(x.dims().dominates(y.dims()) && x.dims() != y.dims()),
                        "{:?} dominates {:?}",
                        x.dims(),
                        y.dims()
                    );
                }
            }
        }
    }

    #[test]
    fn truncate_bounds_the_size() {
        let dims: Vec<Dims> = (0..6).map(|i| Dims::new(10 + i, 40 - 3 * i)).collect();
        let mut esf = EnhancedShapeFunction::for_module(id(0), &dims, true);
        for i in 1..6 {
            esf = esf.add(&EnhancedShapeFunction::for_module(id(i), &dims, true), &dims);
        }
        let before = esf.len();
        esf.truncate(4);
        assert!(esf.len() <= 5);
        assert!(esf.len() <= before);
        assert!(esf.min_area_shape().is_some());
    }
}
