//! Hierarchically bounded enumeration: the deterministic placer.
//!
//! Section IV of the paper bounds the intractable B*-tree enumeration
//! (57,657,600 placements for just 8 modules) with the circuit hierarchy:
//!
//! 1. every *basic module set* — a hierarchy node whose children are all
//!    modules — is small (a differential pair, a current mirror, …), so **all**
//!    of its placements can be enumerated and stored as a shape function;
//! 2. the hierarchy tree then guides the combination of those partial
//!    solutions bottom-up: the shape functions of a node's children are added
//!    (in both directions), pruned, and passed upward;
//! 3. the minimum-area shape at the root is the final placement.
//!
//! Running the flow once with [`ShapeModel::Enhanced`] and once with
//! [`ShapeModel::Regular`] reproduces the ESF-vs-RSF comparison of Table I and
//! the staircase comparison of Fig. 8.

use crate::hier::{HierOptions, HierPlacer};
use crate::ShapeFunction;
use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_circuit::{HierarchyNode, HierarchyNodeId, ModuleId, Placement};
use apls_geometry::Dims;
use std::time::Instant;

/// Which shape model the deterministic placer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeModel {
    /// Enhanced shape functions (shapes carry B*-trees; additions interleave).
    Enhanced,
    /// Regular shape functions (bounding boxes only).
    Regular,
}

/// Tuning options of the deterministic placer.
#[derive(Debug, Clone, Copy)]
pub struct PlacerOptions {
    /// Maximum number of shapes kept per shape function after every addition.
    pub max_shapes: usize,
    /// Basic module sets larger than this are not exhaustively enumerated;
    /// their modules are combined pairwise instead (the generators keep basic
    /// sets at ≤ 4 modules, so this is a safety valve, not the common path).
    pub max_enumerated_set: usize,
}

impl Default for PlacerOptions {
    fn default() -> Self {
        PlacerOptions { max_shapes: 24, max_enumerated_set: 5 }
    }
}

/// Result of one deterministic placement run.
#[derive(Debug, Clone)]
pub struct DeterministicResult {
    /// Shape model used.
    pub model: ShapeModel,
    /// Footprint of the minimum-area root shape.
    pub dims: Dims,
    /// Bounding-box area of the root shape divided by the total module area —
    /// the "area usage" column of Table I.
    pub area_usage: f64,
    /// Wall-clock runtime of the run.
    pub runtime: std::time::Duration,
    /// Number of shapes in the root shape function.
    pub root_shapes: usize,
    /// The root shape-function staircase as `(width, height)` pairs (Fig. 8).
    pub staircase: Vec<(i64, i64)>,
    /// The final placement (only available for the enhanced model, whose root
    /// shape carries the realising B*-tree).
    pub placement: Option<Placement>,
}

/// The deterministic, enumeration-based placer of Section IV.
///
/// Since the hierarchical pipeline landed, this placer is a thin adapter: the
/// enhanced model runs [`HierPlacer`](crate::hier::HierPlacer) in its
/// pure-enumeration configuration (no annealing sub-solver), whose results
/// are bit-identical to the original recursive implementation (pinned by the
/// `hier_equivalence` integration tests). The regular bounding-box model
/// stays local because regular shape functions carry no realising trees.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct DeterministicPlacer<'a> {
    circuit: &'a BenchmarkCircuit,
    options: PlacerOptions,
}

impl<'a> DeterministicPlacer<'a> {
    /// Creates a placer for a benchmark circuit with default options.
    #[must_use]
    pub fn new(circuit: &'a BenchmarkCircuit) -> Self {
        DeterministicPlacer { circuit, options: PlacerOptions::default() }
    }

    /// Overrides the tuning options (builder style).
    #[must_use]
    pub fn with_options(mut self, options: PlacerOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the deterministic placement with the chosen shape model.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's hierarchy tree has no root.
    #[must_use]
    pub fn run(&self, model: ShapeModel) -> DeterministicResult {
        let start = Instant::now();
        let total_area = self.circuit.netlist.total_module_area();

        let (dims, root_shapes, staircase, placement) = match model {
            ShapeModel::Enhanced => {
                // the pure-enumeration configuration of the hierarchical
                // pipeline (no annealing sub-solver)
                let result = HierPlacer::new(self.circuit)
                    .with_options(HierOptions::pure(self.options))
                    .run();
                (result.dims, result.root_shapes, result.staircase, Some(result.placement))
            }
            ShapeModel::Regular => {
                let root = self.circuit.hierarchy.root().expect("hierarchy has a root");
                // hoisted once per run (the rotation check walks every
                // constraint group, so per-node rebuilds were O(nodes·groups))
                let rotatable = self.circuit.rotatable_modules();
                let dims = self.circuit.netlist.default_dims();
                let sf = self.regular_of(root, &dims, &rotatable);
                let best = sf.min_area_shape().expect("root shape function is non-empty");
                (
                    best.dims,
                    sf.len(),
                    sf.shapes().iter().map(|s| (s.dims.w, s.dims.h)).collect(),
                    None,
                )
            }
        };

        DeterministicResult {
            model,
            dims,
            area_usage: dims.area() as f64 / total_area as f64,
            runtime: start.elapsed(),
            root_shapes,
            staircase,
            placement,
        }
    }

    // ---------------------------------------------------------------- regular

    fn regular_of(
        &self,
        node: HierarchyNodeId,
        dims: &[Dims],
        rotatable: &[bool],
    ) -> ShapeFunction {
        match self.circuit.hierarchy.node(node) {
            HierarchyNode::Leaf { module } => {
                ShapeFunction::for_module(dims[module.index()], rotatable[module.index()])
            }
            HierarchyNode::Internal { .. } => {
                let modules = self.circuit.hierarchy.leaves_under(node);
                let is_basic = self.circuit.hierarchy.is_basic_module_set(node);
                let mut sf = if is_basic && modules.len() <= self.options.max_enumerated_set {
                    self.enumerate_basic_set_regular(&modules, dims, rotatable)
                } else {
                    let mut acc: Option<ShapeFunction> = None;
                    for &child in self.circuit.hierarchy.children(node) {
                        let child_sf = self.regular_of(child, dims, rotatable);
                        acc = Some(match acc {
                            None => child_sf,
                            Some(prev) => prev.add_both(&child_sf),
                        });
                    }
                    acc.unwrap_or_default()
                };
                sf.truncate(self.options.max_shapes);
                sf
            }
        }
    }

    /// For regular shape functions the basic-set enumeration degenerates to
    /// folding the module shape functions with bounding-box additions in both
    /// directions (bounding boxes cannot express anything richer).
    fn enumerate_basic_set_regular(
        &self,
        modules: &[ModuleId],
        dims: &[Dims],
        rotatable: &[bool],
    ) -> ShapeFunction {
        let mut acc: Option<ShapeFunction> = None;
        for &m in modules {
            let sf = ShapeFunction::for_module(dims[m.index()], rotatable[m.index()]);
            acc = Some(match acc {
                None => sf,
                Some(prev) => prev.add_both(&sf),
            });
        }
        acc.unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::benchmarks::{self, miller_opamp_fig6};

    #[test]
    fn enhanced_run_produces_a_legal_complete_placement() {
        let circuit = miller_opamp_fig6();
        let result = DeterministicPlacer::new(&circuit).run(ShapeModel::Enhanced);
        let placement = result.placement.expect("enhanced model returns a placement");
        assert!(placement.is_complete());
        let metrics = placement.metrics(&circuit.netlist);
        assert_eq!(metrics.overlap_area, 0);
        assert_eq!(metrics.bounding_area, result.dims.area());
        assert!((metrics.area_usage - result.area_usage).abs() < 1e-9);
    }

    #[test]
    fn enhanced_never_loses_to_regular() {
        for circuit in [miller_opamp_fig6(), benchmarks::comparator_v2()] {
            let placer = DeterministicPlacer::new(&circuit);
            let enhanced = placer.run(ShapeModel::Enhanced);
            let regular = placer.run(ShapeModel::Regular);
            assert!(
                enhanced.area_usage <= regular.area_usage + 1e-9,
                "{}: ESF {} vs RSF {}",
                circuit.name,
                enhanced.area_usage,
                regular.area_usage
            );
            assert!(enhanced.area_usage >= 1.0);
            assert!(regular.area_usage >= 1.0);
        }
    }

    #[test]
    fn staircases_are_pareto_fronts() {
        let circuit = benchmarks::comparator_v2();
        let placer = DeterministicPlacer::new(&circuit);
        for model in [ShapeModel::Enhanced, ShapeModel::Regular] {
            let result = placer.run(model);
            assert!(!result.staircase.is_empty());
            for pair in result.staircase.windows(2) {
                assert!(pair[0].0 < pair[1].0, "{model:?}: widths must increase");
                assert!(pair[0].1 > pair[1].1, "{model:?}: heights must decrease");
            }
        }
    }

    #[test]
    fn results_are_deterministic() {
        let circuit = benchmarks::miller_v2();
        let placer = DeterministicPlacer::new(&circuit);
        let a = placer.run(ShapeModel::Enhanced);
        let b = placer.run(ShapeModel::Enhanced);
        assert_eq!(a.dims, b.dims);
        assert_eq!(a.staircase, b.staircase);
    }

    #[test]
    fn tighter_shape_budget_is_never_better() {
        let circuit = benchmarks::comparator_v2();
        let generous = DeterministicPlacer::new(&circuit)
            .with_options(PlacerOptions { max_shapes: 32, ..PlacerOptions::default() })
            .run(ShapeModel::Enhanced);
        let tight = DeterministicPlacer::new(&circuit)
            .with_options(PlacerOptions { max_shapes: 2, ..PlacerOptions::default() })
            .run(ShapeModel::Enhanced);
        assert!(generous.area_usage <= tight.area_usage + 1e-9);
    }
}
