//! Regular and enhanced shape functions with hierarchically bounded
//! enumeration (deterministic analog placement).
//!
//! This crate implements Section IV of the DATE 2009 survey:
//!
//! * [`ShapeFunction`] — the classic shape function of Otten (reference [23]):
//!   a dominance-pruned staircase of `(width, height)` bounding boxes, with
//!   horizontal and vertical additions;
//! * [`EnhancedShapeFunction`] — the *enhanced* shape function of reference
//!   [25]: every shape additionally carries the B*-tree of its placement, so
//!   additions can merge the trees and repack, letting the two operands
//!   interleave (Fig. 7's `w_imp` improvement) instead of just abutting
//!   bounding boxes;
//! * [`DeterministicPlacer`] — hierarchically bounded enumeration: all
//!   placements of every *basic module set* (leaf group of the layout design
//!   hierarchy) are enumerated, stored as (enhanced) shape functions, and
//!   combined bottom-up along the hierarchy tree; the minimum-area root shape
//!   is the final placement;
//! * [`hier`] — the hierarchical **cross-engine** pipeline generalising that
//!   flow: every hierarchy node is solved by a pluggable [`SubSolver`]
//!   (exhaustive enumeration for small basic sets, pinned-seed B*-tree or
//!   sequence-pair annealing for larger sets), abstracted as an enhanced
//!   shape function, and composed bottom-up with rayon-parallel candidate
//!   packing. [`DeterministicPlacer`] is its pure-enumeration configuration;
//!   the hybrid configuration is the portfolio's fourth engine (`hier`).
//!
//! The deterministic placer is the engine behind Table I and Fig. 8 of the
//! paper (experiments E1 and E6).
//!
//! # Example
//!
//! ```
//! use apls_circuit::benchmarks::miller_opamp_fig6;
//! use apls_shapefn::{DeterministicPlacer, ShapeModel};
//!
//! let circuit = miller_opamp_fig6();
//! let placer = DeterministicPlacer::new(&circuit);
//! let enhanced = placer.run(ShapeModel::Enhanced);
//! let regular = placer.run(ShapeModel::Regular);
//! // the enhanced model can only be as good or better
//! assert!(enhanced.area_usage <= regular.area_usage + 1e-9);
//! assert_eq!(enhanced.placement.as_ref().unwrap().metrics(&circuit.netlist).overlap_area, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod enhanced;
mod enumerate;
pub mod hier;
mod shape;

pub use enhanced::{EnhancedShape, EnhancedShapeFunction};
pub use enumerate::{DeterministicPlacer, DeterministicResult, PlacerOptions, ShapeModel};
pub use hier::{
    BTreeAnnealSolver, HierOptions, HierPlacer, HierResult, SeqPairAnnealSolver, SubProblem,
    SubSolver,
};
pub use shape::{Shape, ShapeFunction};
