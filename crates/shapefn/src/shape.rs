//! Regular (bounding-box) shape functions.

use apls_geometry::{Coord, Dims};

/// One realisable bounding box of a (sub-)placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Bounding-box footprint.
    pub dims: Dims,
}

impl Shape {
    /// Creates a shape from a footprint.
    #[must_use]
    pub fn new(dims: Dims) -> Self {
        Shape { dims }
    }

    /// Bounding-box area.
    #[must_use]
    pub fn area(&self) -> i128 {
        self.dims.area()
    }
}

/// A shape function: the set of non-dominated bounding boxes realisable by a
/// sub-circuit.
///
/// Shapes whose width *and* height are both at least as large as another
/// shape's are redundant and removed ("a placement which has a greater height,
/// while having the same or even a greater width than some other shape in the
/// function is considered to be redundant", Section IV.A of the paper). The
/// remaining shapes form a staircase: sorted by increasing width, heights
/// strictly decrease.
///
/// # Example
///
/// ```
/// use apls_shapefn::ShapeFunction;
/// use apls_geometry::Dims;
///
/// let a = ShapeFunction::from_dims([Dims::new(10, 20), Dims::new(20, 10)]);
/// let b = ShapeFunction::from_dims([Dims::new(5, 5)]);
/// let h = a.add_horizontal(&b);
/// assert!(h.min_area_shape().unwrap().dims.area() <= 20 * 25);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShapeFunction {
    /// Staircase of shapes, sorted by increasing width / decreasing height.
    shapes: Vec<Shape>,
}

impl ShapeFunction {
    /// An empty shape function (no realisable shape).
    #[must_use]
    pub fn new() -> Self {
        ShapeFunction::default()
    }

    /// Builds a shape function from candidate footprints, pruning dominated
    /// ones.
    #[must_use]
    pub fn from_dims<I: IntoIterator<Item = Dims>>(dims: I) -> Self {
        let mut sf = ShapeFunction::new();
        for d in dims {
            sf.insert(Shape::new(d));
        }
        sf
    }

    /// The shape function of a single module: its footprint plus, when
    /// `rotatable`, the transposed footprint.
    #[must_use]
    pub fn for_module(dims: Dims, rotatable: bool) -> Self {
        if rotatable {
            ShapeFunction::from_dims([dims, dims.rotated()])
        } else {
            ShapeFunction::from_dims([dims])
        }
    }

    /// Inserts a candidate shape, keeping the staircase pruned.
    pub fn insert(&mut self, shape: Shape) {
        if self.shapes.iter().any(|s| shape.dims.dominates(s.dims) && shape.dims != s.dims) {
            return; // dominated by an existing shape
        }
        if self.shapes.contains(&shape) {
            return;
        }
        // remove shapes dominated by the new one
        self.shapes.retain(|s| !s.dims.dominates(shape.dims) || s.dims == shape.dims);
        self.shapes.push(shape);
        self.shapes.sort_by_key(|s| (s.dims.w, s.dims.h));
    }

    /// The shapes of the staircase, sorted by increasing width.
    #[must_use]
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Number of non-dominated shapes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Returns `true` when no shape is realisable.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// The shape with the smallest bounding-box area.
    #[must_use]
    pub fn min_area_shape(&self) -> Option<Shape> {
        self.shapes.iter().copied().min_by_key(Shape::area)
    }

    /// Horizontal addition: every pair of operand shapes abuts side by side
    /// (`w = w₁ + w₂`, `h = max(h₁, h₂)`).
    #[must_use]
    pub fn add_horizontal(&self, other: &ShapeFunction) -> ShapeFunction {
        self.add_with(other, |a, b| Dims::new(a.w + b.w, a.h.max(b.h)))
    }

    /// Vertical addition: every pair of operand shapes stacks
    /// (`w = max(w₁, w₂)`, `h = h₁ + h₂`).
    #[must_use]
    pub fn add_vertical(&self, other: &ShapeFunction) -> ShapeFunction {
        self.add_with(other, |a, b| Dims::new(a.w.max(b.w), a.h + b.h))
    }

    /// Union of horizontal and vertical additions (the combination step of the
    /// deterministic placer when the stacking direction is free).
    #[must_use]
    pub fn add_both(&self, other: &ShapeFunction) -> ShapeFunction {
        let mut out = self.add_horizontal(other);
        for s in self.add_vertical(other).shapes() {
            out.insert(*s);
        }
        out
    }

    fn add_with<F: Fn(Dims, Dims) -> Dims>(&self, other: &ShapeFunction, f: F) -> ShapeFunction {
        let mut out = ShapeFunction::new();
        for a in &self.shapes {
            for b in &other.shapes {
                out.insert(Shape::new(f(a.dims, b.dims)));
            }
        }
        out
    }

    /// Union with another shape function (alternative realisations of the same
    /// sub-circuit).
    #[must_use]
    pub fn union(&self, other: &ShapeFunction) -> ShapeFunction {
        let mut out = self.clone();
        for s in other.shapes() {
            out.insert(*s);
        }
        out
    }

    /// Caps the staircase at `max_shapes` entries, keeping an even spread over
    /// the width range (the extreme and min-area shapes are always kept).
    pub fn truncate(&mut self, max_shapes: usize) {
        if self.shapes.len() <= max_shapes || max_shapes == 0 {
            return;
        }
        let min_area = self.min_area_shape();
        let n = self.shapes.len();
        let mut kept: Vec<Shape> = Vec::with_capacity(max_shapes);
        for k in 0..max_shapes {
            let idx = k * (n - 1) / (max_shapes - 1).max(1);
            kept.push(self.shapes[idx]);
        }
        if let Some(m) = min_area {
            if !kept.contains(&m) {
                kept.push(m);
            }
        }
        kept.sort_by_key(|s| (s.dims.w, s.dims.h));
        kept.dedup();
        self.shapes = kept;
    }

    /// Smallest width over all shapes (`None` when empty).
    #[must_use]
    pub fn min_width(&self) -> Option<Coord> {
        self.shapes.iter().map(|s| s.dims.w).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_prunes_dominated_shapes() {
        let sf = ShapeFunction::from_dims([
            Dims::new(10, 10),
            Dims::new(12, 12), // dominated
            Dims::new(20, 5),
            Dims::new(5, 25),
        ]);
        assert_eq!(sf.len(), 3);
        // staircase property: widths increase, heights decrease
        for pair in sf.shapes().windows(2) {
            assert!(pair[0].dims.w < pair[1].dims.w);
            assert!(pair[0].dims.h > pair[1].dims.h);
        }
    }

    #[test]
    fn module_shape_function_includes_rotation() {
        let sf = ShapeFunction::for_module(Dims::new(30, 10), true);
        assert_eq!(sf.len(), 2);
        let fixed = ShapeFunction::for_module(Dims::new(30, 10), false);
        assert_eq!(fixed.len(), 1);
        let square = ShapeFunction::for_module(Dims::new(10, 10), true);
        assert_eq!(square.len(), 1, "rotating a square adds nothing");
    }

    #[test]
    fn horizontal_addition_of_singletons() {
        let a = ShapeFunction::from_dims([Dims::new(10, 20)]);
        let b = ShapeFunction::from_dims([Dims::new(5, 8)]);
        let sum = a.add_horizontal(&b);
        assert_eq!(sum.shapes(), &[Shape::new(Dims::new(15, 20))]);
        let stack = a.add_vertical(&b);
        assert_eq!(stack.shapes(), &[Shape::new(Dims::new(10, 28))]);
    }

    #[test]
    fn addition_is_commutative_in_the_shape_set() {
        let a = ShapeFunction::from_dims([Dims::new(10, 20), Dims::new(20, 10)]);
        let b = ShapeFunction::from_dims([Dims::new(6, 9), Dims::new(9, 6)]);
        assert_eq!(a.add_horizontal(&b), b.add_horizontal(&a));
        assert_eq!(a.add_both(&b), b.add_both(&a));
    }

    #[test]
    fn min_area_shape_is_truly_minimal() {
        let sf = ShapeFunction::from_dims([Dims::new(10, 30), Dims::new(18, 13), Dims::new(40, 8)]);
        assert_eq!(sf.min_area_shape().unwrap().dims, Dims::new(18, 13));
    }

    #[test]
    fn truncate_keeps_extremes_and_min_area() {
        let mut sf = ShapeFunction::from_dims((1..40).map(|i| Dims::new(i, 45 - i)));
        let min_area = sf.min_area_shape().unwrap();
        sf.truncate(8);
        assert!(sf.len() <= 9);
        assert!(sf.shapes().contains(&min_area));
    }

    #[test]
    fn empty_function_behaviour() {
        let sf = ShapeFunction::new();
        assert!(sf.is_empty());
        assert_eq!(sf.min_area_shape(), None);
        let other = ShapeFunction::from_dims([Dims::new(3, 3)]);
        assert!(sf.add_horizontal(&other).is_empty());
    }
}
