//! Property-based tests for the shape-function layer and the hierarchical
//! driver: dominance pruning is airtight, and every placement the hier
//! pipeline extracts is legal and symmetry-feasible.

use apls_circuit::benchmarks::{generate, GeneratorConfig};
use apls_circuit::ModuleId;
use apls_geometry::{total_overlap_area, Dims, Rect};
use apls_shapefn::hier::{BTreeAnnealSolver, HierOptions, HierPlacer};
use apls_shapefn::{EnhancedShapeFunction, ShapeFunction};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = Dims> {
    (1i64..200, 1i64..200).prop_map(|(w, h)| Dims::new(w, h))
}

/// No shape of `sf` may dominate another (equal or larger in both axes), and
/// the staircase must be strictly monotone.
fn assert_pareto_staircase(sf: &ShapeFunction) {
    for (i, a) in sf.shapes().iter().enumerate() {
        for (j, b) in sf.shapes().iter().enumerate() {
            if i != j {
                assert!(
                    !(a.dims.dominates(b.dims) && a.dims != b.dims),
                    "{:?} dominates {:?}",
                    a.dims,
                    b.dims
                );
            }
        }
    }
    for pair in sf.shapes().windows(2) {
        assert!(pair[0].dims.w < pair[1].dims.w, "widths must strictly increase");
        assert!(pair[0].dims.h > pair[1].dims.h, "heights must strictly decrease");
    }
}

fn assert_pareto_enhanced(esf: &EnhancedShapeFunction) {
    for (i, a) in esf.shapes().iter().enumerate() {
        for (j, b) in esf.shapes().iter().enumerate() {
            if i != j {
                assert!(
                    !(a.dims().dominates(b.dims()) && a.dims() != b.dims()),
                    "{:?} dominates {:?}",
                    a.dims(),
                    b.dims()
                );
            }
        }
    }
}

proptest! {
    #[test]
    fn regular_additions_and_union_never_retain_a_dominated_shape(
        a in vec(arb_dims(), 1..10),
        b in vec(arb_dims(), 1..10),
    ) {
        let sa = ShapeFunction::from_dims(a);
        let sb = ShapeFunction::from_dims(b);
        for sum in [
            sa.add_horizontal(&sb),
            sa.add_vertical(&sb),
            sa.add_both(&sb),
            sa.union(&sb),
        ] {
            assert_pareto_staircase(&sum);
        }
    }

    #[test]
    fn enhanced_addition_union_and_parallel_addition_stay_pareto(
        dims in vec(arb_dims(), 3..6),
        rotatable in vec(0u8..2, 3..6),
    ) {
        let n = dims.len().min(rotatable.len());
        let mut acc = EnhancedShapeFunction::for_module(
            ModuleId::from_index(0),
            &dims,
            rotatable[0] == 1,
        );
        for (i, &rot) in rotatable.iter().enumerate().take(n).skip(1) {
            let m = EnhancedShapeFunction::for_module(ModuleId::from_index(i), &dims, rot == 1);
            let sequential = acc.add(&m, &dims);
            let parallel = acc.add_parallel(&m, &dims);
            prop_assert_eq!(&sequential, &parallel);
            assert_pareto_enhanced(&sequential);
            let union = acc.union(&m);
            assert_pareto_enhanced(&union);
            acc = sequential;
        }
    }

    #[test]
    fn hier_root_placements_are_overlap_free_and_symmetry_feasible(
        seed in 0u64..500,
        module_count in 6usize..14,
    ) {
        let circuit = generate(
            "prop",
            GeneratorConfig { module_count, seed, ..GeneratorConfig::default() },
        );
        let options = HierOptions::default()
            .with_seed(seed)
            .with_fast_schedule(true)
            .with_anneal_threshold(4);
        let result = HierPlacer::new(&circuit)
            .with_options(options)
            .with_sub_solver(Box::new(BTreeAnnealSolver))
            .run();
        prop_assert!(result.placement.is_complete());
        let rects: Vec<Rect> = result.placement.rects().collect();
        prop_assert_eq!(total_overlap_area(&rects), 0);
        // symmetry-feasible: every symmetric pair keeps matched footprints
        // (the generators match pair dimensions and the pipeline never
        // rotates constrained modules), so an exact mirror arrangement
        // remains realisable downstream
        for group in circuit.constraints.symmetry_groups() {
            for &(l, r) in group.pairs() {
                let rl = result.placement.rect_of(l);
                let rr = result.placement.rect_of(r);
                prop_assert_eq!(rl.dims(), rr.dims());
            }
        }
        // the paper's area lower bound always holds
        let total = circuit.netlist.total_module_area();
        prop_assert!(result.dims.area() >= total);
    }
}
