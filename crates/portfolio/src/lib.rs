//! Parallel multi-start portfolio placement.
//!
//! The DATE 2009 survey compares three topological placement approaches —
//! symmetric-feasible sequence-pairs, hierarchical B*-trees, and
//! deterministic shape-function enumeration. Each is competitive on some
//! circuits and loses on others, and each annealing engine's result depends
//! on its seed. Industrial placers (and the paper's own comparison tables)
//! therefore report *best-of-N*: race every engine across many restarts and
//! keep the winner. This crate is that execution layer:
//!
//! * [`PortfolioConfig`] — restarts per engine, engine subset, thread count,
//!   schedule, and an optional plateau-based [`EarlyStop`];
//! * [`run_portfolio`] — fans the restart plan out on a rayon pool; every
//!   restart's seed derives from the single root seed via
//!   [`apls_anneal::rng::SeedStream`], so results are bit-identical for any
//!   thread count;
//! * [`PortfolioReport`] — the winning placement plus per-engine statistics,
//!   per-restart records, a restart-cost histogram, and hand-rolled JSON
//!   emission;
//! * [`svg::render_svg`] — an SVG rendering of any placement, used by the
//!   `apls` CLI for the winner.
//!
//! # Example
//!
//! ```
//! use apls_portfolio::{run_portfolio, PortfolioConfig};
//! use apls_circuit::benchmarks::miller_opamp_fig6;
//!
//! let circuit = miller_opamp_fig6();
//! let config = PortfolioConfig::new(42).with_restarts(2).with_fast_schedule(true);
//! let report = run_portfolio(&circuit, &config);
//! assert!(report.best().placement.is_complete());
//! // the portfolio can never lose to any of its own restarts
//! assert!(report.restarts.iter().all(|r| report.best_cost() <= r.cost));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod earlystop;
mod engine;
mod report;
mod runner;
pub mod stats;
pub mod svg;

pub use config::{EarlyStop, PortfolioConfig, RestartTask};
pub use earlystop::PlateauDetector;
pub use engine::{
    run_engine_once, run_engine_once_traced, PortfolioEngine, RestartOutcome, RestartSettings,
};
pub use report::{EngineSummary, PortfolioReport, RestartRecord};
pub use runner::{
    run_portfolio, run_portfolio_cancellable, run_portfolio_observed, run_portfolio_traced,
    CancelToken, Cancelled, RestartObserver,
};
