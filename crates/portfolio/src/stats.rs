//! The uniform comparison cost and cost-distribution statistics.

use apls_circuit::PlacementMetrics;

/// The scalar cost the portfolio uses to compare placements **across**
/// engines: bounding-box area plus the weighted half-perimeter wirelength.
///
/// Each engine anneals its own internal cost, but those are not directly
/// comparable (the deterministic engine, for instance, optimises area only).
/// The portfolio therefore re-scores every final placement with this single
/// function; "best" always means best under this metric.
#[must_use]
pub fn placement_cost(metrics: &PlacementMetrics, wirelength_weight: f64) -> f64 {
    metrics.bounding_area as f64 + wirelength_weight * metrics.wirelength
}

/// Descriptive statistics of a cost sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostStats {
    /// Smallest cost.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest cost.
    pub max: f64,
}

impl CostStats {
    /// Computes min/mean/max of a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty.
    #[must_use]
    pub fn of(costs: &[f64]) -> Self {
        assert!(!costs.is_empty(), "cost sample must be non-empty");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &c in costs {
            min = min.min(c);
            max = max.max(c);
            sum += c;
        }
        CostStats { min, mean: sum / costs.len() as f64, max }
    }
}

/// Upper edges of the restart histogram buckets, as multiples of the best
/// cost. The final bucket is open-ended.
pub const HISTOGRAM_EDGES: [f64; 5] = [1.01, 1.05, 1.10, 1.25, 1.50];

/// Distribution of restart costs relative to the best restart — the
/// portfolio's analogue of the paper's best-of-N comparison tables: it shows
/// how lucky a single run would have been.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartHistogram {
    /// `counts[i]` = restarts whose cost is within `(edge[i-1], edge[i]]`
    /// times the best cost; the last entry counts everything beyond the last
    /// edge.
    pub counts: Vec<usize>,
}

impl RestartHistogram {
    /// Buckets `costs` relative to their minimum.
    #[must_use]
    pub fn of(costs: &[f64]) -> Self {
        let mut counts = vec![0usize; HISTOGRAM_EDGES.len() + 1];
        if costs.is_empty() {
            return RestartHistogram { counts };
        }
        let best = costs.iter().copied().fold(f64::INFINITY, f64::min);
        for &c in costs {
            let ratio = if best > 0.0 { c / best } else { 1.0 };
            let bucket = HISTOGRAM_EDGES
                .iter()
                .position(|&edge| ratio <= edge)
                .unwrap_or(HISTOGRAM_EDGES.len());
            counts[bucket] += 1;
        }
        RestartHistogram { counts }
    }

    /// Human-readable bucket labels, aligned with `counts`.
    #[must_use]
    pub fn labels() -> Vec<String> {
        let mut labels = Vec::with_capacity(HISTOGRAM_EDGES.len() + 1);
        let mut lower = 1.0;
        for edge in HISTOGRAM_EDGES {
            labels.push(format!("{lower:.2}x..{edge:.2}x"));
            lower = edge;
        }
        labels.push(format!(">{:.2}x", HISTOGRAM_EDGES[HISTOGRAM_EDGES.len() - 1]));
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_cover_the_sample() {
        let s = CostStats::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_relative_to_best() {
        let h = RestartHistogram::of(&[100.0, 100.5, 104.0, 160.0]);
        // 1.0x and 1.005x in the first bucket, 1.04x in the second, 1.6x open-ended
        assert_eq!(h.counts, vec![2, 1, 0, 0, 0, 1]);
        assert_eq!(RestartHistogram::labels().len(), h.counts.len());
    }

    #[test]
    fn histogram_of_empty_sample_is_empty() {
        assert_eq!(RestartHistogram::of(&[]).counts.iter().sum::<usize>(), 0);
    }

    #[test]
    fn cost_is_monotone_in_both_terms() {
        let better = PlacementMetrics {
            bounding_area: 100,
            width: 10,
            height: 10,
            area_usage: 1.0,
            wirelength: 50.0,
            overlap_area: 0,
        };
        let worse_area = PlacementMetrics { bounding_area: 150, ..better };
        let worse_wl = PlacementMetrics { wirelength: 80.0, ..better };
        let w = 0.5;
        assert!(placement_cost(&better, w) < placement_cost(&worse_area, w));
        assert!(placement_cost(&better, w) < placement_cost(&worse_wl, w));
    }
}
