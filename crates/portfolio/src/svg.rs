//! SVG rendering of placements (used by the `apls` CLI's `--svg` output).

use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_circuit::Placement;

/// Fill palette cycled over modules (muted, print-friendly hues).
const PALETTE: [&str; 8] =
    ["#8da0cb", "#66c2a5", "#fc8d62", "#e78ac3", "#a6d854", "#ffd92f", "#e5c494", "#b3b3b3"];

/// Pixels of padding around the die outline.
const MARGIN: f64 = 12.0;
/// Target width of the rendered image in pixels.
const TARGET_WIDTH: f64 = 640.0;

/// Renders a placement of `circuit` as a standalone SVG document.
///
/// Modules are drawn in chip coordinates (y axis flipped to screen
/// orientation) with their instance names; the die bounding box is outlined
/// and the title names the circuit. The output is deterministic: same
/// placement, same bytes.
///
/// # Panics
///
/// Panics if the placement is empty.
#[must_use]
pub fn render_svg(circuit: &BenchmarkCircuit, placement: &Placement) -> String {
    let outline = placement.bounding_rect().expect("placement has modules");
    let w = outline.width() as f64;
    let h = outline.height() as f64;
    let scale = TARGET_WIDTH / w.max(1.0);
    let view_w = w * scale + 2.0 * MARGIN;
    let view_h = h * scale + 2.0 * MARGIN + 22.0; // room for the title line
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{view_w:.0}\" height=\"{view_h:.0}\" viewBox=\"0 0 {view_w:.1} {view_h:.1}\">\n"
    ));
    out.push_str(&format!(
        "  <title>{} placement</title>\n  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n",
        xml_esc(&circuit.name)
    ));
    out.push_str(&format!(
        "  <text x=\"{MARGIN}\" y=\"16\" font-family=\"sans-serif\" font-size=\"13\" fill=\"#333\">{} — {}x{} dbu</text>\n",
        xml_esc(&circuit.name),
        outline.width(),
        outline.height(),
    ));
    let oy = 22.0 + MARGIN;
    // die outline
    out.push_str(&format!(
        "  <rect x=\"{MARGIN:.1}\" y=\"{oy:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"none\" stroke=\"#999\" stroke-dasharray=\"4 3\"/>\n",
        w * scale,
        h * scale,
    ));
    for (id, placed) in placement.iter() {
        let r = placed.rect;
        // chip y grows upward; SVG y grows downward
        let x = MARGIN + (r.x_min - outline.x_min) as f64 * scale;
        let y = oy + (outline.y_max - r.y_max) as f64 * scale;
        let rw = r.width() as f64 * scale;
        let rh = r.height() as f64 * scale;
        let fill = PALETTE[id.index() % PALETTE.len()];
        out.push_str(&format!(
            "  <rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{rw:.1}\" height=\"{rh:.1}\" fill=\"{fill}\" fill-opacity=\"0.75\" stroke=\"#444\" stroke-width=\"1\"/>\n"
        ));
        let name = circuit.netlist.module(id).name().to_string();
        let font = (rh * 0.4).clamp(6.0, 14.0);
        out.push_str(&format!(
            "  <text x=\"{:.1}\" y=\"{:.1}\" font-family=\"sans-serif\" font-size=\"{font:.1}\" text-anchor=\"middle\" dominant-baseline=\"middle\" fill=\"#222\">{}</text>\n",
            x + rw / 2.0,
            y + rh / 2.0,
            xml_esc(&name),
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Escapes text for embedding in XML.
fn xml_esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PortfolioConfig;
    use crate::run_portfolio;
    use apls_circuit::benchmarks;

    #[test]
    fn svg_contains_every_module_name() {
        let circuit = benchmarks::miller_opamp_fig6();
        let config = PortfolioConfig::new(1).with_restarts(1).with_fast_schedule(true);
        let report = run_portfolio(&circuit, &config);
        let svg = render_svg(&circuit, &report.best().placement);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        for (id, _) in circuit.netlist.modules() {
            let name = circuit.netlist.module(id).name();
            assert!(svg.contains(&format!(">{name}</text>")), "missing label {name}");
        }
    }

    #[test]
    fn svg_is_deterministic() {
        let circuit = benchmarks::miller_opamp_fig6();
        let config = PortfolioConfig::new(4).with_restarts(1).with_fast_schedule(true);
        let a = render_svg(&circuit, &run_portfolio(&circuit, &config).best().placement);
        let b = render_svg(&circuit, &run_portfolio(&circuit, &config).best().placement);
        assert_eq!(a, b);
    }

    #[test]
    fn xml_escaping_covers_markup() {
        assert_eq!(xml_esc("a<b>&c"), "a&lt;b&gt;&amp;c");
    }
}
