//! Portfolio results: per-restart records, per-engine summaries, and the
//! aggregate [`PortfolioReport`] with hand-rolled JSON emission.

use crate::config::PortfolioConfig;
use crate::engine::PortfolioEngine;
use crate::stats::{CostStats, RestartHistogram};
use apls_circuit::{Placement, PlacementMetrics};
use std::time::Duration;

/// The outcome of one completed restart.
#[derive(Debug, Clone)]
pub struct RestartRecord {
    /// Engine that ran.
    pub engine: PortfolioEngine,
    /// Restart index within the engine's lane.
    pub restart: usize,
    /// Seed the restart ran with.
    pub seed: u64,
    /// Uniform comparison cost (see [`crate::stats::placement_cost`]).
    pub cost: f64,
    /// Wall-clock time of this restart.
    pub runtime: Duration,
    /// Move acceptance ratio (`None` for the deterministic engine).
    pub acceptance_ratio: Option<f64>,
    /// Proposals evaluated.
    pub moves_attempted: u64,
    /// Annealing throughput in proposals per second, measured over the
    /// annealing loop only (`None` for the deterministic engine).
    pub moves_per_second: Option<f64>,
    /// Whether the hier engine's never-lose pure-enumeration fallback beat
    /// the hybrid pipeline in this restart (`None` for every other engine).
    pub enumeration_won: Option<bool>,
    /// Metrics of the restart's placement.
    pub metrics: PlacementMetrics,
    /// Largest symmetry deviation (doubled dbu).
    pub symmetry_error: i64,
    /// The placement itself.
    pub placement: Placement,
}

/// Aggregate statistics of all restarts of one engine.
#[derive(Debug, Clone)]
pub struct EngineSummary {
    /// The engine.
    pub engine: PortfolioEngine,
    /// Restarts that actually ran (early stop may cut the plan short).
    pub restarts_run: usize,
    /// Cost distribution over those restarts.
    pub cost: CostStats,
    /// Restart index that achieved `cost.min`.
    pub best_restart: usize,
    /// Mean acceptance ratio (`None` for the deterministic engine).
    pub mean_acceptance: Option<f64>,
    /// Mean annealing throughput in proposals per second (`None` for the
    /// deterministic engine).
    pub mean_moves_per_second: Option<f64>,
    /// How many restarts fell back to the pure-enumeration result (hier
    /// engine only; `None` for engines that have no such fallback).
    pub enumeration_wins: Option<usize>,
    /// Summed wall-clock time of the engine's restarts.
    pub total_runtime: Duration,
}

/// The result of a portfolio run.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// Circuit name.
    pub circuit_name: String,
    /// Root seed the restart seeds derive from.
    pub root_seed: u64,
    /// Restarts per stochastic engine the plan scheduled.
    pub restarts_scheduled: usize,
    /// `true` when the plateau policy cut the plan short.
    pub early_stopped: bool,
    /// Wall-clock time of the whole portfolio (all restarts plus overhead).
    pub wall_time: Duration,
    /// Every completed restart, in plan order (generation-major).
    pub restarts: Vec<RestartRecord>,
    /// Index into [`PortfolioReport::restarts`] of the winner.
    pub best_index: usize,
    /// Per-engine aggregates, in portfolio engine order.
    pub engines: Vec<EngineSummary>,
    /// Cost distribution of all restarts relative to the winner.
    pub histogram: RestartHistogram,
}

impl PortfolioReport {
    /// Builds the report from completed restart records (in plan order).
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    #[must_use]
    pub fn assemble(
        circuit_name: String,
        config: &PortfolioConfig,
        records: Vec<RestartRecord>,
        early_stopped: bool,
        wall_time: Duration,
    ) -> Self {
        assert!(!records.is_empty(), "portfolio produced no restarts");
        // strict < keeps the earliest record on ties, which makes the winner
        // independent of float noise in later identical restarts
        let mut best_index = 0;
        for (i, r) in records.iter().enumerate() {
            if r.cost < records[best_index].cost {
                best_index = i;
            }
        }
        let engines = config
            .engines
            .iter()
            .filter_map(|&engine| {
                let runs: Vec<&RestartRecord> =
                    records.iter().filter(|r| r.engine == engine).collect();
                if runs.is_empty() {
                    return None;
                }
                let costs: Vec<f64> = runs.iter().map(|r| r.cost).collect();
                let cost = CostStats::of(&costs);
                let best_restart = runs
                    .iter()
                    .min_by(|a, b| a.cost.total_cmp(&b.cost))
                    .map(|r| r.restart)
                    .unwrap_or(0);
                let ratios: Vec<f64> = runs.iter().filter_map(|r| r.acceptance_ratio).collect();
                let mean_acceptance = if ratios.is_empty() {
                    None
                } else {
                    Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
                };
                let throughputs: Vec<f64> =
                    runs.iter().filter_map(|r| r.moves_per_second).collect();
                let mean_moves_per_second = if throughputs.is_empty() {
                    None
                } else {
                    Some(throughputs.iter().sum::<f64>() / throughputs.len() as f64)
                };
                let enumeration_wins = if runs.iter().any(|r| r.enumeration_won.is_some()) {
                    Some(runs.iter().filter(|r| r.enumeration_won == Some(true)).count())
                } else {
                    None
                };
                Some(EngineSummary {
                    engine,
                    restarts_run: runs.len(),
                    cost,
                    best_restart,
                    mean_acceptance,
                    mean_moves_per_second,
                    enumeration_wins,
                    total_runtime: runs.iter().map(|r| r.runtime).sum(),
                })
            })
            .collect();
        let histogram = RestartHistogram::of(&records.iter().map(|r| r.cost).collect::<Vec<_>>());
        PortfolioReport {
            circuit_name,
            root_seed: config.root_seed,
            restarts_scheduled: config.restarts,
            early_stopped,
            wall_time,
            restarts: records,
            best_index,
            engines,
            histogram,
        }
    }

    /// The winning restart.
    #[must_use]
    pub fn best(&self) -> &RestartRecord {
        &self.restarts[self.best_index]
    }

    /// Cost of the winning restart.
    #[must_use]
    pub fn best_cost(&self) -> f64 {
        self.best().cost
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let best = self.best();
        format!(
            "portfolio on {}: {} restarts{}, best {} (restart {}, seed {:#x}), cost {:.0}, {}x{} dbu, HPWL {:.0}, {:.1} ms wall",
            self.circuit_name,
            self.restarts.len(),
            if self.early_stopped { " (early stop)" } else { "" },
            best.engine,
            best.restart,
            best.seed,
            best.cost,
            best.metrics.width,
            best.metrics.height,
            best.metrics.wirelength,
            self.wall_time.as_secs_f64() * 1e3,
        )
    }

    /// Serialises the full report as a JSON document.
    ///
    /// The workspace's serde is a vendored marker-only shim, so this is
    /// written by hand; the schema is documented in DESIGN.md §6.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// Serialises the report with every timing-derived field (`wall_ms`,
    /// `runtime_ms`, `total_runtime_ms`, `moves_per_sec`,
    /// `mean_moves_per_sec`) emitted as `null`.
    ///
    /// What remains is a pure function of `(circuit, config, root_seed)` —
    /// byte-identical across runs, thread counts and machines. This is the
    /// report body `apls-service` returns and caches, and the object of its
    /// determinism guarantee (DESIGN.md §10).
    #[must_use]
    pub fn to_json_deterministic(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, timings: bool) -> String {
        let ms = |d: Duration| -> String {
            if timings {
                format!("{:.3}", d.as_secs_f64() * 1e3)
            } else {
                "null".to_string()
            }
        };
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"circuit\": \"{}\",\n", esc(&self.circuit_name)));
        out.push_str(&format!("  \"root_seed\": {},\n", self.root_seed));
        out.push_str(&format!("  \"restarts_scheduled\": {},\n", self.restarts_scheduled));
        out.push_str(&format!("  \"restarts_run\": {},\n", self.restarts.len()));
        out.push_str(&format!("  \"early_stopped\": {},\n", self.early_stopped));
        out.push_str(&format!("  \"wall_ms\": {},\n", ms(self.wall_time)));
        let best = self.best();
        out.push_str("  \"best\": ");
        push_restart_json(&mut out, best, "  ");
        out.push_str(",\n  \"engines\": [\n");
        for (i, e) in self.engines.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"engine\": \"{}\", \"restarts_run\": {}, \"best_cost\": {:.3}, \"mean_cost\": {:.3}, \"worst_cost\": {:.3}, \"best_restart\": {}, \"mean_acceptance\": {}, \"mean_moves_per_sec\": {}, \"enumeration_wins\": {}, \"total_runtime_ms\": {}}}{}\n",
                e.engine,
                e.restarts_run,
                e.cost.min,
                e.cost.mean,
                e.cost.max,
                e.best_restart,
                json_opt(e.mean_acceptance),
                if timings { json_opt_rounded(e.mean_moves_per_second) } else { "null".into() },
                json_opt_usize(e.enumeration_wins),
                ms(e.total_runtime),
                comma(i, self.engines.len()),
            ));
        }
        out.push_str("  ],\n  \"restarts\": [\n");
        for (i, r) in self.restarts.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"engine\": \"{}\", \"restart\": {}, \"seed\": {}, \"cost\": {:.3}, \"runtime_ms\": {}, \"acceptance\": {}, \"moves_per_sec\": {}, \"enumeration_won\": {}, \"symmetry_error\": {}}}{}\n",
                r.engine,
                r.restart,
                r.seed,
                r.cost,
                ms(r.runtime),
                json_opt(r.acceptance_ratio),
                if timings { json_opt_rounded(r.moves_per_second) } else { "null".into() },
                json_opt_bool(r.enumeration_won),
                r.symmetry_error,
                comma(i, self.restarts.len()),
            ));
        }
        out.push_str("  ],\n  \"histogram\": [\n");
        let labels = RestartHistogram::labels();
        for (i, (label, count)) in labels.iter().zip(&self.histogram.counts).enumerate() {
            out.push_str(&format!(
                "    {{\"bucket\": \"{}\", \"count\": {}}}{}\n",
                esc(label),
                count,
                comma(i, labels.len()),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Appends the JSON object of one restart (without trailing newline).
fn push_restart_json(out: &mut String, r: &RestartRecord, indent: &str) {
    out.push_str(&format!(
        "{{\n{indent}  \"engine\": \"{}\",\n{indent}  \"restart\": {},\n{indent}  \"seed\": {},\n{indent}  \"cost\": {:.3},\n{indent}  \"width\": {},\n{indent}  \"height\": {},\n{indent}  \"area_usage\": {:.4},\n{indent}  \"wirelength\": {:.3},\n{indent}  \"symmetry_error\": {},\n{indent}  \"overlap_area\": {},\n{indent}  \"enumeration_won\": {}\n{indent}}}",
        r.engine,
        r.restart,
        r.seed,
        r.cost,
        r.metrics.width,
        r.metrics.height,
        r.metrics.area_usage,
        r.metrics.wirelength,
        r.symmetry_error,
        r.metrics.overlap_area,
        json_opt_bool(r.enumeration_won),
    ));
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.4}"))
}

/// Like [`json_opt`] but rounded to whole units (used for moves/sec, where
/// fractional digits are noise).
fn json_opt_rounded(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{:.0}", x.round()))
}

fn json_opt_bool(v: Option<bool>) -> String {
    v.map_or_else(|| "null".to_string(), |b| b.to_string())
}

fn json_opt_usize(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_portfolio;
    use apls_circuit::benchmarks;

    fn small_report() -> PortfolioReport {
        let circuit = benchmarks::miller_opamp_fig6();
        let config = PortfolioConfig::new(3).with_restarts(2).with_fast_schedule(true);
        run_portfolio(&circuit, &config)
    }

    #[test]
    fn best_is_the_minimum_cost_record() {
        let report = small_report();
        let min = report.restarts.iter().map(|r| r.cost).fold(f64::INFINITY, f64::min);
        assert_eq!(report.best_cost(), min);
        assert!(report.best().placement.is_complete());
    }

    #[test]
    fn json_is_structurally_sound() {
        let report = small_report();
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"circuit\": \"miller_opamp\""));
        assert!(json.contains("\"engines\""));
        assert!(json.contains("\"histogram\""));
        // deterministic engine serialises a null acceptance
        assert!(json.contains("\"acceptance\": null"));
        // annealing throughput is surfaced per restart and per engine
        assert!(json.contains("\"moves_per_sec\""));
        assert!(json.contains("\"mean_moves_per_sec\""));
        assert!(json.contains("\"moves_per_sec\": null"));
    }

    #[test]
    fn stochastic_engines_report_throughput() {
        let report = small_report();
        for r in &report.restarts {
            if r.engine.reports_annealing_stats() && r.moves_attempted > 0 {
                // sub-microsecond clock resolution could in principle swallow a
                // run, but the smoke schedule always takes measurable time
                assert!(r.moves_per_second.unwrap_or(0.0) > 0.0, "{}", r.engine);
            } else if !r.engine.reports_annealing_stats() {
                assert_eq!(r.moves_per_second, None);
            }
        }
        for e in &report.engines {
            assert_eq!(e.mean_moves_per_second.is_some(), e.engine.reports_annealing_stats());
        }
    }

    #[test]
    fn enumeration_flag_is_hier_only() {
        use crate::engine::PortfolioEngine;
        let report = small_report();
        for r in &report.restarts {
            assert_eq!(
                r.enumeration_won.is_some(),
                r.engine == PortfolioEngine::Hier,
                "{}",
                r.engine
            );
        }
        for e in &report.engines {
            assert_eq!(
                e.enumeration_wins.is_some(),
                e.engine == PortfolioEngine::Hier,
                "{}",
                e.engine
            );
        }
        let json = report.to_json();
        assert!(json.contains("\"enumeration_won\": null"));
        assert!(json.contains("\"enumeration_wins\""));
    }

    #[test]
    fn deterministic_json_is_reproducible_across_runs_and_threads() {
        let circuit = benchmarks::miller_opamp_fig6();
        let config = PortfolioConfig::new(3).with_restarts(2).with_fast_schedule(true);
        let a = run_portfolio(&circuit, &config).to_json_deterministic();
        let b = run_portfolio(&circuit, &config.clone().with_threads(2)).to_json_deterministic();
        assert_eq!(a, b);
        assert!(a.contains("\"wall_ms\": null"));
        assert!(a.contains("\"runtime_ms\": null"));
        assert!(a.contains("\"total_runtime_ms\": null"));
        assert!(!a.contains("\"moves_per_sec\": 0"));
    }

    #[test]
    fn tempering_lane_json_is_byte_identical_across_thread_counts() {
        // The tempering engine parallelises *within* a restart (one rayon
        // task per replica), so pin the portfolio to that lane alone and
        // compare the full deterministic report at 1 vs 4 worker threads.
        use crate::engine::PortfolioEngine;
        let circuit = benchmarks::comparator_v2();
        let config = PortfolioConfig::new(17)
            .with_restarts(2)
            .with_fast_schedule(true)
            .with_engines([PortfolioEngine::Tempering]);
        let one = run_portfolio(&circuit, &config.clone().with_threads(1)).to_json_deterministic();
        let four = run_portfolio(&circuit, &config.with_threads(4)).to_json_deterministic();
        assert_eq!(one, four);
        assert!(one.contains("\"tempering\""));
    }

    #[test]
    fn summary_names_the_circuit_and_winner() {
        let report = small_report();
        let text = report.summary();
        assert!(text.contains("miller_opamp"));
        assert!(text.contains(report.best().engine.name()));
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
