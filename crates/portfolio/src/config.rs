//! Portfolio configuration and the deterministic restart plan.

use crate::engine::{PortfolioEngine, RestartSettings};
use apls_anneal::rng::SeedStream;

/// Early-stop policy: end the portfolio once the best cost has plateaued.
///
/// After each *generation* (one restart index across all engines) the runner
/// checks whether the best cost improved by more than `min_improvement`
/// (relative). Once `window` consecutive generations bring no such
/// improvement, the remaining restarts are skipped. Because generations are
/// fixed by restart index — never by completion time — early stopping is
/// deterministic and independent of the worker thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Number of consecutive non-improving generations that triggers the stop.
    pub window: usize,
    /// Minimum relative cost improvement (e.g. `0.01` = 1%) that counts as
    /// progress.
    pub min_improvement: f64,
}

impl EarlyStop {
    /// A window of `window` generations with a 0.5% improvement threshold.
    #[must_use]
    pub fn after(window: usize) -> Self {
        EarlyStop { window, min_improvement: 0.005 }
    }
}

/// Configuration of one portfolio run.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// Root seed; every restart derives its own seed from it (see
    /// [`SeedStream`]). Restart 0 of each engine reuses the root seed
    /// verbatim so it replays the single-engine run.
    pub root_seed: u64,
    /// Restarts per stochastic engine (the deterministic engine always runs
    /// exactly once). Must be at least 1.
    pub restarts: usize,
    /// Which engines to race.
    pub engines: Vec<PortfolioEngine>,
    /// Worker threads (`0` = one per available core). Thread count never
    /// changes results, only wall time.
    pub threads: usize,
    /// Use the short test/smoke annealing schedule.
    pub fast_schedule: bool,
    /// Weight of the wirelength term in both the annealing cost functions
    /// and the portfolio's uniform comparison cost.
    pub wirelength_weight: f64,
    /// Hierarchy nodes with more than this many modules are refined by the
    /// hier engine's annealing sub-solver (hier engine only).
    pub hier_anneal_threshold: usize,
    /// Optional plateau-based early stop.
    pub early_stop: Option<EarlyStop>,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            root_seed: 1,
            restarts: 8,
            engines: PortfolioEngine::ALL.to_vec(),
            threads: 0,
            fast_schedule: false,
            wirelength_weight: 0.5,
            hier_anneal_threshold: 5,
            early_stop: None,
        }
    }
}

impl PortfolioConfig {
    /// Default configuration rooted at `root_seed`.
    #[must_use]
    pub fn new(root_seed: u64) -> Self {
        PortfolioConfig { root_seed, ..PortfolioConfig::default() }
    }

    /// Sets the restarts per stochastic engine (builder style).
    #[must_use]
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }

    /// Restricts the racing engines (builder style).
    #[must_use]
    pub fn with_engines(mut self, engines: impl Into<Vec<PortfolioEngine>>) -> Self {
        self.engines = engines.into();
        self
    }

    /// Sets the worker thread count, `0` meaning automatic (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the short annealing schedule (builder style).
    #[must_use]
    pub fn with_fast_schedule(mut self, fast: bool) -> Self {
        self.fast_schedule = fast;
        self
    }

    /// Sets the wirelength weight (builder style).
    #[must_use]
    pub fn with_wirelength_weight(mut self, weight: f64) -> Self {
        self.wirelength_weight = weight;
        self
    }

    /// Sets the hier engine's annealing threshold (builder style).
    #[must_use]
    pub fn with_hier_anneal_threshold(mut self, threshold: usize) -> Self {
        self.hier_anneal_threshold = threshold;
        self
    }

    /// Enables plateau-based early stopping (builder style).
    #[must_use]
    pub fn with_early_stop(mut self, early_stop: EarlyStop) -> Self {
        self.early_stop = Some(early_stop);
        self
    }

    /// The per-restart settings shared by every task of this run.
    #[must_use]
    pub fn restart_settings(&self) -> RestartSettings {
        RestartSettings {
            fast_schedule: self.fast_schedule,
            wirelength_weight: self.wirelength_weight,
            hier_anneal_threshold: self.hier_anneal_threshold,
        }
    }

    /// The full restart plan, grouped into generations: generation `i` holds
    /// restart `i` of every engine that still participates at that index.
    /// Seeds depend only on `(root_seed, engine, restart)`, so the plan is a
    /// pure function of the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (`restarts == 0`, no engines,
    /// duplicate engines, or a wirelength weight that is not finite and
    /// non-negative).
    #[must_use]
    pub fn generations(&self) -> Vec<Vec<RestartTask>> {
        self.validate();
        let stream = SeedStream::new(self.root_seed);
        (0..self.restarts)
            .map(|restart| {
                self.engines
                    .iter()
                    .filter(|e| restart == 0 || e.is_stochastic())
                    .map(|&engine| RestartTask {
                        engine,
                        restart,
                        seed: if restart == 0 {
                            self.root_seed
                        } else {
                            stream.seed_for(engine.lane(), restart as u64)
                        },
                    })
                    .collect()
            })
            .filter(|g: &Vec<RestartTask>| !g.is_empty())
            .collect()
    }

    /// Checks the configuration invariants.
    ///
    /// # Panics
    ///
    /// See [`PortfolioConfig::generations`].
    pub fn validate(&self) {
        assert!(self.restarts >= 1, "portfolio needs at least one restart");
        assert!(!self.engines.is_empty(), "portfolio needs at least one engine");
        let mut engines = self.engines.clone();
        engines.sort_by_key(|e| e.lane());
        engines.dedup();
        assert_eq!(engines.len(), self.engines.len(), "duplicate engine in portfolio");
        assert!(
            self.wirelength_weight.is_finite() && self.wirelength_weight >= 0.0,
            "wirelength weight must be finite and non-negative"
        );
        assert!(self.hier_anneal_threshold >= 1, "hier annealing threshold must be at least 1");
        if let Some(es) = &self.early_stop {
            assert!(es.window >= 1, "early-stop window must be at least 1");
            assert!(
                es.min_improvement.is_finite() && es.min_improvement >= 0.0,
                "early-stop improvement threshold must be finite and non-negative"
            );
        }
    }
}

/// One scheduled restart: an engine plus its derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartTask {
    /// Engine to run.
    pub engine: PortfolioEngine,
    /// Restart index within that engine's lane.
    pub restart: usize,
    /// Seed derived from the root seed for this `(engine, restart)`.
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_plan_is_deterministic_and_lane_separated() {
        let config = PortfolioConfig::new(77).with_restarts(4);
        let a = config.generations();
        let b = config.generations();
        assert_eq!(a, b);
        // generation 0 has all five engines, later ones only the stochastic four
        assert_eq!(a[0].len(), 5);
        assert!(a[1..].iter().all(|g| g.len() == 4));
        // restart 0 replays the root seed for every engine
        assert!(a[0].iter().all(|t| t.seed == 77));
        // later restarts get distinct seeds across engines and indices
        let mut seeds: Vec<u64> = a[1..].iter().flatten().map(|t| t.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12);
    }

    #[test]
    fn single_engine_plans_shrink() {
        let config =
            PortfolioConfig::new(1).with_restarts(3).with_engines([PortfolioEngine::Deterministic]);
        let generations = config.generations();
        // the deterministic engine ignores seeds, so only restart 0 survives
        assert_eq!(generations.len(), 1);
        assert_eq!(generations[0].len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one restart")]
    fn zero_restarts_panic() {
        let _ = PortfolioConfig::new(1).with_restarts(0).generations();
    }

    #[test]
    #[should_panic(expected = "duplicate engine")]
    fn duplicate_engines_panic() {
        let _ = PortfolioConfig::new(1)
            .with_engines([PortfolioEngine::HbTree, PortfolioEngine::HbTree])
            .generations();
    }
}
