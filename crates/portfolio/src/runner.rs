//! The parallel multi-start runner.

use crate::config::{PortfolioConfig, RestartTask};
use crate::earlystop::PlateauDetector;
use crate::engine::run_engine_once_traced;
use crate::report::{PortfolioReport, RestartRecord};
use crate::stats::placement_cost;
use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_telemetry::Telemetry;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cooperative cancellation signal for a portfolio run.
///
/// The runner polls the token *between restart generations* — a restart that
/// has started always finishes, so cancellation never tears a solver down
/// mid-move and the records produced before the cut are exactly the records a
/// completed run would have produced for those generations. An unarmed token
/// ([`CancelToken::none`], the default) costs one branch per generation and
/// keeps the runner's flattened single-batch fan-out.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    /// Wall-clock deadline after which the run is considered cancelled.
    deadline: Option<Instant>,
    /// Manual cancellation flag (shared with whoever wants to pull the plug).
    flag: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A token that never cancels (the default for plain runs).
    #[must_use]
    pub fn none() -> CancelToken {
        CancelToken::default()
    }

    /// A token that cancels once `deadline` has passed.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken { deadline: Some(deadline), flag: None }
    }

    /// A manually triggered token; call [`CancelToken::cancel`] to fire it.
    #[must_use]
    pub fn manual() -> CancelToken {
        CancelToken { deadline: None, flag: Some(Arc::new(AtomicBool::new(false))) }
    }

    /// Fires a manual token. No-op for deadline-only or unarmed tokens.
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Whether the run should stop at the next checkpoint.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
            || self.flag.as_ref().is_some_and(|f| f.load(Ordering::SeqCst))
    }

    /// Whether this token can ever cancel. Armed tokens force the runner into
    /// per-generation batches so checkpoints actually exist.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some() || self.flag.is_some()
    }
}

/// A per-restart completion callback for a portfolio run.
///
/// The runner invokes [`RestartObserver::restart_complete`] from its driver
/// thread, in *plan order*, after each restart generation finishes — never
/// from inside the rayon pool, so implementations need not be `Sync`.
/// Observe-only: an installed observer forces per-generation batching
/// (exactly like an armed [`CancelToken`], which is pinned to never change a
/// completed report) but can never touch a seed stream or a record.
pub trait RestartObserver {
    /// Called once per completed restart with the finished record, the
    /// number of restarts completed so far (1-based, in plan order) and the
    /// planned total.
    fn restart_complete(&self, record: &RestartRecord, completed: usize, total: usize);
}

/// The error of a cancelled portfolio run: the deadline passed or the token
/// fired before every generation completed. No partial report is returned —
/// a cancelled run produces nothing, so it can never leak a
/// non-deterministic prefix as if it were a full result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("portfolio run cancelled before completion")
    }
}

/// Runs the full portfolio on `circuit`.
///
/// The restart plan is generated up front ([`PortfolioConfig::generations`]),
/// executed generation by generation on a rayon pool of `config.threads`
/// workers, and aggregated in plan order. Every restart is a pure function of
/// `(circuit, engine, seed, settings)` and the aggregation never looks at
/// completion timing, so the report — including early stopping — is
/// bit-identical across thread counts.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`PortfolioConfig::validate`]) or the circuit is inconsistent.
#[must_use]
pub fn run_portfolio(circuit: &BenchmarkCircuit, config: &PortfolioConfig) -> PortfolioReport {
    run_portfolio_traced(circuit, config, &Telemetry::disabled())
}

/// [`run_portfolio`] with telemetry threaded through every restart lane
/// (observe-only; the report is bit-identical whatever collector is
/// installed — telemetry never touches a seed stream).
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`PortfolioConfig::validate`]) or the circuit is inconsistent.
#[must_use]
pub fn run_portfolio_traced(
    circuit: &BenchmarkCircuit,
    config: &PortfolioConfig,
    telemetry: &Telemetry,
) -> PortfolioReport {
    run_portfolio_cancellable(circuit, config, telemetry, &CancelToken::none())
        .expect("an unarmed token never cancels")
}

/// [`run_portfolio_traced`] with a cooperative [`CancelToken`] checked
/// between restart generations.
///
/// Cancellation is all-or-nothing: a run that completes returns a report
/// bit-identical to one executed without a token (armed tokens only change
/// *batching*, never task seeds or aggregation order), and a run that is cut
/// returns [`Cancelled`] with no partial report.
///
/// # Errors
///
/// Returns [`Cancelled`] when the token fires before the last generation
/// completes.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`PortfolioConfig::validate`]) or the circuit is inconsistent.
pub fn run_portfolio_cancellable(
    circuit: &BenchmarkCircuit,
    config: &PortfolioConfig,
    telemetry: &Telemetry,
    cancel: &CancelToken,
) -> Result<PortfolioReport, Cancelled> {
    run_portfolio_observed(circuit, config, telemetry, cancel, None)
}

/// [`run_portfolio_cancellable`] with an optional [`RestartObserver`]
/// notified after every completed restart (the service's streaming
/// `progress` frames hang off this hook).
///
/// # Errors
///
/// Returns [`Cancelled`] when the token fires before the last generation
/// completes.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`PortfolioConfig::validate`]) or the circuit is inconsistent.
pub fn run_portfolio_observed(
    circuit: &BenchmarkCircuit,
    config: &PortfolioConfig,
    telemetry: &Telemetry,
    cancel: &CancelToken,
    observer: Option<&dyn RestartObserver>,
) -> Result<PortfolioReport, Cancelled> {
    config.validate();
    let start = Instant::now();
    let mut run_span = apls_telemetry::span!(
        telemetry,
        "portfolio",
        "portfolio_run",
        circuit = circuit.name.as_str(),
        seed = config.root_seed,
        restarts = config.restarts,
        threads = config.threads
    );
    let pool = ThreadPoolBuilder::new()
        .num_threads(config.threads)
        .build()
        .expect("portfolio thread pool builds");
    let mut detector = config.early_stop.map(PlateauDetector::new);
    let mut records: Vec<RestartRecord> = Vec::new();
    let mut early_stopped = false;

    let generations = config.generations();
    let planned: usize = generations.iter().map(Vec::len).sum();
    // Without early stopping (or an armed cancel token or an observer, which
    // need per-generation checkpoints) there is no reason to synchronise
    // between generations: flatten the plan into one fan-out so every worker
    // stays busy until the queue drains.
    let batches: Vec<Vec<RestartTask>> =
        if detector.is_some() || cancel.is_armed() || observer.is_some() {
            generations
        } else {
            vec![generations.into_iter().flatten().collect()]
        };

    for batch in batches {
        if cancel.is_cancelled() {
            if run_span.is_recording() {
                run_span.arg("cancelled", true);
            }
            return Err(Cancelled);
        }
        let batch_records: Vec<RestartRecord> = pool.install(|| {
            batch.into_par_iter().map(|task| execute(circuit, task, config, telemetry)).collect()
        });
        if let Some(observer) = observer {
            for (offset, record) in batch_records.iter().enumerate() {
                observer.restart_complete(record, records.len() + offset + 1, planned);
            }
        }
        records.extend(batch_records);
        if let Some(detector) = detector.as_mut() {
            let best_so_far = records.iter().map(|r| r.cost).fold(f64::INFINITY, f64::min);
            if detector.observe(best_so_far) {
                early_stopped = true;
                break;
            }
        }
    }

    if run_span.is_recording() {
        run_span.arg("restarts_executed", records.len() as u64);
        run_span.arg("early_stopped", early_stopped);
    }
    drop(run_span);
    Ok(PortfolioReport::assemble(
        circuit.name.clone(),
        config,
        records,
        early_stopped,
        start.elapsed(),
    ))
}

/// Runs one scheduled restart and scores it with the uniform cost.
fn execute(
    circuit: &BenchmarkCircuit,
    task: RestartTask,
    config: &PortfolioConfig,
    telemetry: &Telemetry,
) -> RestartRecord {
    let start = Instant::now();
    let mut span = apls_telemetry::span!(
        telemetry,
        "portfolio",
        "restart",
        engine = task.engine.name(),
        restart = task.restart,
        seed = task.seed
    );
    let outcome = run_engine_once_traced(
        circuit,
        task.engine,
        task.seed,
        &config.restart_settings(),
        telemetry,
    );
    let cost = placement_cost(&outcome.metrics, config.wirelength_weight);
    if span.is_recording() {
        span.arg("cost", cost);
        span.arg("moves_attempted", outcome.moves_attempted);
    }
    RestartRecord {
        engine: task.engine,
        restart: task.restart,
        seed: task.seed,
        cost,
        runtime: start.elapsed(),
        acceptance_ratio: outcome.acceptance_ratio,
        moves_attempted: outcome.moves_attempted,
        moves_per_second: outcome.moves_per_second,
        enumeration_won: outcome.enumeration_won,
        metrics: outcome.metrics,
        symmetry_error: outcome.symmetry_error,
        placement: outcome.placement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EarlyStop;
    use crate::engine::PortfolioEngine;
    use apls_circuit::benchmarks;

    fn costs(report: &PortfolioReport) -> Vec<(String, usize, f64)> {
        report.restarts.iter().map(|r| (r.engine.name().to_string(), r.restart, r.cost)).collect()
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        let circuit = benchmarks::miller_opamp_fig6();
        let base = PortfolioConfig::new(5).with_restarts(3).with_fast_schedule(true);
        let one = run_portfolio(&circuit, &base.clone().with_threads(1));
        let four = run_portfolio(&circuit, &base.with_threads(4));
        assert_eq!(costs(&one), costs(&four));
        assert_eq!(one.best_cost(), four.best_cost());
        assert_eq!(one.best().placement, four.best().placement);
    }

    #[test]
    fn portfolio_never_loses_to_its_own_restarts() {
        let circuit = benchmarks::miller_opamp_fig6();
        let config = PortfolioConfig::new(2).with_restarts(3).with_fast_schedule(true);
        let report = run_portfolio(&circuit, &config);
        for r in &report.restarts {
            assert!(report.best_cost() <= r.cost);
        }
        // restart 0 of each engine replays the root seed
        for engine in PortfolioEngine::ALL {
            let first = report
                .restarts
                .iter()
                .find(|r| r.engine == engine && r.restart == 0)
                .expect("restart 0 present");
            assert_eq!(first.seed, 2);
        }
    }

    #[test]
    fn armed_token_never_changes_a_completed_report() {
        let circuit = benchmarks::miller_opamp_fig6();
        let config = PortfolioConfig::new(3).with_restarts(3).with_fast_schedule(true);
        let plain = run_portfolio(&circuit, &config);
        // a far-future deadline arms the token (per-generation batches)
        // without ever firing
        let deadline = Instant::now() + std::time::Duration::from_secs(3600);
        let armed = run_portfolio_cancellable(
            &circuit,
            &config,
            &Telemetry::disabled(),
            &CancelToken::with_deadline(deadline),
        )
        .expect("far-future deadline never fires");
        assert_eq!(costs(&plain), costs(&armed));
        assert_eq!(plain.best().placement, armed.best().placement);
    }

    #[test]
    fn expired_deadline_cancels_before_the_first_generation() {
        let circuit = benchmarks::miller_opamp_fig6();
        let config = PortfolioConfig::new(3).with_restarts(2).with_fast_schedule(true);
        let token =
            CancelToken::with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        let result = run_portfolio_cancellable(&circuit, &config, &Telemetry::disabled(), &token);
        assert_eq!(result.unwrap_err(), Cancelled);
    }

    #[test]
    fn manual_token_cancels_and_unarmed_never_does() {
        let circuit = benchmarks::miller_opamp_fig6();
        let config = PortfolioConfig::new(3).with_restarts(1).with_fast_schedule(true);
        let token = CancelToken::manual();
        assert!(token.is_armed() && !token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        let result = run_portfolio_cancellable(&circuit, &config, &Telemetry::disabled(), &token);
        assert_eq!(result.unwrap_err(), Cancelled);

        let none = CancelToken::none();
        assert!(!none.is_armed());
        none.cancel(); // no-op
        assert!(!none.is_cancelled());
    }

    #[test]
    fn observer_sees_every_restart_in_plan_order_without_changing_the_report() {
        use std::cell::RefCell;

        struct Recorder(RefCell<Vec<(String, usize, usize, usize)>>);
        impl RestartObserver for Recorder {
            fn restart_complete(&self, record: &RestartRecord, completed: usize, total: usize) {
                self.0.borrow_mut().push((
                    record.engine.name().to_string(),
                    record.restart,
                    completed,
                    total,
                ));
            }
        }

        let circuit = benchmarks::miller_opamp_fig6();
        let config = PortfolioConfig::new(4).with_restarts(2).with_fast_schedule(true);
        let plain = run_portfolio(&circuit, &config);
        let recorder = Recorder(RefCell::new(Vec::new()));
        let observed = run_portfolio_observed(
            &circuit,
            &config,
            &Telemetry::disabled(),
            &CancelToken::none(),
            Some(&recorder),
        )
        .expect("an unarmed token never cancels");
        // an observer changes batching, never results
        assert_eq!(costs(&plain), costs(&observed));
        assert_eq!(plain.best().placement, observed.best().placement);

        let seen = recorder.0.into_inner();
        assert_eq!(seen.len(), observed.restarts.len(), "one callback per restart");
        for (i, (engine, restart, completed, total)) in seen.iter().enumerate() {
            let record = &observed.restarts[i];
            assert_eq!((engine.as_str(), *restart), (record.engine.name(), record.restart));
            assert_eq!(*completed, i + 1, "completed counts up in plan order");
            assert_eq!(*total, observed.restarts.len());
        }
    }

    #[test]
    fn early_stop_cuts_the_plan_deterministically() {
        let circuit = benchmarks::miller_opamp_fig6();
        let config = PortfolioConfig::new(9)
            .with_restarts(12)
            .with_fast_schedule(true)
            .with_early_stop(EarlyStop { window: 2, min_improvement: 0.5 });
        // a 50% improvement threshold is effectively unreachable, so the run
        // must stop after the baseline generation plus the stale window
        let a = run_portfolio(&circuit, &config.clone().with_threads(1));
        let b = run_portfolio(&circuit, &config.with_threads(3));
        assert!(a.early_stopped);
        assert_eq!(costs(&a), costs(&b));
        assert!(a.restarts.len() < 12 * 2 + 1);
    }
}
