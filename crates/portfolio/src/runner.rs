//! The parallel multi-start runner.

use crate::config::{PortfolioConfig, RestartTask};
use crate::earlystop::PlateauDetector;
use crate::engine::run_engine_once_traced;
use crate::report::{PortfolioReport, RestartRecord};
use crate::stats::placement_cost;
use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_telemetry::Telemetry;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::time::Instant;

/// Runs the full portfolio on `circuit`.
///
/// The restart plan is generated up front ([`PortfolioConfig::generations`]),
/// executed generation by generation on a rayon pool of `config.threads`
/// workers, and aggregated in plan order. Every restart is a pure function of
/// `(circuit, engine, seed, settings)` and the aggregation never looks at
/// completion timing, so the report — including early stopping — is
/// bit-identical across thread counts.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`PortfolioConfig::validate`]) or the circuit is inconsistent.
#[must_use]
pub fn run_portfolio(circuit: &BenchmarkCircuit, config: &PortfolioConfig) -> PortfolioReport {
    run_portfolio_traced(circuit, config, &Telemetry::disabled())
}

/// [`run_portfolio`] with telemetry threaded through every restart lane
/// (observe-only; the report is bit-identical whatever collector is
/// installed — telemetry never touches a seed stream).
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`PortfolioConfig::validate`]) or the circuit is inconsistent.
#[must_use]
pub fn run_portfolio_traced(
    circuit: &BenchmarkCircuit,
    config: &PortfolioConfig,
    telemetry: &Telemetry,
) -> PortfolioReport {
    config.validate();
    let start = Instant::now();
    let mut run_span = apls_telemetry::span!(
        telemetry,
        "portfolio",
        "portfolio_run",
        circuit = circuit.name.as_str(),
        seed = config.root_seed,
        restarts = config.restarts,
        threads = config.threads
    );
    let pool = ThreadPoolBuilder::new()
        .num_threads(config.threads)
        .build()
        .expect("portfolio thread pool builds");
    let mut detector = config.early_stop.map(PlateauDetector::new);
    let mut records: Vec<RestartRecord> = Vec::new();
    let mut early_stopped = false;

    let generations = config.generations();
    // Without early stopping there is no reason to synchronise between
    // generations: flatten the plan into one fan-out so every worker stays
    // busy until the queue drains.
    let batches: Vec<Vec<RestartTask>> = if detector.is_some() {
        generations
    } else {
        vec![generations.into_iter().flatten().collect()]
    };

    for batch in batches {
        let batch_records: Vec<RestartRecord> = pool.install(|| {
            batch.into_par_iter().map(|task| execute(circuit, task, config, telemetry)).collect()
        });
        records.extend(batch_records);
        if let Some(detector) = detector.as_mut() {
            let best_so_far = records.iter().map(|r| r.cost).fold(f64::INFINITY, f64::min);
            if detector.observe(best_so_far) {
                early_stopped = true;
                break;
            }
        }
    }

    if run_span.is_recording() {
        run_span.arg("restarts_executed", records.len() as u64);
        run_span.arg("early_stopped", early_stopped);
    }
    drop(run_span);
    PortfolioReport::assemble(circuit.name.clone(), config, records, early_stopped, start.elapsed())
}

/// Runs one scheduled restart and scores it with the uniform cost.
fn execute(
    circuit: &BenchmarkCircuit,
    task: RestartTask,
    config: &PortfolioConfig,
    telemetry: &Telemetry,
) -> RestartRecord {
    let start = Instant::now();
    let mut span = apls_telemetry::span!(
        telemetry,
        "portfolio",
        "restart",
        engine = task.engine.name(),
        restart = task.restart,
        seed = task.seed
    );
    let outcome = run_engine_once_traced(
        circuit,
        task.engine,
        task.seed,
        &config.restart_settings(),
        telemetry,
    );
    let cost = placement_cost(&outcome.metrics, config.wirelength_weight);
    if span.is_recording() {
        span.arg("cost", cost);
        span.arg("moves_attempted", outcome.moves_attempted);
    }
    RestartRecord {
        engine: task.engine,
        restart: task.restart,
        seed: task.seed,
        cost,
        runtime: start.elapsed(),
        acceptance_ratio: outcome.acceptance_ratio,
        moves_attempted: outcome.moves_attempted,
        moves_per_second: outcome.moves_per_second,
        enumeration_won: outcome.enumeration_won,
        metrics: outcome.metrics,
        symmetry_error: outcome.symmetry_error,
        placement: outcome.placement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EarlyStop;
    use crate::engine::PortfolioEngine;
    use apls_circuit::benchmarks;

    fn costs(report: &PortfolioReport) -> Vec<(String, usize, f64)> {
        report.restarts.iter().map(|r| (r.engine.name().to_string(), r.restart, r.cost)).collect()
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        let circuit = benchmarks::miller_opamp_fig6();
        let base = PortfolioConfig::new(5).with_restarts(3).with_fast_schedule(true);
        let one = run_portfolio(&circuit, &base.clone().with_threads(1));
        let four = run_portfolio(&circuit, &base.with_threads(4));
        assert_eq!(costs(&one), costs(&four));
        assert_eq!(one.best_cost(), four.best_cost());
        assert_eq!(one.best().placement, four.best().placement);
    }

    #[test]
    fn portfolio_never_loses_to_its_own_restarts() {
        let circuit = benchmarks::miller_opamp_fig6();
        let config = PortfolioConfig::new(2).with_restarts(3).with_fast_schedule(true);
        let report = run_portfolio(&circuit, &config);
        for r in &report.restarts {
            assert!(report.best_cost() <= r.cost);
        }
        // restart 0 of each engine replays the root seed
        for engine in PortfolioEngine::ALL {
            let first = report
                .restarts
                .iter()
                .find(|r| r.engine == engine && r.restart == 0)
                .expect("restart 0 present");
            assert_eq!(first.seed, 2);
        }
    }

    #[test]
    fn early_stop_cuts_the_plan_deterministically() {
        let circuit = benchmarks::miller_opamp_fig6();
        let config = PortfolioConfig::new(9)
            .with_restarts(12)
            .with_fast_schedule(true)
            .with_early_stop(EarlyStop { window: 2, min_improvement: 0.5 });
        // a 50% improvement threshold is effectively unreachable, so the run
        // must stop after the baseline generation plus the stale window
        let a = run_portfolio(&circuit, &config.clone().with_threads(1));
        let b = run_portfolio(&circuit, &config.with_threads(3));
        assert!(a.early_stopped);
        assert_eq!(costs(&a), costs(&b));
        assert!(a.restarts.len() < 12 * 2 + 1);
    }
}
