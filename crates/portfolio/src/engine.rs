//! Uniform adapters over the five placement engines.
//!
//! [`run_engine_once`] is the single restart primitive of the portfolio: it
//! builds the engine's native configuration exactly the way the facade's
//! single-engine path does, runs it, and reduces the engine-specific result
//! to one [`RestartOutcome`]. Because the construction is identical, restart
//! 0 of a portfolio (which reuses the root seed verbatim) replays the
//! corresponding single-engine run bit for bit.

use apls_anneal::Schedule;
use apls_btree::{HbTreePlacer, HbTreePlacerConfig};
use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_circuit::{Placement, PlacementMetrics};
use apls_seqpair::tempering::TEMPERING_LANE;
use apls_seqpair::{
    SeqPairPlacer, SeqPairPlacerConfig, TemperingPlacerConfig, TemperingSeqPairPlacer,
};
use apls_shapefn::{DeterministicPlacer, HierOptions, HierPlacer, ShapeModel};
use apls_telemetry::Telemetry;
use std::fmt;

/// One of the five placement approaches the portfolio races: the three
/// engines of the DATE 2009 survey, the hierarchical cross-engine hybrid,
/// and the parallel-tempering sequence-pair lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortfolioEngine {
    /// Symmetric-feasible sequence-pair annealing (Section II).
    SequencePair,
    /// Hierarchical B*-tree annealing (Section III).
    HbTree,
    /// Deterministic enumeration with enhanced shape functions (Section IV).
    Deterministic,
    /// Hierarchical cross-engine pipeline: enumeration for small basic sets,
    /// pinned-seed B*-tree annealing for larger hierarchy nodes, composed
    /// bottom-up as enhanced shape functions (never loses to
    /// [`PortfolioEngine::Deterministic`] by construction).
    Hier,
    /// Parallel-tempering sequence-pair annealing: K temperature replicas
    /// exchanging configurations on a deterministic pinned-seed swap
    /// schedule, bit-identical at any worker thread count.
    Tempering,
}

impl PortfolioEngine {
    /// All engines, in canonical portfolio order.
    pub const ALL: [PortfolioEngine; 5] = [
        PortfolioEngine::SequencePair,
        PortfolioEngine::HbTree,
        PortfolioEngine::Deterministic,
        PortfolioEngine::Hier,
        PortfolioEngine::Tempering,
    ];

    /// The seed-stream lane of this engine (see
    /// [`apls_anneal::rng::SeedStream`]).
    #[must_use]
    pub fn lane(self) -> u64 {
        match self {
            PortfolioEngine::SequencePair => 1,
            PortfolioEngine::HbTree => 2,
            PortfolioEngine::Deterministic => 3,
            PortfolioEngine::Hier => 4,
            PortfolioEngine::Tempering => TEMPERING_LANE,
        }
    }

    /// Whether restarts with different seeds can produce different results.
    /// The deterministic enumeration engine ignores seeds entirely, so the
    /// portfolio schedules it exactly once.
    #[must_use]
    pub fn is_stochastic(self) -> bool {
        !matches!(self, PortfolioEngine::Deterministic)
    }

    /// Whether the engine exposes a single annealing loop whose acceptance
    /// ratio and moves/sec are meaningful restart-level statistics. The hier
    /// engine is seeded (stochastic) but runs many small node-level anneals
    /// inside an enumeration pipeline, so — like the deterministic engine —
    /// it reports no loop statistics.
    #[must_use]
    pub fn reports_annealing_stats(self) -> bool {
        matches!(
            self,
            PortfolioEngine::SequencePair | PortfolioEngine::HbTree | PortfolioEngine::Tempering
        )
    }

    /// Stable lowercase name used in reports, JSON and the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PortfolioEngine::SequencePair => "seqpair",
            PortfolioEngine::HbTree => "hbtree",
            PortfolioEngine::Deterministic => "deterministic",
            PortfolioEngine::Hier => "hier",
            PortfolioEngine::Tempering => "tempering",
        }
    }

    /// Parses a CLI engine name (the inverse of [`PortfolioEngine::name`]).
    #[must_use]
    pub fn from_name(name: &str) -> Option<PortfolioEngine> {
        match name {
            "seqpair" => Some(PortfolioEngine::SequencePair),
            "hbtree" => Some(PortfolioEngine::HbTree),
            "deterministic" => Some(PortfolioEngine::Deterministic),
            "hier" => Some(PortfolioEngine::Hier),
            "tempering" => Some(PortfolioEngine::Tempering),
            _ => None,
        }
    }
}

impl fmt::Display for PortfolioEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Settings shared by every restart of a portfolio run.
#[derive(Debug, Clone, Copy)]
pub struct RestartSettings {
    /// Use the short test/smoke schedule instead of the size-scaled one.
    pub fast_schedule: bool,
    /// Weight of the wirelength term in the annealing cost functions.
    pub wirelength_weight: f64,
    /// Hierarchy nodes with more than this many modules are refined by the
    /// hier engine's annealing sub-solver (hier engine only).
    pub hier_anneal_threshold: usize,
}

impl Default for RestartSettings {
    fn default() -> Self {
        RestartSettings { fast_schedule: false, wirelength_weight: 0.5, hier_anneal_threshold: 5 }
    }
}

/// The engine-independent result of one restart.
#[derive(Debug, Clone)]
pub struct RestartOutcome {
    /// The placement the restart produced.
    pub placement: Placement,
    /// Its metrics against the circuit's netlist.
    pub metrics: PlacementMetrics,
    /// Largest symmetry deviation (doubled dbu).
    pub symmetry_error: i64,
    /// Move acceptance ratio (`None` for the deterministic engine).
    pub acceptance_ratio: Option<f64>,
    /// Proposals evaluated (0 for the deterministic engine).
    pub moves_attempted: u64,
    /// Annealing throughput in proposals per second, measured over the
    /// annealing loop only (`None` for the deterministic engine).
    pub moves_per_second: Option<f64>,
    /// Whether the hier engine's pure-enumeration fallback beat its hybrid
    /// pipeline and was returned instead (`None` for every other engine).
    pub enumeration_won: Option<bool>,
}

/// Runs `engine` once on `circuit` with the given seed and settings.
///
/// # Panics
///
/// Panics if the circuit's hierarchy or constraints are inconsistent with its
/// netlist (the same contract as the facade's single-engine path).
#[must_use]
pub fn run_engine_once(
    circuit: &BenchmarkCircuit,
    engine: PortfolioEngine,
    seed: u64,
    settings: &RestartSettings,
) -> RestartOutcome {
    run_engine_once_traced(circuit, engine, seed, settings, &Telemetry::disabled())
}

/// [`run_engine_once`] with telemetry threaded into the engine's annealing
/// loop / sub-solver dispatch (observe-only; the outcome is bit-identical
/// whatever collector is installed).
///
/// # Panics
///
/// Panics if the circuit's hierarchy or constraints are inconsistent with its
/// netlist (the same contract as the facade's single-engine path).
#[must_use]
pub fn run_engine_once_traced(
    circuit: &BenchmarkCircuit,
    engine: PortfolioEngine,
    seed: u64,
    settings: &RestartSettings,
    telemetry: &Telemetry,
) -> RestartOutcome {
    match engine {
        PortfolioEngine::SequencePair => {
            let mut config = SeqPairPlacerConfig {
                seed,
                wirelength_weight: settings.wirelength_weight,
                ..SeqPairPlacerConfig::for_netlist(&circuit.netlist)
            };
            if settings.fast_schedule {
                config.schedule = Schedule::fast();
            }
            let result = SeqPairPlacer::new(&circuit.netlist, &circuit.constraints)
                .run_traced(&config, telemetry);
            RestartOutcome {
                placement: result.placement,
                metrics: result.metrics,
                symmetry_error: result.symmetry_error,
                acceptance_ratio: Some(result.stats.acceptance_ratio()),
                moves_attempted: result.stats.moves.attempted,
                moves_per_second: result.stats.moves_per_second(),
                enumeration_won: None,
            }
        }
        PortfolioEngine::HbTree => {
            let mut config = HbTreePlacerConfig {
                seed,
                wirelength_weight: settings.wirelength_weight,
                ..HbTreePlacerConfig::for_circuit(circuit)
            };
            if settings.fast_schedule {
                config.schedule = Schedule::fast();
            }
            let result = HbTreePlacer::new(circuit).run_traced(&config, telemetry);
            RestartOutcome {
                placement: result.placement,
                metrics: result.metrics,
                symmetry_error: result.symmetry_error,
                acceptance_ratio: Some(result.stats.acceptance_ratio()),
                moves_attempted: result.stats.moves.attempted,
                moves_per_second: result.stats.moves_per_second(),
                enumeration_won: None,
            }
        }
        PortfolioEngine::Deterministic => {
            let result = DeterministicPlacer::new(circuit).run(ShapeModel::Enhanced);
            let placement =
                result.placement.expect("the enhanced model always returns a placement");
            let metrics = placement.metrics(&circuit.netlist);
            let symmetry_error = placement.symmetry_error(&circuit.constraints);
            RestartOutcome {
                placement,
                metrics,
                symmetry_error,
                acceptance_ratio: None,
                moves_attempted: 0,
                moves_per_second: None,
                enumeration_won: None,
            }
        }
        PortfolioEngine::Tempering => {
            let mut config = TemperingPlacerConfig {
                seed,
                wirelength_weight: settings.wirelength_weight,
                ..TemperingPlacerConfig::for_netlist(&circuit.netlist)
            };
            if settings.fast_schedule {
                config.schedule = Schedule::fast();
            }
            let result = TemperingSeqPairPlacer::new(&circuit.netlist, &circuit.constraints)
                .run_traced(&config, telemetry);
            RestartOutcome {
                placement: result.placement,
                metrics: result.metrics,
                symmetry_error: result.symmetry_error,
                acceptance_ratio: Some(result.stats.acceptance_ratio()),
                moves_attempted: result.stats.moves.attempted,
                moves_per_second: result.stats.moves_per_second(),
                enumeration_won: None,
            }
        }
        PortfolioEngine::Hier => {
            let options = HierOptions::default()
                .with_seed(seed)
                .with_fast_schedule(settings.fast_schedule)
                .with_anneal_threshold(settings.hier_anneal_threshold);
            let result = HierPlacer::new(circuit)
                .with_options(options)
                .with_sub_solver(Box::new(apls_shapefn::BTreeAnnealSolver))
                .with_telemetry(telemetry.clone())
                .run();
            let metrics = result.placement.metrics(&circuit.netlist);
            let symmetry_error = result.placement.symmetry_error(&circuit.constraints);
            RestartOutcome {
                placement: result.placement,
                metrics,
                symmetry_error,
                acceptance_ratio: None,
                moves_attempted: 0,
                moves_per_second: None,
                enumeration_won: Some(result.enumeration_won),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::benchmarks;

    #[test]
    fn names_round_trip() {
        for engine in PortfolioEngine::ALL {
            assert_eq!(PortfolioEngine::from_name(engine.name()), Some(engine));
        }
        assert_eq!(PortfolioEngine::from_name("portfolio"), None);
    }

    #[test]
    fn every_engine_produces_a_legal_outcome() {
        let circuit = benchmarks::miller_opamp_fig6();
        let settings = RestartSettings { fast_schedule: true, ..RestartSettings::default() };
        for engine in PortfolioEngine::ALL {
            let outcome = run_engine_once(&circuit, engine, 11, &settings);
            assert!(outcome.placement.is_complete(), "{engine}");
            assert_eq!(outcome.metrics.overlap_area, 0, "{engine}");
            assert_eq!(outcome.acceptance_ratio.is_some(), engine.reports_annealing_stats());
        }
    }

    #[test]
    fn restarts_are_seed_reproducible() {
        let circuit = benchmarks::miller_opamp_fig6();
        let settings = RestartSettings { fast_schedule: true, ..RestartSettings::default() };
        let a = run_engine_once(&circuit, PortfolioEngine::SequencePair, 21, &settings);
        let b = run_engine_once(&circuit, PortfolioEngine::SequencePair, 21, &settings);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.metrics.wirelength, b.metrics.wirelength);
    }
}
