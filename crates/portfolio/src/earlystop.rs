//! Plateau detection for early stopping.

use crate::config::EarlyStop;

/// Tracks the best cost across generations and signals when it plateaus.
///
/// The detector only ever sees generation-boundary snapshots in restart-index
/// order, so its verdicts are a pure function of the restart plan — never of
/// thread scheduling.
#[derive(Debug, Clone)]
pub struct PlateauDetector {
    policy: EarlyStop,
    best: Option<f64>,
    stale_generations: usize,
}

impl PlateauDetector {
    /// Creates a detector for the given policy.
    #[must_use]
    pub fn new(policy: EarlyStop) -> Self {
        PlateauDetector { policy, best: None, stale_generations: 0 }
    }

    /// Feeds the best cost observed so far (after one more generation has
    /// completed). Returns `true` once the run should stop.
    pub fn observe(&mut self, best_so_far: f64) -> bool {
        match self.best {
            None => {
                self.best = Some(best_so_far);
                false
            }
            Some(previous) => {
                let improved =
                    best_so_far < previous * (1.0 - self.policy.min_improvement) - f64::EPSILON;
                if improved {
                    self.best = Some(best_so_far);
                    self.stale_generations = 0;
                } else {
                    self.stale_generations += 1;
                }
                self.stale_generations >= self.policy.window
            }
        }
    }

    /// Generations since the last improvement.
    #[must_use]
    pub fn stale_generations(&self) -> usize {
        self.stale_generations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_after_a_full_stale_window() {
        let mut d = PlateauDetector::new(EarlyStop { window: 2, min_improvement: 0.01 });
        assert!(!d.observe(100.0)); // baseline
        assert!(!d.observe(90.0)); // 10% better: progress
        assert!(!d.observe(89.9)); // <1% better: stale 1
        assert!(d.observe(89.9)); // stale 2 -> stop
    }

    #[test]
    fn improvement_resets_the_window() {
        let mut d = PlateauDetector::new(EarlyStop { window: 2, min_improvement: 0.01 });
        assert!(!d.observe(100.0));
        assert!(!d.observe(100.0)); // stale 1
        assert!(!d.observe(80.0)); // resets
        assert!(!d.observe(80.0)); // stale 1
        assert!(d.observe(80.0)); // stale 2 -> stop
    }

    #[test]
    fn zero_threshold_counts_any_strict_improvement() {
        let mut d = PlateauDetector::new(EarlyStop { window: 1, min_improvement: 0.0 });
        assert!(!d.observe(10.0));
        assert!(!d.observe(9.0));
        assert!(d.observe(9.0));
    }
}
