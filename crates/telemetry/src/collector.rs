//! Pluggable event sinks: the [`Collector`] trait plus the in-memory and
//! streaming implementations.

use crate::event::TraceEvent;
use std::fmt;
use std::io::Write;
use std::sync::Mutex;

/// A sink for trace events.
///
/// Collectors must be cheap and infallible from the caller's perspective:
/// instrumented hot paths call [`Collector::record`] while holding no locks
/// of their own, and a collector that fails (e.g. a broken pipe) must swallow
/// the error rather than propagate it into the placement engines.
pub trait Collector: Send + Sync {
    /// Records one event.
    fn record(&self, event: TraceEvent);
}

/// Collector that buffers every event in memory.
///
/// Used by tests (inspect [`RecordingCollector::events`]) and by the CLI's
/// `--trace` mode, which writes the buffer out once the run finishes.
#[derive(Debug, Default)]
pub struct RecordingCollector {
    events: Mutex<Vec<TraceEvent>>,
}

impl RecordingCollector {
    /// Creates an empty recording collector.
    #[must_use]
    pub fn new() -> Self {
        RecordingCollector::default()
    }

    /// A snapshot of the recorded events, in arrival order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("recording collector poisoned").clone()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("recording collector poisoned").len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the buffer as JSON-lines: one Chrome `trace_event` object per
    /// line, terminated by a newline.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let events = self.events.lock().expect("recording collector poisoned");
        let mut out = String::new();
        for event in events.iter() {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Renders the buffer as a complete Chrome trace document
    /// (`{"traceEvents":[...]}`), loadable by `chrome://tracing` / Perfetto.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let events = self.events.lock().expect("recording collector poisoned");
        let mut out = String::from("{\"traceEvents\":[");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json_line());
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

impl Collector for RecordingCollector {
    fn record(&self, event: TraceEvent) {
        self.events.lock().expect("recording collector poisoned").push(event);
    }
}

/// Collector that fans each event out to several sinks in order.
///
/// Built by [`crate::Telemetry::tee`] so a daemon can stream a trace to disk
/// *and* feed the in-memory flight recorder from the same instrumentation
/// points. Events are cloned for all sinks but the last.
pub struct FanoutCollector {
    sinks: Vec<std::sync::Arc<dyn Collector>>,
}

impl FanoutCollector {
    /// Creates a fan-out over `sinks`; events are delivered in order.
    #[must_use]
    pub fn new(sinks: Vec<std::sync::Arc<dyn Collector>>) -> Self {
        FanoutCollector { sinks }
    }
}

impl fmt::Debug for FanoutCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FanoutCollector({} sinks)", self.sinks.len())
    }
}

impl Collector for FanoutCollector {
    fn record(&self, event: TraceEvent) {
        let Some((last, rest)) = self.sinks.split_last() else {
            return;
        };
        for sink in rest {
            sink.record(event.clone());
        }
        last.record(event);
    }
}

/// Collector that writes each event eagerly as one JSON line.
///
/// Used by `apls serve --trace FILE` so a long-lived daemon streams its trace
/// instead of buffering it. Write errors are swallowed: telemetry must never
/// take down the host process.
pub struct StreamCollector {
    out: Mutex<Box<dyn Write + Send>>,
}

impl StreamCollector {
    /// Creates a streaming collector over any writer.
    #[must_use]
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        StreamCollector { out: Mutex::new(out) }
    }

    /// Flushes the underlying writer (errors swallowed).
    pub fn flush(&self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

impl fmt::Debug for StreamCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StreamCollector(..)")
    }
}

impl Collector for StreamCollector {
    fn record(&self, event: TraceEvent) {
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{}", event.to_json_line());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    fn sample(name: &str) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "test".to_string(),
            ph: 'i',
            ts_us: 1,
            dur_us: None,
            tid: 1,
            args: vec![("k".to_string(), Value::U64(1))],
        }
    }

    #[test]
    fn recording_collector_round_trips_formats() {
        let collector = RecordingCollector::new();
        assert!(collector.is_empty());
        collector.record(sample("a"));
        collector.record(sample("b"));
        assert_eq!(collector.len(), 2);
        let lines = collector.to_json_lines();
        assert_eq!(lines.lines().count(), 2);
        let doc = collector.to_chrome_trace();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"name\":\"b\""));
    }

    #[test]
    fn stream_collector_writes_lines() {
        use std::sync::Arc;
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        let collector = StreamCollector::new(Box::new(buf.clone()));
        collector.record(sample("x"));
        collector.flush();
        let written = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(written.ends_with("}\n"));
        assert!(written.contains("\"name\":\"x\""));
    }
}
