//! The always-on flight recorder: a fixed-size ring of recent trace events
//! with an optional crash-survivable disk spill.
//!
//! The recorder is a [`Collector`] designed to run *unconditionally* in a
//! production daemon, so its hot path is deliberately cheap: one short
//! mutex-protected `VecDeque` push (O(1), no allocation once the ring is
//! warm) plus an optional category check. When the process panics, trips a
//! fault, or receives a `dump` protocol command, the ring is snapshotted to a
//! JSON-lines file for postmortem analysis — the last `capacity` interesting
//! events leading up to the incident.
//!
//! Because an in-memory ring dies with SIGKILL, the recorder can also *spill*
//! each admitted event to disk as it arrives. The spill is itself a ring:
//! two files (`<base>.a` / `<base>.b`) written alternately, truncating the
//! older one every `capacity` lines, so disk usage is bounded and at least
//! the most recent `capacity` events survive a hard kill. Each line is
//! written with a single `write_all` of a complete newline-terminated buffer,
//! so a kill can tear at most the final line (readers skip a trailing line
//! with no `\n`).

use crate::collector::Collector;
use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Fixed-capacity ring buffer of recent [`TraceEvent`]s.
///
/// See the [module docs](self) for the design. Construct with
/// [`FlightRecorder::new`], optionally narrow with
/// [`with_categories`](FlightRecorder::with_categories) and add a
/// crash-survivable spill with [`with_spill`](FlightRecorder::with_spill),
/// then install via [`crate::Telemetry::tee`] or
/// [`crate::Telemetry::with_collector`].
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    /// Events evicted from the ring because it was full.
    overwritten: AtomicU64,
    /// Events rejected by the category allowlist.
    filtered: AtomicU64,
    /// Category allowlist; `None` admits everything.
    categories: Option<Vec<String>>,
    spill: Option<Mutex<Spill>>,
}

/// Two-file disk ring: write `limit` lines to one file, truncate the other,
/// switch. Invariant: the newest events are always on disk.
#[derive(Debug)]
struct Spill {
    file: File,
    lines: usize,
    limit: usize,
    paths: [PathBuf; 2],
    active: usize,
}

impl Spill {
    fn open(base: &Path, limit: usize) -> io::Result<Spill> {
        let paths = [spill_path(base, "a"), spill_path(base, "b")];
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(&paths[0])?;
        // Truncate any stale second file from a previous run so readers never
        // mix epochs.
        let _ = OpenOptions::new().create(true).write(true).truncate(true).open(&paths[1]);
        Ok(Spill { file, lines: 0, limit, paths, active: 0 })
    }

    fn write_line(&mut self, line: &[u8]) {
        if self.lines >= self.limit {
            self.active = 1 - self.active;
            match OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&self.paths[self.active])
            {
                Ok(file) => {
                    self.file = file;
                    self.lines = 0;
                }
                // Rotation failure: keep appending to the current file rather
                // than lose events. Telemetry must never fail the host.
                Err(_) => self.lines = 0,
            }
        }
        if self.file.write_all(line).is_ok() {
            self.lines += 1;
        }
    }
}

fn spill_path(base: &Path, suffix: &str) -> PathBuf {
    let mut name = base.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".");
    name.push(suffix);
    base.with_file_name(name)
}

impl FlightRecorder {
    /// Creates a recorder holding the most recent `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            overwritten: AtomicU64::new(0),
            filtered: AtomicU64::new(0),
            categories: None,
            spill: None,
        }
    }

    /// Restricts the recorder to events whose category is in `allow`.
    ///
    /// This is the overhead lever: a daemon records only its own coarse
    /// categories (e.g. `service`, `reactor`) and drops the engines'
    /// per-temperature-step chatter before it touches the ring.
    #[must_use]
    pub fn with_categories(mut self, allow: &[&str]) -> Self {
        self.categories = Some(allow.iter().map(|c| (*c).to_string()).collect());
        self
    }

    /// Adds a crash-survivable disk spill rooted at `base` (writes
    /// `<base>.a` / `<base>.b`). See the module docs for the file-ring
    /// protocol.
    ///
    /// # Errors
    ///
    /// Fails if the first spill file cannot be created; after construction
    /// all spill I/O errors are swallowed.
    pub fn with_spill(mut self, base: &Path) -> io::Result<Self> {
        let limit = self.capacity.max(1);
        self.spill = Some(Mutex::new(Spill::open(base, limit)?));
        Ok(self)
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder poisoned").len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// Events dropped by the category allowlist.
    #[must_use]
    pub fn filtered(&self) -> u64 {
        self.filtered.load(Ordering::Relaxed)
    }

    /// A snapshot of the held events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.ring.lock().expect("flight recorder poisoned").iter().cloned().collect()
    }

    /// Renders the ring as JSON-lines (one Chrome `trace_event` per line).
    #[must_use]
    pub fn dump_json_lines(&self) -> String {
        let mut out = String::new();
        for event in self.snapshot() {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Writes the ring to `path` as JSON-lines, returning the event count.
    ///
    /// # Errors
    ///
    /// Propagates file creation/write errors; callers on crash paths should
    /// treat a failed dump as best-effort.
    pub fn dump_to(&self, path: &Path) -> io::Result<usize> {
        let body = self.dump_json_lines();
        let mut file = File::create(path)?;
        file.write_all(body.as_bytes())?;
        file.flush()?;
        Ok(body.lines().count())
    }
}

impl Collector for FlightRecorder {
    fn record(&self, event: TraceEvent) {
        if let Some(allow) = &self.categories {
            if !allow.iter().any(|c| c == &event.cat) {
                self.filtered.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if let Some(spill) = &self.spill {
            let mut line = event.to_json_line();
            line.push('\n');
            if let Ok(mut spill) = spill.lock() {
                spill.write_line(line.as_bytes());
            }
        }
        if self.capacity == 0 {
            self.overwritten.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    fn sample(cat: &str, name: &str) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            ts_us: 1,
            dur_us: None,
            tid: 1,
            args: vec![("k".to_string(), Value::U64(1))],
        }
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record(sample("service", &format!("e{i}")));
        }
        let names: Vec<String> = rec.snapshot().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["e2", "e3", "e4"]);
        assert_eq!(rec.overwritten(), 2);
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn category_allowlist_filters_before_the_ring() {
        let rec = FlightRecorder::new(8).with_categories(&["service", "reactor"]);
        rec.record(sample("service", "keep"));
        rec.record(sample("anneal", "drop"));
        rec.record(sample("reactor", "keep_too"));
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.filtered(), 1);
        assert!(rec.snapshot().iter().all(|e| e.cat != "anneal"));
    }

    #[test]
    fn dump_json_lines_is_one_event_per_line() {
        let rec = FlightRecorder::new(4);
        rec.record(sample("service", "a"));
        rec.record(sample("service", "b"));
        let dump = rec.dump_json_lines();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn spill_rotates_between_two_bounded_files() {
        let dir = std::env::temp_dir().join(format!("apls-recorder-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("flight.jsonl");
        let rec = FlightRecorder::new(2).with_spill(&base).unwrap();
        for i in 0..5 {
            rec.record(sample("service", &format!("e{i}")));
        }
        let a = std::fs::read_to_string(spill_path(&base, "a")).unwrap();
        let b = std::fs::read_to_string(spill_path(&base, "b")).unwrap();
        let mut lines: Vec<&str> = a.lines().chain(b.lines()).collect();
        assert!(lines.len() >= 2, "spill must retain at least `capacity` events");
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        lines.sort();
        // e4 is the newest event and must be on disk.
        assert!(lines.iter().any(|l| l.contains("\"name\":\"e4\"")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_capacity_ring_counts_but_keeps_nothing() {
        let rec = FlightRecorder::new(0);
        rec.record(sample("service", "x"));
        assert!(rec.is_empty());
        assert_eq!(rec.overwritten(), 1);
    }
}
