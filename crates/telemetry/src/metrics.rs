//! A small metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! The registry is independent of the tracing side of the crate — a service
//! keeps metrics even when no trace collector is installed. Handles returned
//! by the registry ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones updating lock-free atomics; the registry lock is only taken at
//! registration and snapshot time. Snapshots render in `BTreeMap` name order,
//! so metric JSON is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency histogram bucket upper bounds, in milliseconds.
pub const LATENCY_MS_BOUNDS: &[f64] = &[
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
    5000.0,
];

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Bucket upper bounds (inclusive); an implicit `+inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    /// Sum of observed values, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations (typically latencies in
/// milliseconds, see [`LATENCY_MS_BOUNDS`]).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    ///
    /// Non-finite values (NaN, ±∞) are ignored entirely — they carry no
    /// latency information and would otherwise poison `sum` and the quantile
    /// estimates. Negative values land in the first bucket (every bound is an
    /// inclusive *upper* bound).
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let core = &self.0;
        let idx = core.bounds.iter().position(|&b| v <= b).unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.total.fetch_add(1, Ordering::Relaxed);
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket cumulative snapshot: `(upper_bound, count ≤ bound)` pairs,
    /// the final entry with `None` bound covering everything.
    #[must_use]
    pub fn buckets(&self) -> Vec<(Option<f64>, u64)> {
        let core = &self.0;
        let mut cumulative = 0u64;
        let mut out = Vec::with_capacity(core.counts.len());
        for (i, count) in core.counts.iter().enumerate() {
            cumulative += count.load(Ordering::Relaxed);
            out.push((core.bounds.get(i).copied(), cumulative));
        }
        out
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts by
    /// linear interpolation inside the matched bucket, the same estimator as
    /// Prometheus's `histogram_quantile`.
    ///
    /// The estimate is a pure function of the bucket counts, so two
    /// histograms with identical counts produce bit-identical quantiles.
    /// Returns `None` for an empty histogram. The first bucket interpolates
    /// from 0 (observations are assumed non-negative latencies); a rank that
    /// falls in the overflow bucket is clamped to the largest finite bound.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let buckets = self.buckets();
        let total = buckets.last().map_or(0, |&(_, c)| c);
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(f64::MIN_POSITIVE);
        let mut prev_cum = 0u64;
        let mut lower = 0.0f64;
        for (bound, cum) in buckets {
            if cum as f64 >= rank {
                let Some(upper) = bound else {
                    // Overflow bucket: no finite upper edge to interpolate
                    // toward; report the largest finite bound (or `None` for
                    // a bound-less histogram).
                    return if lower > 0.0 || prev_cum > 0 { Some(lower) } else { None };
                };
                let in_bucket = (cum - prev_cum) as f64;
                let fraction = (rank - prev_cum as f64) / in_bucket;
                return Some(lower + (upper - lower) * fraction);
            }
            prev_cum = cum;
            if let Some(b) = bound {
                lower = b;
            }
        }
        None
    }

    fn render_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"count\":{},\"sum\":{}", self.count(), json_f64(self.sum()));
        for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            let value = match self.quantile(q) {
                Some(v) => json_f64(v),
                None => "null".to_string(),
            };
            let _ = write!(out, ",\"{label}\":{value}");
        }
        out.push_str(",\"buckets\":[");
        for (i, (bound, count)) in self.buckets().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match bound {
                Some(b) => {
                    let _ = write!(out, "{{\"le\":{},\"count\":{count}}}", json_f64(b));
                }
                None => {
                    let _ = write!(out, "{{\"le\":null,\"count\":{count}}}");
                }
            }
        }
        out.push_str("]}");
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A registry of named counters, gauges, histograms and info metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    /// Info metrics: constant label sets exposed as a gauge fixed at 1
    /// (the Prometheus `build_info` idiom).
    infos: Mutex<BTreeMap<String, BTreeMap<String, String>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given bucket bounds on first use (later calls keep the first bounds).
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histograms
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_insert_with(|| {
                let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
                Histogram(Arc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    counts,
                    total: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0.0f64.to_bits()),
                }))
            })
            .clone()
    }

    /// Registers (or replaces) an info metric: a set of constant string
    /// labels published under `name` with a fixed value of 1, e.g.
    /// `build_info{version="0.1.0",git="abc1234",poller="epoll"} 1`.
    pub fn set_info(&self, name: &str, labels: &[(&str, &str)]) {
        let labels: BTreeMap<String, String> =
            labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        self.infos.lock().expect("metrics registry poisoned").insert(name.to_string(), labels);
    }

    /// Renders the whole registry as one deterministic JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..},"infos":{..}}`,
    /// keys in name order.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, c)) in
            self.counters.lock().expect("metrics registry poisoned").iter().enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            crate::event::quote_into(&mut out, name);
            let _ = write!(out, ":{}", c.get());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in
            self.gauges.lock().expect("metrics registry poisoned").iter().enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            crate::event::quote_into(&mut out, name);
            let _ = write!(out, ":{}", g.get());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in
            self.histograms.lock().expect("metrics registry poisoned").iter().enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            crate::event::quote_into(&mut out, name);
            out.push(':');
            h.render_json(&mut out);
        }
        out.push_str("},\"infos\":{");
        for (i, (name, labels)) in
            self.infos.lock().expect("metrics registry poisoned").iter().enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            crate::event::quote_into(&mut out, name);
            out.push_str(":{");
            for (j, (k, v)) in labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                crate::event::quote_into(&mut out, k);
                out.push(':');
                crate::event::quote_into(&mut out, v);
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4), every metric name prefixed with `prefix`.
    ///
    /// Counters and gauges render as single samples, histograms as
    /// `_bucket{le="..."}` / `_sum` / `_count` families with a trailing
    /// `le="+Inf"` bucket, and info metrics as a labelled gauge fixed at 1.
    /// Output is deterministic: sections in counter/gauge/histogram/info
    /// order, names in `BTreeMap` order, label keys sorted.
    #[must_use]
    pub fn render_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.lock().expect("metrics registry poisoned").iter() {
            let _ = writeln!(out, "# TYPE {prefix}{name} counter");
            let _ = writeln!(out, "{prefix}{name} {}", c.get());
        }
        for (name, g) in self.gauges.lock().expect("metrics registry poisoned").iter() {
            let _ = writeln!(out, "# TYPE {prefix}{name} gauge");
            let _ = writeln!(out, "{prefix}{name} {}", g.get());
        }
        for (name, h) in self.histograms.lock().expect("metrics registry poisoned").iter() {
            let _ = writeln!(out, "# TYPE {prefix}{name} histogram");
            for (bound, cum) in h.buckets() {
                match bound {
                    Some(b) => {
                        let _ = writeln!(out, "{prefix}{name}_bucket{{le=\"{b}\"}} {cum}");
                    }
                    None => {
                        let _ = writeln!(out, "{prefix}{name}_bucket{{le=\"+Inf\"}} {cum}");
                    }
                }
            }
            let _ = writeln!(out, "{prefix}{name}_sum {}", prom_f64(h.sum()));
            let _ = writeln!(out, "{prefix}{name}_count {}", h.count());
        }
        for (name, labels) in self.infos.lock().expect("metrics registry poisoned").iter() {
            let _ = writeln!(out, "# TYPE {prefix}{name} gauge");
            let _ = write!(out, "{prefix}{name}{{");
            for (j, (k, v)) in labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k}=\"{}\"", prom_label_escape(v));
            }
            out.push_str("} 1\n");
        }
        out
    }
}

/// Prometheus sample value: non-finite values render per the exposition
/// format (`NaN`, `+Inf`, `-Inf`).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escapes a label value per the exposition format: backslash, double quote
/// and newline.
fn prom_label_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("jobs");
        c.inc();
        c.add(2);
        assert_eq!(registry.counter("jobs").get(), 3);
        let g = registry.gauge("depth");
        g.set(5);
        g.sub(2);
        g.add(1);
        assert_eq!(registry.gauge("depth").get(), 4);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-9);
        assert_eq!(h.buckets(), vec![(Some(1.0), 1), (Some(10.0), 2), (None, 3)]);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_ordered() {
        let registry = MetricsRegistry::new();
        registry.counter("b").inc();
        registry.counter("a").add(2);
        registry.gauge("g").set(-1);
        registry.histogram("h", &[1.0]).observe(2.0);
        let json = registry.snapshot_json();
        assert_eq!(json, registry.snapshot_json());
        let a = json.find("\"a\":2").unwrap();
        let b = json.find("\"b\":1").unwrap();
        assert!(a < b, "counters must render in name order: {json}");
        assert!(json.contains("\"g\":-1"));
        assert!(json.contains("{\"le\":null,\"count\":1}"));
    }

    #[test]
    fn observation_exactly_on_a_bound_counts_in_that_bucket() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", &[1.0, 10.0]);
        h.observe(1.0);
        h.observe(10.0);
        // `le` semantics: v <= bound lands in the bound's own bucket.
        assert_eq!(h.buckets(), vec![(Some(1.0), 1), (Some(10.0), 2), (None, 2)]);
    }

    #[test]
    fn negative_observations_land_in_the_first_bucket() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", &[1.0, 10.0]);
        h.observe(-5.0);
        assert_eq!(h.buckets(), vec![(Some(1.0), 1), (Some(10.0), 1), (None, 1)]);
        assert_eq!(h.count(), 1);
        assert!((h.sum() + 5.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", &[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.quantile(0.5), None);
        h.observe(0.5);
        assert_eq!(h.count(), 1);
        assert!(h.sum().is_finite());
    }

    #[test]
    fn quantiles_interpolate_deterministically() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", &[10.0, 20.0, 40.0]);
        // 10 observations in (0,10], 10 in (10,20]; none beyond.
        for _ in 0..10 {
            h.observe(5.0);
            h.observe(15.0);
        }
        // rank(0.5) = 10 → exactly fills the first bucket → its upper bound.
        assert_eq!(h.quantile(0.5), Some(10.0));
        // rank(0.95) = 19 → 9/10 through the second bucket: 10 + 10*0.9.
        assert_eq!(h.quantile(0.95), Some(19.0));
        // rank clamps just above zero → the bottom edge of the first bucket.
        assert!(h.quantile(0.0).unwrap().abs() < 1e-300);
        assert_eq!(h.quantile(1.0), Some(20.0));
        // Determinism: identical counts → bit-identical estimates and JSON.
        let h2 = registry.histogram("lat2", &[10.0, 20.0, 40.0]);
        for _ in 0..10 {
            h2.observe(5.0);
            h2.observe(15.0);
        }
        assert_eq!(h.quantile(0.99), h2.quantile(0.99));
        let json = registry.snapshot_json();
        assert_eq!(json, registry.snapshot_json());
        assert!(json.contains("\"p50\":10,\"p95\":19,\"p99\":19.8"), "quantiles in json: {json}");
    }

    #[test]
    fn quantile_in_overflow_bucket_clamps_to_last_bound() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", &[1.0, 2.0]);
        h.observe(100.0);
        h.observe(200.0);
        assert_eq!(h.quantile(0.99), Some(2.0));
    }

    #[test]
    fn info_metrics_round_trip_json_and_prometheus() {
        let registry = MetricsRegistry::new();
        registry.set_info("build_info", &[("version", "1.2.3"), ("git", "abc\"123")]);
        let json = registry.snapshot_json();
        assert!(json
            .contains("\"infos\":{\"build_info\":{\"git\":\"abc\\\"123\",\"version\":\"1.2.3\"}}"));
        let text = registry.render_prometheus("apls_");
        assert!(text.contains("# TYPE apls_build_info gauge"));
        assert!(text.contains("apls_build_info{git=\"abc\\\"123\",version=\"1.2.3\"} 1"));
    }

    #[test]
    fn prometheus_exposition_renders_all_metric_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("jobs_total").add(3);
        registry.gauge("depth").set(-2);
        let h = registry.histogram("lat_ms", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(50.0);
        let text = registry.render_prometheus("apls_");
        assert_eq!(text, registry.render_prometheus("apls_"));
        assert!(text.contains("# TYPE apls_jobs_total counter\napls_jobs_total 3\n"));
        assert!(text.contains("# TYPE apls_depth gauge\napls_depth -2\n"));
        assert!(text.contains("apls_lat_ms_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("apls_lat_ms_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("apls_lat_ms_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("apls_lat_ms_sum 50.5\n"));
        assert!(text.contains("apls_lat_ms_count 2\n"));
    }
}
