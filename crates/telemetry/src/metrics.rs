//! A small metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! The registry is independent of the tracing side of the crate — a service
//! keeps metrics even when no trace collector is installed. Handles returned
//! by the registry ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones updating lock-free atomics; the registry lock is only taken at
//! registration and snapshot time. Snapshots render in `BTreeMap` name order,
//! so metric JSON is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency histogram bucket upper bounds, in milliseconds.
pub const LATENCY_MS_BOUNDS: &[f64] = &[
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
    5000.0,
];

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Bucket upper bounds (inclusive); an implicit `+inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    /// Sum of observed values, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations (typically latencies in
/// milliseconds, see [`LATENCY_MS_BOUNDS`]).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let core = &self.0;
        let idx = core.bounds.iter().position(|&b| v <= b).unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.total.fetch_add(1, Ordering::Relaxed);
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket cumulative snapshot: `(upper_bound, count ≤ bound)` pairs,
    /// the final entry with `None` bound covering everything.
    #[must_use]
    pub fn buckets(&self) -> Vec<(Option<f64>, u64)> {
        let core = &self.0;
        let mut cumulative = 0u64;
        let mut out = Vec::with_capacity(core.counts.len());
        for (i, count) in core.counts.iter().enumerate() {
            cumulative += count.load(Ordering::Relaxed);
            out.push((core.bounds.get(i).copied(), cumulative));
        }
        out
    }

    fn render_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"count\":{},\"sum\":{}", self.count(), json_f64(self.sum()));
        out.push_str(",\"buckets\":[");
        for (i, (bound, count)) in self.buckets().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match bound {
                Some(b) => {
                    let _ = write!(out, "{{\"le\":{},\"count\":{count}}}", json_f64(b));
                }
                None => {
                    let _ = write!(out, "{{\"le\":null,\"count\":{count}}}");
                }
            }
        }
        out.push_str("]}");
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A registry of named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given bucket bounds on first use (later calls keep the first bounds).
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histograms
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_insert_with(|| {
                let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
                Histogram(Arc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    counts,
                    total: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0.0f64.to_bits()),
                }))
            })
            .clone()
    }

    /// Renders the whole registry as one deterministic JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..}}`, keys in name
    /// order.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, c)) in
            self.counters.lock().expect("metrics registry poisoned").iter().enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            crate::event::quote_into(&mut out, name);
            let _ = write!(out, ":{}", c.get());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in
            self.gauges.lock().expect("metrics registry poisoned").iter().enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            crate::event::quote_into(&mut out, name);
            let _ = write!(out, ":{}", g.get());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in
            self.histograms.lock().expect("metrics registry poisoned").iter().enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            crate::event::quote_into(&mut out, name);
            out.push(':');
            h.render_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("jobs");
        c.inc();
        c.add(2);
        assert_eq!(registry.counter("jobs").get(), 3);
        let g = registry.gauge("depth");
        g.set(5);
        g.sub(2);
        g.add(1);
        assert_eq!(registry.gauge("depth").get(), 4);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-9);
        assert_eq!(h.buckets(), vec![(Some(1.0), 1), (Some(10.0), 2), (None, 3)]);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_ordered() {
        let registry = MetricsRegistry::new();
        registry.counter("b").inc();
        registry.counter("a").add(2);
        registry.gauge("g").set(-1);
        registry.histogram("h", &[1.0]).observe(2.0);
        let json = registry.snapshot_json();
        assert_eq!(json, registry.snapshot_json());
        let a = json.find("\"a\":2").unwrap();
        let b = json.find("\"b\":1").unwrap();
        assert!(a < b, "counters must render in name order: {json}");
        assert!(json.contains("\"g\":-1"));
        assert!(json.contains("{\"le\":null,\"count\":1}"));
    }
}
