//! Aggregation of a recorded trace into a per-phase summary table, backing
//! the `apls trace` subcommand.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate of one phase (one `(category, name)` pair of complete events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of complete events.
    pub count: u64,
    /// Summed duration in microseconds.
    pub total_us: u64,
    /// Shortest event.
    pub min_us: u64,
    /// Longest event.
    pub max_us: u64,
}

impl PhaseStats {
    /// Mean duration in microseconds.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// A one-line description for the known instrumentation phases, so
/// `apls trace` renders an annotated table instead of bare identifiers.
///
/// Covers the engine phases, the legacy service path, and the PR-9 reactor /
/// streaming-frame phases. Unknown `(category, name)` pairs simply render
/// without a note — the table never hides a phase it does not recognise.
#[must_use]
pub fn phase_note(cat: &str, name: &str) -> Option<&'static str> {
    Some(match (cat, name) {
        // Engine phases.
        ("portfolio", "portfolio_run") => "one multi-start portfolio run",
        ("portfolio", "restart") => "one engine restart inside a portfolio run",
        ("anneal", "anneal") => "one simulated-annealing descent",
        ("anneal", "temp_step") => "per-temperature annealing progress",
        ("anneal", "move_mix") => "accepted-move histogram for one descent",
        ("tempering", "tempering") => "one parallel-tempering lane",
        ("tempering", "swap_round") => "replica-swap round between temperatures",
        // Service phases (legacy thread-per-connection and reactor).
        ("service", "accept") => "TCP connection accepted",
        ("service", "request") => "request line parsed and dispatched",
        ("service", "place") => "place request: admission through final reply",
        ("service", "enqueue") => "job admitted into the bounded queue",
        ("service", "solve") => "worker solving one job",
        ("service", "frame") => "streaming frame queued to a client",
        ("service", "recovery_skip") => "journal replay skipped a completed job",
        ("service", "journal_torn_tail") => "journal ended in a torn record",
        ("service", "journal_write_failure") => "durable journal append failed",
        ("service", "flight_dump") => "flight recorder dumped to disk",
        ("service", "reactor_start") => "event-driven reactor came up",
        // Reactor health phases.
        ("reactor", "stall") => "one reactor iteration exceeded the stall threshold",
        _ => return None,
    })
}

/// Accumulates trace events into per-phase statistics.
///
/// The caller parses the trace file (any JSON parser works — events are one
/// object per line) and feeds complete events through
/// [`TraceSummary::record_complete`] and instant/counter events through
/// [`TraceSummary::record_instant`].
#[derive(Debug, Default)]
pub struct TraceSummary {
    phases: BTreeMap<(String, String), PhaseStats>,
    instants: BTreeMap<(String, String), u64>,
}

impl TraceSummary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        TraceSummary::default()
    }

    /// Records one complete (`'X'`) event.
    pub fn record_complete(&mut self, cat: &str, name: &str, dur_us: u64) {
        let entry = self.phases.entry((cat.to_string(), name.to_string())).or_insert(PhaseStats {
            count: 0,
            total_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        });
        entry.count += 1;
        entry.total_us += dur_us;
        entry.min_us = entry.min_us.min(dur_us);
        entry.max_us = entry.max_us.max(dur_us);
    }

    /// Records one instant (`'i'`) or counter (`'C'`) event.
    pub fn record_instant(&mut self, cat: &str, name: &str) {
        *self.instants.entry((cat.to_string(), name.to_string())).or_insert(0) += 1;
    }

    /// Number of distinct phases seen.
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// Whether nothing was recorded at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty() && self.instants.is_empty()
    }

    /// Renders the summary as an aligned text table: one row per phase
    /// (sorted by total time, descending) followed by instant-event counts.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.phases.is_empty() {
            let mut rows: Vec<(&(String, String), &PhaseStats)> = self.phases.iter().collect();
            rows.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then_with(|| a.0.cmp(b.0)));
            let label_width = rows
                .iter()
                .map(|((cat, name), _)| cat.len() + name.len() + 1)
                .chain(std::iter::once("phase".len()))
                .max()
                .unwrap_or(5);
            let _ = writeln!(
                out,
                "{:<label_width$}  {:>8}  {:>12}  {:>10}  {:>10}  {:>10}",
                "phase", "count", "total ms", "mean µs", "min µs", "max µs"
            );
            for ((cat, name), stats) in rows {
                let _ = write!(
                    out,
                    "{:<label_width$}  {:>8}  {:>12.3}  {:>10.1}  {:>10}  {:>10}",
                    format!("{cat}/{name}"),
                    stats.count,
                    stats.total_us as f64 / 1000.0,
                    stats.mean_us(),
                    stats.min_us,
                    stats.max_us,
                );
                if let Some(note) = phase_note(cat, name) {
                    let _ = write!(out, "  {note}");
                }
                out.push('\n');
            }
        }
        if !self.instants.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "instant events:");
            for ((cat, name), count) in &self.instants {
                match phase_note(cat, name) {
                    Some(note) => {
                        let _ = writeln!(out, "  {cat}/{name}: {count}  {note}");
                    }
                    None => {
                        let _ = writeln!(out, "  {cat}/{name}: {count}");
                    }
                }
            }
        }
        if out.is_empty() {
            out.push_str("(empty trace)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_and_renders() {
        let mut summary = TraceSummary::new();
        summary.record_complete("engine", "anneal", 100);
        summary.record_complete("engine", "anneal", 300);
        summary.record_complete("service", "parse", 10);
        summary.record_instant("service", "accept");
        summary.record_instant("service", "accept");
        let stats = summary.phases[&("engine".to_string(), "anneal".to_string())];
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total_us, 400);
        assert_eq!(stats.min_us, 100);
        assert_eq!(stats.max_us, 300);
        assert!((stats.mean_us() - 200.0).abs() < 1e-9);
        let table = summary.render();
        let anneal_pos = table.find("engine/anneal").unwrap();
        let parse_pos = table.find("service/parse").unwrap();
        assert!(anneal_pos < parse_pos, "rows sort by total time:\n{table}");
        assert!(table.contains("service/accept: 2"));
    }

    #[test]
    fn empty_summary_renders_placeholder() {
        assert_eq!(TraceSummary::new().render(), "(empty trace)\n");
    }

    #[test]
    fn known_reactor_and_streaming_phases_get_notes() {
        let mut summary = TraceSummary::new();
        summary.record_complete("service", "place", 50);
        summary.record_instant("reactor", "stall");
        summary.record_instant("service", "frame");
        summary.record_instant("custom", "thing");
        let table = summary.render();
        assert!(table.contains("place request: admission through final reply"), "{table}");
        assert!(table.contains("reactor/stall: 1  one reactor iteration exceeded"), "{table}");
        assert!(table.contains("service/frame: 1  streaming frame queued"), "{table}");
        // Unknown phases still render, just without a note.
        assert!(table.contains("custom/thing: 1\n"), "{table}");
        assert!(phase_note("service", "reactor_start").is_some());
        assert!(phase_note("nope", "nope").is_none());
    }
}
