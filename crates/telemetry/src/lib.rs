//! Unified telemetry for the analog-layout-synthesis workspace: structured
//! tracing spans/events over pluggable [`Collector`]s, a [`MetricsRegistry`]
//! of counters/gauges/histograms, and trace summarisation.
//!
//! # Design
//!
//! * **Std-only.** No dependencies, no vendored shims.
//! * **Off by default, free when off.** A [`Telemetry`] handle is an
//!   `Option<Arc<..>>`; the disabled handle ([`Telemetry::disabled`]) makes
//!   every span/event a branch on a null check — no allocation, no clock
//!   read, no lock. Hot loops hoist [`Telemetry::is_enabled`] into a bool.
//! * **Determinism.** Telemetry *observes*, never *participates*: it holds no
//!   RNG, consumes no `SeedStream` lane, and instrumented code paths are
//!   byte-identical in their results with telemetry enabled, disabled, or
//!   compiled out. This is pinned by `tests/telemetry_determinism.rs` at the
//!   workspace root.
//! * **One event format.** Every event renders as a self-contained Chrome
//!   `trace_event` JSON object, so a newline-separated event stream is valid
//!   JSON-lines *and* (wrapped in `{"traceEvents":[...]}`) a Chrome trace.
//!
//! # Example
//!
//! ```
//! use apls_telemetry::{event, span, RecordingCollector, Telemetry};
//! use std::sync::Arc;
//!
//! let collector = Arc::new(RecordingCollector::new());
//! let telemetry = Telemetry::with_collector(collector.clone());
//! {
//!     let mut s = span!(telemetry, "engine", "anneal", seed = 7u64);
//!     event!(telemetry, "engine", "temp_step", step = 0u64);
//!     s.arg("best_cost", 12.5);
//! } // span drops -> complete event recorded
//! assert_eq!(collector.len(), 2);
//!
//! // The disabled handle records nothing and costs (almost) nothing.
//! let off = Telemetry::disabled();
//! let _s = span!(off, "engine", "anneal");
//! assert!(!off.is_enabled());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod event;
pub mod metrics;
pub mod recorder;
pub mod summary;

pub use collector::{Collector, FanoutCollector, RecordingCollector, StreamCollector};
pub use event::{TraceEvent, Value};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_MS_BOUNDS};
pub use recorder::FlightRecorder;
pub use summary::{PhaseStats, TraceSummary};

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Stable-per-thread logical id used as the Chrome `tid` field.
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|tid| *tid)
}

struct Inner {
    epoch: Instant,
    collector: Arc<dyn Collector>,
}

/// A cloneable telemetry handle: either disabled (the default — every
/// operation is a null-check) or bound to a [`Collector`] with a shared time
/// epoch.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The disabled handle: records nothing, costs a null-check per call.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A handle recording into `collector`, with its epoch starting now.
    #[must_use]
    pub fn with_collector(collector: Arc<dyn Collector>) -> Self {
        Telemetry { inner: Some(Arc::new(Inner { epoch: Instant::now(), collector })) }
    }

    /// Whether a collector is installed.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns a handle that records into `extra` *in addition to* whatever
    /// this handle already records into.
    ///
    /// A disabled handle becomes an enabled one over `extra` alone; an enabled
    /// handle keeps its epoch (so timestamps from both handles stay on one
    /// timeline) and fans out through a [`FanoutCollector`]. This is how the
    /// daemon layers the always-on flight recorder under an optional
    /// `--trace` stream.
    #[must_use]
    pub fn tee(&self, extra: Arc<dyn Collector>) -> Telemetry {
        match &self.inner {
            None => Telemetry::with_collector(extra),
            Some(inner) => Telemetry {
                inner: Some(Arc::new(Inner {
                    epoch: inner.epoch,
                    collector: Arc::new(FanoutCollector::new(vec![inner.collector.clone(), extra])),
                })),
            },
        }
    }

    /// Microseconds since this handle's epoch (0 when disabled).
    #[must_use]
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Opens a span; the returned guard emits one Chrome complete (`'X'`)
    /// event when dropped. Prefer the [`span!`] macro, which attaches
    /// arguments only when the handle is enabled.
    pub fn span(&self, cat: &'static str, name: &'static str) -> Span<'_> {
        let start_us = match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        };
        Span { inner: self.inner.as_deref(), cat, name, start_us, args: Vec::new() }
    }

    /// Emits an instant (`'i'`) event. Prefer the [`event!`] macro, which
    /// skips argument construction when disabled.
    pub fn instant(&self, cat: &'static str, name: &'static str, args: Vec<(String, Value)>) {
        self.emit(cat, name, 'i', args);
    }

    /// Emits a counter (`'C'`) sample; Chrome plots each argument as a
    /// series.
    pub fn counter(&self, cat: &'static str, name: &'static str, args: Vec<(String, Value)>) {
        self.emit(cat, name, 'C', args);
    }

    fn emit(&self, cat: &'static str, name: &'static str, ph: char, args: Vec<(String, Value)>) {
        if let Some(inner) = &self.inner {
            let ts_us = inner.epoch.elapsed().as_micros() as u64;
            inner.collector.record(TraceEvent {
                name: name.to_string(),
                cat: cat.to_string(),
                ph,
                ts_us,
                dur_us: None,
                tid: current_tid(),
                args,
            });
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_enabled() {
            f.write_str("Telemetry(enabled)")
        } else {
            f.write_str("Telemetry(disabled)")
        }
    }
}

/// A span guard: emits one complete (`'X'`) trace event covering its
/// lifetime when dropped. Created by [`Telemetry::span`] / the [`span!`]
/// macro; attach result fields with [`Span::arg`] before it drops.
#[must_use = "a span records its duration when dropped; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    inner: Option<&'a Inner>,
    cat: &'static str,
    name: &'static str,
    start_us: u64,
    args: Vec<(String, Value)>,
}

impl Span<'_> {
    /// Whether the span will actually record (false for disabled handles).
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches an argument (no-op when disabled).
    pub fn arg(&mut self, key: &str, value: impl Into<Value>) {
        if self.inner.is_some() {
            self.args.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner {
            let end_us = inner.epoch.elapsed().as_micros() as u64;
            inner.collector.record(TraceEvent {
                name: self.name.to_string(),
                cat: self.cat.to_string(),
                ph: 'X',
                ts_us: self.start_us,
                dur_us: Some(end_us.saturating_sub(self.start_us)),
                tid: current_tid(),
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

impl fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Span({}/{}, recording: {})", self.cat, self.name, self.is_recording())
    }
}

/// Opens a [`Span`] on a [`Telemetry`] handle:
/// `span!(tel, "category", "name", key = value, ...)`.
///
/// Argument expressions are only evaluated when the handle is enabled.
#[macro_export]
macro_rules! span {
    ($tel:expr, $cat:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __span = $tel.span($cat, $name);
        if __span.is_recording() {
            $(__span.arg(stringify!($key), $value);)*
        }
        __span
    }};
}

/// Emits an instant event on a [`Telemetry`] handle:
/// `event!(tel, "category", "name", key = value, ...)`.
///
/// Argument expressions are only evaluated when the handle is enabled.
#[macro_export]
macro_rules! event {
    ($tel:expr, $cat:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        if $tel.is_enabled() {
            let __args: Vec<(String, $crate::Value)> =
                vec![$((stringify!($key).to_string(), $crate::Value::from($value))),*];
            $tel.instant($cat, $name, __args);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert_eq!(tel.now_us(), 0);
        {
            let mut s = span!(tel, "c", "n", ignored = 1u64);
            s.arg("also_ignored", 2u64);
        }
        event!(tel, "c", "n", x = 3u64);
    }

    #[test]
    fn span_emits_complete_event_with_args() {
        let collector = Arc::new(RecordingCollector::new());
        let tel = Telemetry::with_collector(collector.clone());
        {
            let mut s = span!(tel, "engine", "anneal", seed = 7u64);
            s.arg("best_cost", 1.25);
        }
        let events = collector.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!((e.ph, e.name.as_str(), e.cat.as_str()), ('X', "anneal", "engine"));
        assert!(e.dur_us.is_some());
        assert_eq!(e.args[0], ("seed".to_string(), Value::U64(7)));
        assert_eq!(e.args[1], ("best_cost".to_string(), Value::F64(1.25)));
    }

    #[test]
    fn instant_and_counter_events_record() {
        let collector = Arc::new(RecordingCollector::new());
        let tel = Telemetry::with_collector(collector.clone());
        event!(tel, "service", "accept", port = 80u64);
        tel.counter("service", "queue", vec![("depth".to_string(), Value::U64(3))]);
        let events = collector.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ph, 'i');
        assert_eq!(events[1].ph, 'C');
    }

    #[test]
    fn clones_share_the_collector_and_epoch() {
        let collector = Arc::new(RecordingCollector::new());
        let tel = Telemetry::with_collector(collector.clone());
        let clone = tel.clone();
        event!(clone, "a", "b");
        assert_eq!(collector.len(), 1);
        assert!(clone.now_us() >= tel.now_us() || tel.now_us() == clone.now_us());
    }

    #[test]
    fn tids_are_stable_per_thread() {
        let collector = Arc::new(RecordingCollector::new());
        let tel = Telemetry::with_collector(collector.clone());
        event!(tel, "t", "one");
        event!(tel, "t", "two");
        let events = collector.events();
        assert_eq!(events[0].tid, events[1].tid);
    }
}
