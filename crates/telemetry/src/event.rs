//! The trace-event model and its Chrome `trace_event` JSON rendering.
//!
//! One [`TraceEvent`] renders as one self-contained JSON object, so a file of
//! newline-separated events is simultaneously valid JSON-lines *and* the
//! element stream of a Chrome `traceEvents` array (see
//! [`crate::RecordingCollector::to_chrome_trace`]).

use std::fmt::Write as _;

/// An argument value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number; non-finite values render as JSON `null`.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Value {
    /// Appends the value as a JSON fragment.
    pub fn render(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => quote_into(out, s),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One Chrome `trace_event` record.
///
/// `ph` is the Chrome phase: `'X'` for complete (span with duration), `'i'`
/// for instant, `'C'` for counter samples. Timestamps and durations are in
/// microseconds since the owning [`crate::Telemetry`] handle's epoch, as the
/// Chrome format requires.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (the span/phase label).
    pub name: String,
    /// Category, used to group phases in summaries.
    pub cat: String,
    /// Chrome phase character.
    pub ph: char,
    /// Start timestamp in microseconds since the telemetry epoch.
    pub ts_us: u64,
    /// Duration in microseconds; present exactly for `'X'` events.
    pub dur_us: Option<u64>,
    /// Logical thread id (stable per OS thread for one process).
    pub tid: u64,
    /// Event arguments in insertion order.
    pub args: Vec<(String, Value)>,
}

impl TraceEvent {
    /// Renders the event as one compact JSON object (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"name\":");
        quote_into(&mut out, &self.name);
        out.push_str(",\"cat\":");
        quote_into(&mut out, &self.cat);
        out.push_str(",\"ph\":");
        let mut ph = [0u8; 4];
        quote_into(&mut out, self.ph.encode_utf8(&mut ph));
        let _ = write!(out, ",\"ts\":{},\"pid\":1,\"tid\":{}", self.ts_us, self.tid);
        if let Some(dur) = self.dur_us {
            let _ = write!(out, ",\"dur\":{dur}");
        }
        if !self.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                quote_into(&mut out, key);
                out.push(':');
                value.render(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes).
pub fn quote_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_complete_event_with_args() {
        let event = TraceEvent {
            name: "anneal".to_string(),
            cat: "engine".to_string(),
            ph: 'X',
            ts_us: 12,
            dur_us: Some(34),
            tid: 2,
            args: vec![("seed".to_string(), Value::U64(7)), ("cost".to_string(), Value::F64(1.5))],
        };
        assert_eq!(
            event.to_json_line(),
            "{\"name\":\"anneal\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":12,\"pid\":1,\
             \"tid\":2,\"dur\":34,\"args\":{\"seed\":7,\"cost\":1.5}}"
        );
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        let event = TraceEvent {
            name: "a\"b\\c\nd".to_string(),
            cat: String::new(),
            ph: 'i',
            ts_us: 0,
            dur_us: None,
            tid: 1,
            args: vec![("x".to_string(), Value::F64(f64::NAN))],
        };
        let line = event.to_json_line();
        assert!(line.contains("a\\\"b\\\\c\\nd"));
        assert!(line.contains("\"x\":null"));
        assert!(!line.contains("dur"));
    }
}
