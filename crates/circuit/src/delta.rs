//! Incremental (delta) wirelength evaluation over a CSR adjacency.
//!
//! The annealing hot loops previously recomputed every net's HPWL from
//! scratch on every move even though a swap touches only a handful of
//! modules. [`DeltaCost`] caches the doubled centre of every module and the
//! weighted HPWL term of every net; [`DeltaCost::update`] diffs a module's
//! rectangle against the cache and marks only the incident nets dirty, and
//! [`DeltaCost::total`] recomputes just those nets before folding the cached
//! per-net terms **in net order** — the same `0.0 + w₀·h₀ + w₁·h₁ + …` fold
//! as [`crate::Placement::wirelength_with`], so the result is bit-identical
//! to a from-scratch sweep.
//!
//! Rejected moves are rolled back with [`DeltaCost::undo`], which restores
//! the centre and term caches from an internal journal in O(touched nets).

use crate::{ModuleId, NetAdjacency};
use apls_geometry::{Coord, Rect};

/// Incremental weighted-HPWL evaluator: per-module centre cache, per-net
/// cached cost terms, and an undo journal for rejected moves.
///
/// # Protocol
///
/// One proposal is evaluated as:
///
/// 1. [`DeltaCost::begin`] — opens a proposal (and implicitly commits the
///    previous one by clearing the journal);
/// 2. [`DeltaCost::update`] (or [`DeltaCost::refresh_all`]) — feeds the new
///    rectangle of each (possibly) moved module; unchanged modules are
///    diffed against the cache and skipped;
/// 3. [`DeltaCost::total`] — recomputes the dirty nets and returns the full
///    weighted wirelength;
/// 4. on rejection, [`DeltaCost::undo`] restores the caches; on acceptance,
///    [`DeltaCost::commit`] (or simply the next `begin`) finalises them.
///
/// # Example
///
/// ```
/// use apls_circuit::{DeltaCost, Module, Netlist, Placement};
/// use apls_geometry::{Dims, Orientation, Rect};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_module(Module::new("A", Dims::new(10, 10)));
/// let b = nl.add_module(Module::new("B", Dims::new(10, 10)));
/// nl.add_net("n", [a, b]);
///
/// let mut p = Placement::new(&nl);
/// p.place(a, Rect::new(0, 0, 10, 10), Orientation::R0, 0);
/// p.place(b, Rect::new(20, 0, 30, 10), Orientation::R0, 0);
///
/// let mut delta = DeltaCost::new(nl.adjacency(), nl.module_count());
/// delta.begin();
/// let full = delta.refresh_all(|m| p.get(m).map(|pm| pm.rect));
/// assert_eq!(full, p.wirelength_with(&nl.adjacency()));
/// delta.commit();
///
/// // Move B and evaluate only the touched net.
/// delta.begin();
/// let moved = delta.delta_hpwl(&[b], |_| Some(Rect::new(40, 0, 50, 10)));
/// assert_eq!(moved, 40.0);
/// // Reject: the cache rolls back to the committed state.
/// delta.undo();
/// assert_eq!(delta.total(), full);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaCost {
    adjacency: NetAdjacency,
    /// Reverse CSR: `module_nets[module_offsets[m]..module_offsets[m + 1]]`
    /// are the nets with a pin on module `m`.
    module_offsets: Vec<u32>,
    module_nets: Vec<u32>,
    /// Cached doubled centres (`Rect::center_x2`) per module, SoA layout.
    cx2: Vec<Coord>,
    cy2: Vec<Coord>,
    placed: Vec<bool>,
    /// Cached `weight(net) * hpwl(net) as f64` per net.
    terms: Vec<f64>,
    /// Nets whose cached term is stale for the open proposal.
    dirty: Vec<u32>,
    /// Proposal stamp per net, so a net is journaled at most once per
    /// proposal no matter how many of its pins moved.
    net_stamp: Vec<u64>,
    stamp: u64,
    /// Undo journal: previous centre of every updated module (duplicates are
    /// fine — reverse replay restores the oldest value last).
    center_journal: Vec<(u32, Coord, Coord, bool)>,
    /// Undo journal: previous term of every dirtied net.
    term_journal: Vec<(u32, f64)>,
}

impl DeltaCost {
    /// Builds the evaluator for `module_count` modules over the given
    /// adjacency snapshot. All modules start unplaced (every net term is 0).
    #[must_use]
    pub fn new(adjacency: NetAdjacency, module_count: usize) -> Self {
        // Counting sort of (module, net) incidences into a reverse CSR.
        let mut counts = vec![0u32; module_count + 1];
        for net in 0..adjacency.net_count() {
            for &pin in adjacency.pins(net) {
                counts[pin.index() + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let module_offsets = counts.clone();
        let mut cursor = counts;
        let mut module_nets = vec![0u32; adjacency.pin_count()];
        for net in 0..adjacency.net_count() {
            for &pin in adjacency.pins(net) {
                let slot = &mut cursor[pin.index()];
                module_nets[*slot as usize] = net as u32;
                *slot += 1;
            }
        }
        let net_count = adjacency.net_count();
        DeltaCost {
            adjacency,
            module_offsets,
            module_nets,
            cx2: vec![0; module_count],
            cy2: vec![0; module_count],
            placed: vec![false; module_count],
            terms: vec![0.0; net_count],
            dirty: Vec::new(),
            net_stamp: vec![0; net_count],
            stamp: 0,
            center_journal: Vec::new(),
            term_journal: Vec::new(),
        }
    }

    /// The adjacency snapshot this evaluator runs over.
    #[must_use]
    pub fn adjacency(&self) -> &NetAdjacency {
        &self.adjacency
    }

    /// Number of modules the centre cache covers.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.placed.len()
    }

    /// Opens a new proposal. Implicitly commits the previous one: the undo
    /// journal of the last proposal is discarded.
    #[inline]
    pub fn begin(&mut self) {
        self.stamp += 1;
        self.dirty.clear();
        self.center_journal.clear();
        self.term_journal.clear();
    }

    /// Feeds the (possibly new) rectangle of one module. Diffs against the
    /// centre cache; if nothing changed the call is O(1), otherwise the
    /// incident nets are marked dirty and journaled.
    #[inline]
    pub fn update(&mut self, m: ModuleId, rect: Option<Rect>) {
        let i = m.index();
        let (cx2, cy2, placed) = match rect {
            Some(r) => {
                let (x, y) = r.center_x2();
                (x, y, true)
            }
            None => (0, 0, false),
        };
        if self.placed[i] == placed && (!placed || (self.cx2[i] == cx2 && self.cy2[i] == cy2)) {
            return;
        }
        self.center_journal.push((i as u32, self.cx2[i], self.cy2[i], self.placed[i]));
        self.cx2[i] = cx2;
        self.cy2[i] = cy2;
        self.placed[i] = placed;
        let nets =
            &self.module_nets[self.module_offsets[i] as usize..self.module_offsets[i + 1] as usize];
        for &net in nets {
            if self.net_stamp[net as usize] != self.stamp {
                self.net_stamp[net as usize] = self.stamp;
                self.term_journal.push((net, self.terms[net as usize]));
                self.dirty.push(net);
            }
        }
    }

    /// Feeds every module's rectangle through [`DeltaCost::update`]. The
    /// per-module diff keeps this cheap when few modules actually moved.
    /// Returns [`DeltaCost::total`] for convenience.
    pub fn refresh_all(&mut self, mut rect_of: impl FnMut(ModuleId) -> Option<Rect>) -> f64 {
        for i in 0..self.placed.len() {
            let m = ModuleId::from_index(i);
            self.update(m, rect_of(m));
        }
        self.total()
    }

    /// [`DeltaCost::refresh_all`] without the undo journal: the new totals
    /// are committed immediately and [`DeltaCost::undo`] cannot restore the
    /// previous geometry.
    ///
    /// This is the right call for evaluators that re-feed the **full**
    /// geometry on every evaluation (the B*-tree packers recompute all
    /// coordinates per move): the per-module diff still skips clean nets, the
    /// caches self-correct against whatever geometry comes next, and the
    /// journaling overhead — one entry per moved module plus one per dirtied
    /// net, pure waste when proposals are never rolled back cache-side — is
    /// gone. The returned total is bit-identical to [`DeltaCost::refresh_all`]
    /// on the same geometry (each term is a pure function of the centres and
    /// the fold is unchanged).
    pub fn resync(&mut self, mut rect_of: impl FnMut(ModuleId) -> Option<Rect>) -> f64 {
        self.stamp += 1;
        self.dirty.clear();
        self.center_journal.clear();
        self.term_journal.clear();
        for i in 0..self.placed.len() {
            let m = ModuleId::from_index(i);
            let (cx2, cy2, placed) = match rect_of(m) {
                Some(r) => {
                    let (x, y) = r.center_x2();
                    (x, y, true)
                }
                None => (0, 0, false),
            };
            if self.placed[i] == placed && (!placed || (self.cx2[i] == cx2 && self.cy2[i] == cy2)) {
                continue;
            }
            self.cx2[i] = cx2;
            self.cy2[i] = cy2;
            self.placed[i] = placed;
            let nets = &self.module_nets
                [self.module_offsets[i] as usize..self.module_offsets[i + 1] as usize];
            for &net in nets {
                if self.net_stamp[net as usize] != self.stamp {
                    self.net_stamp[net as usize] = self.stamp;
                    self.dirty.push(net);
                }
            }
        }
        self.total()
    }

    /// Full from-scratch weighted sweep over the adjacency, bypassing the
    /// centre and term caches entirely: every net's HPWL is recomputed from
    /// `rect_of` and folded in net order with a `0.0` seed, so the result is
    /// bit-identical to [`DeltaCost::total`] on the same geometry.
    ///
    /// This is the fastest evaluation when **nearly every** module moves per
    /// proposal — the B*-tree annealers repack from scratch on each move,
    /// shifting most downstream coordinates, and there the per-module diff
    /// of [`DeltaCost::resync`] costs more than it saves (measured ~1.43 ms
    /// vs ~1.09 ms per 2000 moves on the 10-module comparator and 7.2 ms vs
    /// 6.0 ms at 50 modules). Use [`DeltaCost::delta_hpwl`] when only a few
    /// modules move and [`DeltaCost::resync`] when full geometry is re-fed
    /// but changes are localised.
    #[must_use]
    pub fn sweep_hpwl(&self, mut rect_of: impl FnMut(ModuleId) -> Option<Rect>) -> f64 {
        let mut wirelength = 0.0;
        for net in 0..self.adjacency.net_count() {
            let hpwl =
                apls_geometry::hpwl_filtered(self.adjacency.pins(net).iter().map(|&m| rect_of(m)));
            wirelength += self.adjacency.weight(net) * hpwl as f64;
        }
        wirelength
    }

    /// Updates only the listed moved modules, then returns the full weighted
    /// wirelength (recomputing just the nets incident to them).
    pub fn delta_hpwl(
        &mut self,
        moved_modules: &[ModuleId],
        mut rect_of: impl FnMut(ModuleId) -> Option<Rect>,
    ) -> f64 {
        for &m in moved_modules {
            self.update(m, rect_of(m));
        }
        self.total()
    }

    /// Recomputes the dirty nets from the centre cache, then folds the
    /// cached per-net terms in net order. Bit-identical to
    /// [`crate::Placement::wirelength_with`] on the same geometry: each term
    /// is the exact product `weight * hpwl as f64` and the fold runs in the
    /// same order with the same `0.0` seed.
    #[inline]
    pub fn total(&mut self) -> f64 {
        for k in 0..self.dirty.len() {
            let net = self.dirty[k] as usize;
            let pins = self.adjacency.pins(net);
            let mut resolved = 0usize;
            let mut min_cx2 = Coord::MAX;
            let mut max_cx2 = Coord::MIN;
            let mut min_cy2 = Coord::MAX;
            let mut max_cy2 = Coord::MIN;
            for &pin in pins {
                let i = pin.index();
                if self.placed[i] {
                    min_cx2 = min_cx2.min(self.cx2[i]);
                    max_cx2 = max_cx2.max(self.cx2[i]);
                    min_cy2 = min_cy2.min(self.cy2[i]);
                    max_cy2 = max_cy2.max(self.cy2[i]);
                    resolved += 1;
                }
            }
            let hpwl =
                if resolved < 2 { 0 } else { ((max_cx2 - min_cx2) + (max_cy2 - min_cy2)) / 2 };
            self.terms[net] = self.adjacency.weight(net) * hpwl as f64;
        }
        self.dirty.clear();
        let mut wirelength = 0.0;
        for &term in &self.terms {
            wirelength += term;
        }
        wirelength
    }

    /// Rolls back the open proposal: restores the centre and term caches
    /// from the journal (reverse replay) in O(touched nets + moved modules).
    #[inline]
    pub fn undo(&mut self) {
        while let Some((net, term)) = self.term_journal.pop() {
            self.terms[net as usize] = term;
        }
        while let Some((i, cx2, cy2, placed)) = self.center_journal.pop() {
            self.cx2[i as usize] = cx2;
            self.cy2[i as usize] = cy2;
            self.placed[i as usize] = placed;
        }
        self.dirty.clear();
    }

    /// Accepts the open proposal, discarding the undo journal.
    #[inline]
    pub fn commit(&mut self) {
        self.dirty.clear();
        self.center_journal.clear();
        self.term_journal.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Module, Netlist, Placement};
    use apls_geometry::{Dims, Orientation};

    fn fixture() -> (Netlist, Vec<ModuleId>) {
        let mut nl = Netlist::new("t");
        let ids = vec![
            nl.add_module(Module::new("A", Dims::new(10, 10))),
            nl.add_module(Module::new("B", Dims::new(20, 10))),
            nl.add_module(Module::new("C", Dims::new(10, 30))),
            nl.add_module(Module::new("D", Dims::new(8, 6))),
        ];
        nl.add_net("n0", [ids[0], ids[1]]);
        nl.add_net("n1", [ids[0], ids[1], ids[2]]);
        nl.add_net("n2", [ids[2], ids[3]]);
        (nl, ids)
    }

    fn place_all(nl: &Netlist, ids: &[ModuleId]) -> Placement {
        let mut p = Placement::new(nl);
        p.place(ids[0], Rect::new(0, 0, 10, 10), Orientation::R0, 0);
        p.place(ids[1], Rect::new(10, 0, 30, 10), Orientation::R0, 0);
        p.place(ids[2], Rect::new(30, 0, 40, 30), Orientation::R0, 0);
        p.place(ids[3], Rect::new(0, 10, 8, 16), Orientation::R0, 0);
        p
    }

    #[test]
    fn refresh_matches_full_sweep() {
        let (nl, ids) = fixture();
        let p = place_all(&nl, &ids);
        let adj = nl.adjacency();
        let mut delta = DeltaCost::new(adj.clone(), nl.module_count());
        delta.begin();
        let wl = delta.refresh_all(|m| p.get(m).map(|pm| pm.rect));
        assert_eq!(wl, p.wirelength_with(&adj));
    }

    #[test]
    fn moved_module_retotals_only_incident_nets_and_matches() {
        let (nl, ids) = fixture();
        let mut p = place_all(&nl, &ids);
        let adj = nl.adjacency();
        let mut delta = DeltaCost::new(adj.clone(), nl.module_count());
        delta.begin();
        delta.refresh_all(|m| p.get(m).map(|pm| pm.rect));
        delta.commit();

        p.place(ids[3], Rect::new(100, 100, 108, 106), Orientation::R0, 0);
        delta.begin();
        let wl = delta.delta_hpwl(&[ids[3]], |m| p.get(m).map(|pm| pm.rect));
        assert_eq!(wl, p.wirelength_with(&adj));
        delta.commit();
    }

    #[test]
    fn undo_restores_committed_state_exactly() {
        let (nl, ids) = fixture();
        let p = place_all(&nl, &ids);
        let adj = nl.adjacency();
        let mut delta = DeltaCost::new(adj.clone(), nl.module_count());
        delta.begin();
        let committed = delta.refresh_all(|m| p.get(m).map(|pm| pm.rect));
        delta.commit();

        delta.begin();
        delta.update(ids[0], Some(Rect::new(500, 500, 510, 510)));
        delta.update(ids[2], None);
        let _ = delta.total();
        delta.undo();
        assert_eq!(delta.total(), committed);

        // And the caches still track future updates correctly after an undo.
        delta.begin();
        let wl = delta.refresh_all(|m| p.get(m).map(|pm| pm.rect));
        assert_eq!(wl, committed);
    }

    #[test]
    fn unplaced_pins_are_skipped_like_hpwl_filtered() {
        let (nl, ids) = fixture();
        let adj = nl.adjacency();
        let mut p = Placement::new(&nl);
        p.place(ids[0], Rect::new(0, 0, 10, 10), Orientation::R0, 0);
        // Only one placed pin per net: everything is zero.
        let mut delta = DeltaCost::new(adj.clone(), nl.module_count());
        delta.begin();
        assert_eq!(delta.refresh_all(|m| p.get(m).map(|pm| pm.rect)), 0.0);
        assert_eq!(p.wirelength_with(&adj), 0.0);
    }

    #[test]
    fn resync_and_sweep_match_refresh_all_bit_for_bit() {
        let (nl, ids) = fixture();
        let p = place_all(&nl, &ids);
        let adj = nl.adjacency();
        let mut journaled = DeltaCost::new(adj.clone(), nl.module_count());
        let mut journal_free = DeltaCost::new(adj, nl.module_count());

        // Drive both evaluators through the same geometry sequence (moves,
        // an unplace, a replace); resync and the stateless sweep must agree
        // exactly with refresh_all even though they share no journal state.
        let mut rects: Vec<Option<Rect>> =
            ids.iter().map(|&m| p.get(m).map(|pm| pm.rect)).collect();
        for step in 0..4 {
            match step {
                1 => rects[1] = Some(Rect::new(200, 0, 220, 10)),
                2 => rects[2] = None,
                3 => rects[2] = Some(Rect::new(5, 90, 15, 120)),
                _ => {}
            }
            journaled.begin();
            let reference = journaled.refresh_all(|m| rects[m.index()]);
            journaled.commit();
            assert_eq!(journal_free.resync(|m| rects[m.index()]), reference);
            assert_eq!(journal_free.sweep_hpwl(|m| rects[m.index()]), reference);
        }
    }

    #[test]
    fn repeated_updates_of_one_module_journal_once_per_net() {
        let (nl, ids) = fixture();
        let p = place_all(&nl, &ids);
        let adj = nl.adjacency();
        let mut delta = DeltaCost::new(adj, nl.module_count());
        delta.begin();
        delta.refresh_all(|m| p.get(m).map(|pm| pm.rect));
        delta.commit();

        delta.begin();
        delta.update(ids[0], Some(Rect::new(1, 1, 11, 11)));
        delta.update(ids[0], Some(Rect::new(2, 2, 12, 12)));
        delta.update(ids[1], Some(Rect::new(50, 0, 70, 10)));
        // Nets n0 and n1 are each journaled exactly once.
        assert_eq!(delta.term_journal.len(), 2);
        delta.undo();
        let base = place_all(&nl, &ids);
        delta.begin();
        let wl = delta.refresh_all(|m| base.get(m).map(|pm| pm.rect));
        assert_eq!(wl, base.wirelength_with(&nl.adjacency()));
    }
}
