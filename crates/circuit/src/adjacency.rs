//! CSR-style pin adjacency for allocation-free wirelength evaluation.

use crate::{ModuleId, Netlist};

/// A compressed (CSR-style) view of a netlist's pins: one flat pin array plus
/// per-net offsets and weights.
///
/// The annealing hot loop evaluates per-net HPWL thousands of times per
/// second; walking [`crate::Net::pins`] through the netlist works but touches
/// one heap object per net and tempts callers into collecting per-net `Vec`s
/// of pin rectangles. `NetAdjacency` flattens the whole pin structure into
/// three cache-friendly arrays once, so every subsequent wirelength evaluation
/// is a linear scan with zero allocation.
///
/// The adjacency is a snapshot: build it after the netlist is fully
/// constructed (engines do this once per run).
///
/// # Example
///
/// ```
/// use apls_circuit::{Module, NetAdjacency, Netlist};
/// use apls_geometry::Dims;
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_module(Module::new("A", Dims::new(10, 10)));
/// let b = nl.add_module(Module::new("B", Dims::new(10, 10)));
/// nl.add_net("n", [a, b]);
/// let adj = NetAdjacency::new(&nl);
/// assert_eq!(adj.net_count(), 1);
/// assert_eq!(adj.pins(0), &[a, b]);
/// assert_eq!(adj.weight(0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetAdjacency {
    /// `offsets[i]..offsets[i + 1]` indexes the pins of net `i`.
    offsets: Vec<u32>,
    /// All pins of all nets, net-major, in net/pin declaration order.
    pins: Vec<ModuleId>,
    /// One wirelength weight per net.
    weights: Vec<f64>,
}

impl NetAdjacency {
    /// Builds the adjacency snapshot of a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist holds more than `u32::MAX` pins in total.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let total_pins: usize = netlist.nets().map(|(_, n)| n.pins().len()).sum();
        let mut offsets = Vec::with_capacity(netlist.net_count() + 1);
        let mut pins = Vec::with_capacity(total_pins);
        let mut weights = Vec::with_capacity(netlist.net_count());
        offsets.push(0);
        for (_, net) in netlist.nets() {
            pins.extend_from_slice(net.pins());
            offsets.push(u32::try_from(pins.len()).expect("pin count fits in u32"));
            weights.push(net.weight());
        }
        NetAdjacency { offsets, pins, weights }
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.weights.len()
    }

    /// Pins of net `net`, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn pins(&self, net: usize) -> &[ModuleId] {
        &self.pins[self.offsets[net] as usize..self.offsets[net + 1] as usize]
    }

    /// Wirelength weight of net `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn weight(&self, net: usize) -> f64 {
        self.weights[net]
    }

    /// Total number of pins over all nets.
    #[must_use]
    pub fn pin_count(&self) -> usize {
        self.pins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Module, Net};
    use apls_geometry::Dims;

    #[test]
    fn csr_layout_mirrors_the_netlist() {
        let mut nl = Netlist::new("t");
        let a = nl.add_module(Module::new("A", Dims::new(5, 5)));
        let b = nl.add_module(Module::new("B", Dims::new(5, 5)));
        let c = nl.add_module(Module::new("C", Dims::new(5, 5)));
        nl.add_net("n0", [a, b]);
        nl.add_weighted_net(Net::new("n1", vec![a, b, c]).with_weight(2.5));
        nl.add_net("n2", []);
        let adj = NetAdjacency::new(&nl);
        assert_eq!(adj.net_count(), 3);
        assert_eq!(adj.pin_count(), 5);
        assert_eq!(adj.pins(0), &[a, b]);
        assert_eq!(adj.pins(1), &[a, b, c]);
        assert_eq!(adj.pins(2), &[]);
        assert_eq!(adj.weight(1), 2.5);
        assert_eq!(adj.weight(2), 1.0);
    }

    #[test]
    fn empty_netlist_yields_empty_adjacency() {
        let adj = NetAdjacency::new(&Netlist::new("empty"));
        assert_eq!(adj.net_count(), 0);
        assert_eq!(adj.pin_count(), 0);
    }
}
