//! Flat netlists: modules plus connectivity.

use crate::{Module, ModuleId, Net, NetId};
use apls_geometry::Dims;
use serde::{Deserialize, Serialize};

/// A flat netlist: the collection of modules to place and the nets connecting
/// them.
///
/// The netlist is the common input of every placement engine in the workspace.
/// Hierarchy and constraints are layered on top (see [`crate::HierarchyTree`]
/// and [`crate::ConstraintSet`]) so that engines which ignore them can still
/// consume the same netlist.
///
/// # Example
///
/// ```
/// use apls_circuit::{Netlist, Module};
/// use apls_geometry::Dims;
///
/// let mut nl = Netlist::new("ota");
/// let a = nl.add_module(Module::new("M1", Dims::new(30, 20)));
/// let b = nl.add_module(Module::new("M2", Dims::new(30, 20)));
/// let net = nl.add_net("out", [a, b]);
/// assert_eq!(nl.net(net).pins(), &[a, b]);
/// assert_eq!(nl.total_module_area(), 2 * 600);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    modules: Vec<Module>,
    nets: Vec<Net>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist { name: name.into(), modules: Vec::new(), nets: Vec::new() }
    }

    /// Netlist name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a module and returns its id.
    pub fn add_module(&mut self, module: Module) -> ModuleId {
        let id = ModuleId::from_index(self.modules.len());
        self.modules.push(module);
        id
    }

    /// Adds a net over the given modules and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if any pin refers to a module that has not been added yet.
    pub fn add_net(
        &mut self,
        name: impl Into<String>,
        pins: impl IntoIterator<Item = ModuleId>,
    ) -> NetId {
        let pins: Vec<ModuleId> = pins.into_iter().collect();
        for pin in &pins {
            assert!(
                pin.index() < self.modules.len(),
                "net pin {pin} refers to a module that does not exist"
            );
        }
        let id = NetId(u32::try_from(self.nets.len()).expect("too many nets"));
        self.nets.push(Net::new(name, pins));
        id
    }

    /// Adds an already-built [`Net`] (e.g. one with a custom weight).
    ///
    /// # Panics
    ///
    /// Panics if any pin refers to a module that has not been added yet.
    pub fn add_weighted_net(&mut self, net: Net) -> NetId {
        for pin in net.pins() {
            assert!(
                pin.index() < self.modules.len(),
                "net pin {pin} refers to a module that does not exist"
            );
        }
        let id = NetId(u32::try_from(self.nets.len()).expect("too many nets"));
        self.nets.push(net);
        id
    }

    /// Number of modules.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Module lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    #[must_use]
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// Net lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Iterator over `(id, module)` pairs in insertion order.
    pub fn modules(&self) -> impl Iterator<Item = (ModuleId, &Module)> {
        self.modules.iter().enumerate().map(|(i, m)| (ModuleId::from_index(i), m))
    }

    /// Iterator over module ids in insertion order.
    pub fn module_ids(&self) -> impl Iterator<Item = ModuleId> + '_ {
        (0..self.modules.len()).map(ModuleId::from_index)
    }

    /// Iterator over `(id, net)` pairs in insertion order.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i as u32), n))
    }

    /// Sum of the default-shape areas of all modules.
    ///
    /// Used as the denominator of the *area usage* metric reported in Table I
    /// of the paper.
    #[must_use]
    pub fn total_module_area(&self) -> i128 {
        self.modules.iter().map(|m| i128::from(m.area())).sum()
    }

    /// Default footprints of all modules, indexed by module id.
    #[must_use]
    pub fn default_dims(&self) -> Vec<Dims> {
        self.modules.iter().map(Module::dims).collect()
    }

    /// Builds the CSR-style pin adjacency snapshot of this netlist (see
    /// [`crate::NetAdjacency`]). Engines call this once per run and reuse the
    /// snapshot for every allocation-free wirelength evaluation.
    #[must_use]
    pub fn adjacency(&self) -> crate::NetAdjacency {
        crate::NetAdjacency::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_module_netlist() -> (Netlist, ModuleId, ModuleId) {
        let mut nl = Netlist::new("t");
        let a = nl.add_module(Module::new("A", Dims::new(10, 10)));
        let b = nl.add_module(Module::new("B", Dims::new(20, 5)));
        (nl, a, b)
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let (nl, a, b) = two_module_netlist();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(nl.module_count(), 2);
        let ids: Vec<ModuleId> = nl.module_ids().collect();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn total_area_sums_default_shapes() {
        let (nl, _, _) = two_module_netlist();
        assert_eq!(nl.total_module_area(), 100 + 100);
    }

    #[test]
    fn net_lookup_roundtrip() {
        let (mut nl, a, b) = two_module_netlist();
        let n = nl.add_net("x", [a, b]);
        assert_eq!(nl.net(n).pins(), &[a, b]);
        assert_eq!(nl.net_count(), 1);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn net_with_unknown_pin_panics() {
        let (mut nl, _, _) = two_module_netlist();
        nl.add_net("bad", [ModuleId::from_index(99)]);
    }

    #[test]
    fn weighted_net_preserves_weight() {
        let (mut nl, a, b) = two_module_netlist();
        let id = nl.add_weighted_net(Net::new("crit", vec![a, b]).with_weight(4.0));
        assert_eq!(nl.net(id).weight(), 4.0);
    }
}
