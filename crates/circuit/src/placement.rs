//! Placement results and quality metrics.

use crate::{ConstraintSet, ModuleId, NetAdjacency, Netlist};
use apls_geometry::{hpwl_filtered, total_overlap_area, BoundingBox, Coord, Orientation, Rect};
use serde::{Deserialize, Serialize};

/// The placed instance of one module: its rectangle, orientation and the shape
/// variant that was chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedModule {
    /// Final rectangle in chip coordinates.
    pub rect: Rect,
    /// Orientation chosen by the placer.
    pub orientation: Orientation,
    /// Index into [`crate::Module::variants`] of the chosen shape.
    pub variant: usize,
}

/// A full placement: one [`PlacedModule`] per module of a [`Netlist`].
///
/// A `Placement` does not borrow the netlist; it stores one entry per module
/// id, in id order. Engines build placements incrementally with
/// [`Placement::place`] and consumers read them back with
/// [`Placement::rect_of`].
///
/// # Example
///
/// ```
/// use apls_circuit::{Netlist, Module, Placement};
/// use apls_geometry::{Dims, Rect, Orientation};
///
/// let mut nl = Netlist::new("pair");
/// let a = nl.add_module(Module::new("A", Dims::new(10, 10)));
/// let b = nl.add_module(Module::new("B", Dims::new(10, 10)));
/// let mut p = Placement::new(&nl);
/// p.place(a, Rect::new(0, 0, 10, 10), Orientation::R0, 0);
/// p.place(b, Rect::new(10, 0, 20, 10), Orientation::MY, 0);
/// assert!(p.is_complete());
/// let m = p.metrics(&nl);
/// assert_eq!(m.overlap_area, 0);
/// assert_eq!(m.bounding_area, 200);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    slots: Vec<Option<PlacedModule>>,
}

/// Quality metrics of a placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementMetrics {
    /// Area of the bounding rectangle of all placed modules.
    pub bounding_area: i128,
    /// Width of the bounding rectangle.
    pub width: Coord,
    /// Height of the bounding rectangle.
    pub height: Coord,
    /// Bounding area divided by the total module area (≥ 1 for legal
    /// placements of non-overlapping modules). This is the "area usage"
    /// column of Table I in the paper.
    pub area_usage: f64,
    /// Weighted half-perimeter wirelength over all nets.
    pub wirelength: f64,
    /// Total pairwise overlap area (0 for legal placements).
    pub overlap_area: i128,
}

impl Placement {
    /// Creates an empty placement sized for the given netlist.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        Placement { slots: vec![None; netlist.module_count()] }
    }

    /// Creates an empty placement for `n` modules (for engines that work on
    /// raw dimension lists rather than a full netlist).
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Placement { slots: vec![None; n] }
    }

    /// Records the placement of one module, returning the previous value if
    /// the module had already been placed.
    ///
    /// # Panics
    ///
    /// Panics if the module id is out of range for this placement.
    pub fn place(
        &mut self,
        id: ModuleId,
        rect: Rect,
        orientation: Orientation,
        variant: usize,
    ) -> Option<PlacedModule> {
        let slot = &mut self.slots[id.index()];
        slot.replace(PlacedModule { rect, orientation, variant })
    }

    /// The placed instance of a module, if it has been placed.
    #[must_use]
    pub fn get(&self, id: ModuleId) -> Option<&PlacedModule> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// The rectangle of a placed module.
    ///
    /// # Panics
    ///
    /// Panics if the module has not been placed.
    #[must_use]
    pub fn rect_of(&self, id: ModuleId) -> Rect {
        self.get(id).expect("module not placed").rect
    }

    /// Returns `true` when every module has been placed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.slots.iter().all(Option::is_some)
    }

    /// Number of modules that have been placed so far.
    #[must_use]
    pub fn placed_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterator over `(id, placed)` pairs of all placed modules.
    pub fn iter(&self) -> impl Iterator<Item = (ModuleId, &PlacedModule)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|p| (ModuleId::from_index(i), p)))
    }

    /// Rectangles of all placed modules, in module-id order (no intermediate
    /// allocation).
    pub fn rects(&self) -> impl Iterator<Item = Rect> + '_ {
        self.slots.iter().filter_map(|s| s.as_ref().map(|p| p.rect))
    }

    /// Resets every slot to unplaced, keeping the buffer for reuse in hot
    /// loops (the counterpart of [`Placement::with_capacity`]).
    pub fn clear(&mut self) {
        self.slots.fill(None);
    }

    /// Translates every placed module by `(dx, dy)`.
    pub fn translate(&mut self, dx: Coord, dy: Coord) {
        for slot in self.slots.iter_mut().flatten() {
            slot.rect = slot.rect.translated(apls_geometry::Point::new(dx, dy));
        }
    }

    /// Normalises the placement so that its bounding box is anchored at the
    /// origin.
    pub fn normalize(&mut self) {
        if let Some(r) = self.bounding_rect() {
            self.translate(-r.x_min, -r.y_min);
        }
    }

    /// Bounding rectangle of the placed modules (`None` when nothing is
    /// placed). Accumulated by direct iteration — no intermediate `Vec`.
    #[must_use]
    pub fn bounding_rect(&self) -> Option<Rect> {
        let mut bb = BoundingBox::new();
        for r in self.rects() {
            bb.include_rect(&r);
        }
        bb.to_rect()
    }

    /// HPWL of one net given its pins, skipping unplaced pins, without
    /// collecting the pin rectangles (the shared
    /// [`apls_geometry::hpwl_filtered`] kernel over the placement slots).
    fn net_hpwl(&self, pins: &[ModuleId]) -> Coord {
        hpwl_filtered(pins.iter().map(|&m| self.get(m).map(|p| p.rect)))
    }

    /// Weighted HPWL over all nets of a CSR adjacency snapshot, with zero
    /// allocation. Equals the `wirelength` field of [`Placement::metrics`]
    /// bit for bit (same net order, same accumulation).
    #[must_use]
    pub fn wirelength_with(&self, adjacency: &NetAdjacency) -> f64 {
        let mut wirelength = 0.0;
        for net in 0..adjacency.net_count() {
            wirelength += adjacency.weight(net) * self.net_hpwl(adjacency.pins(net)) as f64;
        }
        wirelength
    }

    /// The annealing-loop cost of this placement: bounding-box area plus the
    /// weighted HPWL, with zero allocation and **without** the O(n²) overlap
    /// scan (overlap-freedom is structural for the topological encodings; the
    /// full check stays in [`Placement::metrics`] for final reporting and
    /// debug assertions).
    #[must_use]
    pub fn hot_cost(&self, adjacency: &NetAdjacency, wirelength_weight: f64) -> f64 {
        let mut bb = BoundingBox::new();
        for r in self.rects() {
            bb.include_rect(&r);
        }
        bb.area() as f64 + wirelength_weight * self.wirelength_with(adjacency)
    }

    /// Computes the quality metrics of this placement against its netlist.
    #[must_use]
    pub fn metrics(&self, netlist: &Netlist) -> PlacementMetrics {
        let rects: Vec<Rect> = self.rects().collect();
        let bb: BoundingBox = rects.iter().copied().collect();
        let bounding_area = bb.area();
        let total_area = netlist.total_module_area();
        let area_usage =
            if total_area > 0 { bounding_area as f64 / total_area as f64 } else { 0.0 };

        let mut wirelength = 0.0;
        for (_, net) in netlist.nets() {
            wirelength += net.weight() * self.net_hpwl(net.pins()) as f64;
        }

        PlacementMetrics {
            bounding_area,
            width: bb.width(),
            height: bb.height(),
            area_usage,
            wirelength,
            overlap_area: total_overlap_area(&rects),
        }
    }

    /// Maximum symmetry-axis deviation over all symmetry groups, in half
    /// database units.
    ///
    /// For each symmetry group the axis is estimated as the mean of the
    /// doubled pair centres; the error is the largest deviation of any pair
    /// (or self-symmetric cell) from perfect mirroring about that axis. Zero
    /// means the placement is exactly symmetric.
    #[must_use]
    pub fn symmetry_error(&self, constraints: &ConstraintSet) -> Coord {
        constraints.symmetry_groups().iter().map(|g| g.axis_error(self)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Module;
    use apls_geometry::Dims;

    fn netlist3() -> (Netlist, Vec<ModuleId>) {
        let mut nl = Netlist::new("t");
        let ids = vec![
            nl.add_module(Module::new("A", Dims::new(10, 10))),
            nl.add_module(Module::new("B", Dims::new(20, 10))),
            nl.add_module(Module::new("C", Dims::new(10, 30))),
        ];
        (nl, ids)
    }

    #[test]
    fn empty_placement_is_incomplete() {
        let (nl, _) = netlist3();
        let p = Placement::new(&nl);
        assert!(!p.is_complete());
        assert_eq!(p.placed_count(), 0);
        assert_eq!(p.bounding_rect(), None);
    }

    #[test]
    fn placing_all_modules_completes() {
        let (nl, ids) = netlist3();
        let mut p = Placement::new(&nl);
        p.place(ids[0], Rect::new(0, 0, 10, 10), Orientation::R0, 0);
        p.place(ids[1], Rect::new(10, 0, 30, 10), Orientation::R0, 0);
        p.place(ids[2], Rect::new(0, 10, 10, 40), Orientation::R0, 0);
        assert!(p.is_complete());
        assert_eq!(p.placed_count(), 3);
        assert_eq!(p.rect_of(ids[1]).width(), 20);
    }

    #[test]
    fn replacing_returns_previous() {
        let (nl, ids) = netlist3();
        let mut p = Placement::new(&nl);
        assert!(p.place(ids[0], Rect::new(0, 0, 10, 10), Orientation::R0, 0).is_none());
        let prev = p.place(ids[0], Rect::new(5, 5, 15, 15), Orientation::R90, 1);
        assert_eq!(prev.unwrap().rect, Rect::new(0, 0, 10, 10));
    }

    #[test]
    fn metrics_of_legal_placement() {
        let (mut nl, ids) = netlist3();
        nl.add_net("n1", [ids[0], ids[1]]);
        let mut p = Placement::new(&nl);
        p.place(ids[0], Rect::new(0, 0, 10, 10), Orientation::R0, 0);
        p.place(ids[1], Rect::new(10, 0, 30, 10), Orientation::R0, 0);
        p.place(ids[2], Rect::new(30, 0, 40, 30), Orientation::R0, 0);
        let m = p.metrics(&nl);
        assert_eq!(m.overlap_area, 0);
        assert_eq!(m.width, 40);
        assert_eq!(m.height, 30);
        assert_eq!(m.bounding_area, 1200);
        // total module area = 100 + 200 + 300 = 600
        assert!((m.area_usage - 2.0).abs() < 1e-12);
        // net between centres (5,5) and (20,5): hpwl = 15
        assert!((m.wirelength - 15.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_moves_origin_to_zero() {
        let (nl, ids) = netlist3();
        let mut p = Placement::new(&nl);
        p.place(ids[0], Rect::new(50, 70, 60, 80), Orientation::R0, 0);
        p.place(ids[1], Rect::new(60, 70, 80, 80), Orientation::R0, 0);
        p.place(ids[2], Rect::new(50, 80, 60, 110), Orientation::R0, 0);
        p.normalize();
        let bb = p.bounding_rect().unwrap();
        assert_eq!(bb.x_min, 0);
        assert_eq!(bb.y_min, 0);
    }

    #[test]
    fn hot_cost_matches_metrics_cost() {
        let (mut nl, ids) = netlist3();
        nl.add_net("n1", [ids[0], ids[1]]);
        nl.add_net("n2", [ids[0], ids[1], ids[2]]);
        let mut p = Placement::new(&nl);
        p.place(ids[0], Rect::new(0, 0, 10, 10), Orientation::R0, 0);
        p.place(ids[1], Rect::new(10, 0, 30, 10), Orientation::R0, 0);
        p.place(ids[2], Rect::new(30, 0, 40, 30), Orientation::R0, 0);
        let adj = nl.adjacency();
        let m = p.metrics(&nl);
        let w = 0.75;
        assert_eq!(p.wirelength_with(&adj), m.wirelength);
        assert_eq!(p.hot_cost(&adj, w), m.bounding_area as f64 + w * m.wirelength);
    }

    #[test]
    fn clear_resets_all_slots_for_reuse() {
        let (nl, ids) = netlist3();
        let mut p = Placement::new(&nl);
        p.place(ids[0], Rect::new(0, 0, 10, 10), Orientation::R0, 0);
        p.clear();
        assert_eq!(p.placed_count(), 0);
        assert_eq!(p.bounding_rect(), None);
    }

    #[test]
    fn overlap_detected_in_metrics() {
        let (nl, ids) = netlist3();
        let mut p = Placement::new(&nl);
        p.place(ids[0], Rect::new(0, 0, 10, 10), Orientation::R0, 0);
        p.place(ids[1], Rect::new(5, 0, 25, 10), Orientation::R0, 0);
        p.place(ids[2], Rect::new(100, 0, 110, 30), Orientation::R0, 0);
        let m = p.metrics(&nl);
        assert_eq!(m.overlap_area, 50);
    }
}
