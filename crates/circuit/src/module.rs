//! Placeable modules (devices or device groups).

use apls_geometry::{Coord, Dims};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier of a module inside a [`crate::Netlist`].
///
/// Module ids are dense indices assigned in insertion order, which lets the
/// placement engines use plain `Vec`s as per-module tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModuleId(pub(crate) u32);

impl ModuleId {
    /// Creates a module id from a raw index.
    ///
    /// Intended for engines that synthesise ids for scratch netlists; ids used
    /// against a [`crate::Netlist`] must come from
    /// [`crate::Netlist::add_module`].
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        ModuleId(u32::try_from(index).expect("module index exceeds u32"))
    }

    /// The dense index backing this id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One discrete shape a module may take.
///
/// Analog devices are frequently *foldable*: a MOS transistor of total width W
/// can be folded into `f` fingers, trading width for height. Each folding is a
/// shape variant. Variant 0 is the module's default shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShapeVariant {
    /// Footprint of this variant.
    pub dims: Dims,
    /// Number of fingers (informational; 1 for unfolded devices).
    pub folds: u32,
}

impl ShapeVariant {
    /// Creates a shape variant.
    #[must_use]
    pub fn new(dims: Dims, folds: u32) -> Self {
        ShapeVariant { dims, folds }
    }
}

/// A placeable rectangular module.
///
/// # Example
///
/// ```
/// use apls_circuit::Module;
/// use apls_geometry::Dims;
///
/// let m = Module::new("M_DP1", Dims::new(64, 22))
///     .with_variant(Dims::new(34, 42), 2)
///     .with_rotation_allowed(false);
/// assert_eq!(m.variants().len(), 2);
/// assert_eq!(m.area(), 64 * 22);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    name: String,
    variants: Vec<ShapeVariant>,
    rotation_allowed: bool,
}

impl Module {
    /// Creates a module with a single (default) shape.
    #[must_use]
    pub fn new(name: impl Into<String>, dims: Dims) -> Self {
        Module {
            name: name.into(),
            variants: vec![ShapeVariant::new(dims, 1)],
            rotation_allowed: true,
        }
    }

    /// Adds an alternative shape variant (builder style).
    #[must_use]
    pub fn with_variant(mut self, dims: Dims, folds: u32) -> Self {
        self.variants.push(ShapeVariant::new(dims, folds));
        self
    }

    /// Enables or disables 90° rotation during placement (builder style).
    ///
    /// Matched analog devices are typically not allowed to rotate relative to
    /// each other because rotation changes their parasitic and stress profile.
    #[must_use]
    pub fn with_rotation_allowed(mut self, allowed: bool) -> Self {
        self.rotation_allowed = allowed;
        self
    }

    /// Module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Default footprint (variant 0).
    #[must_use]
    pub fn dims(&self) -> Dims {
        self.variants[0].dims
    }

    /// All shape variants, the default first.
    #[must_use]
    pub fn variants(&self) -> &[ShapeVariant] {
        &self.variants
    }

    /// Whether the placer may rotate this module by 90°.
    #[must_use]
    pub fn rotation_allowed(&self) -> bool {
        self.rotation_allowed
    }

    /// Area of the default shape.
    #[must_use]
    pub fn area(&self) -> Coord {
        let d = self.dims();
        d.w * d.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_id_roundtrip() {
        let id = ModuleId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "m17");
    }

    #[test]
    fn default_variant_is_first() {
        let m = Module::new("X", Dims::new(10, 20)).with_variant(Dims::new(20, 10), 2);
        assert_eq!(m.dims(), Dims::new(10, 20));
        assert_eq!(m.variants()[1].folds, 2);
    }

    #[test]
    fn rotation_flag_builder() {
        let m = Module::new("X", Dims::new(10, 20));
        assert!(m.rotation_allowed());
        let m = m.with_rotation_allowed(false);
        assert!(!m.rotation_allowed());
    }

    #[test]
    fn area_uses_default_variant() {
        let m = Module::new("X", Dims::new(10, 20)).with_variant(Dims::new(1000, 1000), 4);
        assert_eq!(m.area(), 200);
    }
}
