//! Layout design hierarchy trees.
//!
//! Analog circuits have a natural hierarchical structure (Fig. 2 and Fig. 6 of
//! the paper): differential pairs, current mirrors and bias networks group a
//! handful of devices each, and those groups nest into amplifier cores, bias
//! blocks and so on. Both the hierarchical B*-tree placer (Section III) and
//! the deterministic enumeration placer (Section IV) consume this structure:
//! the former to bound its perturbations, the latter to bound its enumeration
//! (leaf groups become *basic module sets*).

use crate::{ConstraintKind, ModuleId, Netlist};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Opaque identifier of a node in a [`HierarchyTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HierarchyNodeId(u32);

impl HierarchyNodeId {
    /// Creates a node id from a raw dense index.
    ///
    /// Ids handed out by [`HierarchyTree`] are dense and ordered, so engines
    /// that keep per-node side tables (e.g. the HB*-tree placer) can round-trip
    /// through indices. Using an index that the tree never handed out results
    /// in panics on lookup, not undefined behaviour.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        HierarchyNodeId(u32::try_from(index).expect("hierarchy node index exceeds u32"))
    }

    /// The dense index backing this id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HierarchyNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A node of the layout design hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HierarchyNode {
    /// A leaf: one placeable module.
    Leaf {
        /// The module this leaf represents.
        module: ModuleId,
    },
    /// An internal node: a sub-circuit made of child nodes, optionally tagged
    /// with the constraint that applies to the whole sub-circuit (as in
    /// Fig. 2 of the paper, where each sub-circuit corresponds to a specific
    /// constraint).
    Internal {
        /// Sub-circuit name.
        name: String,
        /// Children, in schematic order.
        children: Vec<HierarchyNodeId>,
        /// The constraint attached to this sub-circuit, if any.
        constraint: Option<ConstraintKind>,
    },
}

/// A layout design hierarchy tree.
///
/// Nodes are created bottom-up: leaves first, then internal nodes referencing
/// existing children, finally [`HierarchyTree::set_root`]. Because children
/// must exist before their parent, the structure is acyclic by construction.
///
/// # Example
///
/// ```
/// use apls_circuit::{HierarchyTree, ModuleId, ConstraintKind};
///
/// let mut tree = HierarchyTree::new();
/// let m0 = tree.add_leaf(ModuleId::from_index(0));
/// let m1 = tree.add_leaf(ModuleId::from_index(1));
/// let dp = tree.add_internal("DP", vec![m0, m1], Some(ConstraintKind::Symmetry));
/// tree.set_root(dp);
/// assert_eq!(tree.leaves_under(dp), vec![ModuleId::from_index(0), ModuleId::from_index(1)]);
/// assert_eq!(tree.basic_module_sets().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HierarchyTree {
    nodes: Vec<HierarchyNode>,
    root: Option<HierarchyNodeId>,
}

impl HierarchyTree {
    /// Creates an empty hierarchy tree.
    #[must_use]
    pub fn new() -> Self {
        HierarchyTree::default()
    }

    /// Adds a leaf node for a module and returns its id.
    pub fn add_leaf(&mut self, module: ModuleId) -> HierarchyNodeId {
        self.push(HierarchyNode::Leaf { module })
    }

    /// Adds an internal node over existing children and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if any child id does not exist yet or if `children` is empty.
    pub fn add_internal(
        &mut self,
        name: impl Into<String>,
        children: Vec<HierarchyNodeId>,
        constraint: Option<ConstraintKind>,
    ) -> HierarchyNodeId {
        assert!(!children.is_empty(), "internal hierarchy node needs at least one child");
        for c in &children {
            assert!(c.index() < self.nodes.len(), "child {c} does not exist");
        }
        self.push(HierarchyNode::Internal { name: name.into(), children, constraint })
    }

    fn push(&mut self, node: HierarchyNode) -> HierarchyNodeId {
        let id =
            HierarchyNodeId(u32::try_from(self.nodes.len()).expect("too many hierarchy nodes"));
        self.nodes.push(node);
        id
    }

    /// Declares a node as the root of the tree.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn set_root(&mut self, root: HierarchyNodeId) {
        assert!(root.index() < self.nodes.len(), "root {root} does not exist");
        self.root = Some(root);
    }

    /// The root node, if one has been declared.
    #[must_use]
    pub fn root(&self) -> Option<HierarchyNodeId> {
        self.root
    }

    /// Node lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this tree.
    #[must_use]
    pub fn node(&self, id: HierarchyNodeId) -> &HierarchyNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes (leaves + internal).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Children of a node (empty for leaves).
    #[must_use]
    pub fn children(&self, id: HierarchyNodeId) -> &[HierarchyNodeId] {
        match self.node(id) {
            HierarchyNode::Leaf { .. } => &[],
            HierarchyNode::Internal { children, .. } => children,
        }
    }

    /// The constraint attached to a node, if any.
    #[must_use]
    pub fn constraint_of(&self, id: HierarchyNodeId) -> Option<ConstraintKind> {
        match self.node(id) {
            HierarchyNode::Leaf { .. } => None,
            HierarchyNode::Internal { constraint, .. } => *constraint,
        }
    }

    /// All modules in the subtree rooted at `id`, in depth-first schematic
    /// order.
    #[must_use]
    pub fn leaves_under(&self, id: HierarchyNodeId) -> Vec<ModuleId> {
        let mut out = Vec::new();
        self.collect_leaves(id, &mut out);
        out
    }

    fn collect_leaves(&self, id: HierarchyNodeId, out: &mut Vec<ModuleId>) {
        match self.node(id) {
            HierarchyNode::Leaf { module } => out.push(*module),
            HierarchyNode::Internal { children, .. } => {
                for &c in children {
                    self.collect_leaves(c, out);
                }
            }
        }
    }

    /// Returns `true` when every child of the node is a leaf.
    #[must_use]
    pub fn is_basic_module_set(&self, id: HierarchyNodeId) -> bool {
        match self.node(id) {
            HierarchyNode::Leaf { .. } => false,
            HierarchyNode::Internal { children, .. } => {
                children.iter().all(|&c| matches!(self.node(c), HierarchyNode::Leaf { .. }))
            }
        }
    }

    /// All *basic module sets*: internal nodes whose children are all leaves,
    /// together with the modules they contain (Section IV of the paper).
    #[must_use]
    pub fn basic_module_sets(&self) -> Vec<(HierarchyNodeId, Vec<ModuleId>)> {
        (0..self.nodes.len())
            .map(|i| HierarchyNodeId(i as u32))
            .filter(|&id| self.is_basic_module_set(id))
            .map(|id| (id, self.leaves_under(id)))
            .collect()
    }

    /// Depth of the subtree rooted at `id` (a leaf has depth 1).
    #[must_use]
    pub fn depth(&self, id: HierarchyNodeId) -> usize {
        match self.node(id) {
            HierarchyNode::Leaf { .. } => 1,
            HierarchyNode::Internal { children, .. } => {
                1 + children.iter().map(|&c| self.depth(c)).max().unwrap_or(0)
            }
        }
    }

    /// Validates the tree against a netlist.
    ///
    /// # Errors
    ///
    /// Returns human-readable problems: a missing root, leaves referencing
    /// modules that do not exist, modules appearing in more than one leaf of
    /// the root's subtree, or modules of the netlist missing from the tree.
    pub fn validate(&self, netlist: &Netlist) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        let Some(root) = self.root else {
            problems.push("hierarchy tree has no root".to_string());
            return Err(problems);
        };
        let leaves = self.leaves_under(root);
        let mut seen: BTreeSet<ModuleId> = BTreeSet::new();
        for m in &leaves {
            if m.index() >= netlist.module_count() {
                problems.push(format!("hierarchy leaf references unknown module {m}"));
            }
            if !seen.insert(*m) {
                problems.push(format!("module {m} appears in more than one hierarchy leaf"));
            }
        }
        for id in netlist.module_ids() {
            if !seen.contains(&id) {
                problems.push(format!(
                    "module {id} ('{}') is not covered by the hierarchy tree",
                    netlist.module(id).name()
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Module;
    use apls_geometry::Dims;

    fn id(i: usize) -> ModuleId {
        ModuleId::from_index(i)
    }

    /// Builds the Miller op-amp hierarchy of Fig. 6:
    /// OPAMP { CORE { DP {P1,P2}, CM1 {N3,N4} }, CM2 {P5,P6,P7}, C {N8} }.
    fn miller_tree() -> (HierarchyTree, HierarchyNodeId) {
        let mut t = HierarchyTree::new();
        let p1 = t.add_leaf(id(0));
        let p2 = t.add_leaf(id(1));
        let n3 = t.add_leaf(id(2));
        let n4 = t.add_leaf(id(3));
        let p5 = t.add_leaf(id(4));
        let p6 = t.add_leaf(id(5));
        let p7 = t.add_leaf(id(6));
        let n8 = t.add_leaf(id(7));
        let dp = t.add_internal("DP", vec![p1, p2], Some(ConstraintKind::Symmetry));
        let cm1 = t.add_internal("CM1", vec![n3, n4], Some(ConstraintKind::CommonCentroid));
        let core = t.add_internal("CORE", vec![dp, cm1], Some(ConstraintKind::Symmetry));
        let cm2 = t.add_internal("CM2", vec![p5, p6, p7], Some(ConstraintKind::Proximity));
        let c = t.add_internal("C", vec![n8], None);
        let top = t.add_internal("OPAMP", vec![core, cm2, c], None);
        t.set_root(top);
        (t, top)
    }

    #[test]
    fn leaves_are_collected_in_schematic_order() {
        let (t, top) = miller_tree();
        let leaves = t.leaves_under(top);
        assert_eq!(leaves, (0..8).map(id).collect::<Vec<_>>());
    }

    #[test]
    fn basic_module_sets_of_miller() {
        let (t, _) = miller_tree();
        let sets = t.basic_module_sets();
        // DP, CM1, CM2 and C are basic; CORE and OPAMP are not.
        assert_eq!(sets.len(), 4);
        let sizes: Vec<usize> = sets.iter().map(|(_, ms)| ms.len()).collect();
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&3));
        assert!(sizes.contains(&1));
    }

    #[test]
    fn depth_of_miller_tree() {
        let (t, top) = miller_tree();
        assert_eq!(t.depth(top), 4); // OPAMP -> CORE -> DP -> leaf
    }

    #[test]
    fn constraints_are_recorded() {
        let (t, top) = miller_tree();
        let core = t.children(top)[0];
        assert_eq!(t.constraint_of(core), Some(ConstraintKind::Symmetry));
        assert_eq!(t.constraint_of(top), None);
    }

    #[test]
    fn validate_complete_tree() {
        let (t, _) = miller_tree();
        let mut nl = Netlist::new("miller");
        for i in 0..8 {
            nl.add_module(Module::new(format!("M{i}"), Dims::new(10, 10)));
        }
        assert!(t.validate(&nl).is_ok());
    }

    #[test]
    fn validate_detects_missing_and_duplicate_modules() {
        let mut t = HierarchyTree::new();
        let a = t.add_leaf(id(0));
        let b = t.add_leaf(id(0)); // duplicate
        let c = t.add_leaf(id(5)); // out of range
        let root = t.add_internal("top", vec![a, b, c], None);
        t.set_root(root);
        let mut nl = Netlist::new("t");
        for i in 0..3 {
            nl.add_module(Module::new(format!("M{i}"), Dims::new(10, 10)));
        }
        let errs = t.validate(&nl).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("more than one hierarchy leaf")));
        assert!(errs.iter().any(|e| e.contains("unknown module")));
        assert!(errs.iter().any(|e| e.contains("not covered")));
    }

    #[test]
    fn validate_requires_root() {
        let t = HierarchyTree::new();
        let nl = Netlist::new("t");
        assert!(t.validate(&nl).is_err());
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn internal_node_with_unknown_child_panics() {
        let mut t = HierarchyTree::new();
        t.add_internal("bad", vec![HierarchyNodeId(7)], None);
    }
}
