//! Synthetic benchmark circuits.
//!
//! The paper's Table I evaluates six analog circuits with 10 to 110 modules
//! (`Miller V2`, `Comparator V2`, `Folded cascode`, `Buffer`, `biasynth`,
//! `lnamixbias`). The original netlists are proprietary, so this module
//! generates *seeded synthetic equivalents* with the same module counts,
//! analog-like size heterogeneity, shallow hierarchy trees of small basic
//! module sets, and symmetry / common-centroid / proximity constraints. Table
//! I's claims are about the relative behaviour of the algorithms as the module
//! count grows, which these circuits preserve (see DESIGN.md §2).
//!
//! # Example
//!
//! ```
//! use apls_circuit::benchmarks;
//!
//! let c = benchmarks::miller_v2();
//! assert_eq!(c.netlist.module_count(), 13);
//! assert!(c.hierarchy.validate(&c.netlist).is_ok());
//! ```

use crate::{
    CommonCentroidGroup, ConstraintKind, ConstraintSet, HierarchyNodeId, HierarchyTree, Module,
    ModuleId, Net, Netlist, ProximityGroup, SymmetryGroup,
};
use apls_geometry::{Coord, Dims};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A benchmark circuit: netlist, hierarchy and constraints under one name.
#[derive(Debug, Clone)]
pub struct BenchmarkCircuit {
    /// Circuit name (matches the rows of Table I for the six paper circuits).
    pub name: String,
    /// The flat netlist.
    pub netlist: Netlist,
    /// The layout design hierarchy.
    pub hierarchy: HierarchyTree,
    /// The analog layout constraints.
    pub constraints: ConstraintSet,
}

impl BenchmarkCircuit {
    /// Number of modules in the circuit.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.netlist.module_count()
    }

    /// Rotation permissions indexed by module id: a module may rotate when
    /// its netlist entry allows it and no constraint group mentions it
    /// (rotating one member of a matched/symmetric/proximity group would
    /// break the group's geometry). This is the shared eligibility rule of
    /// the enumeration, hier, and subset-annealing engines.
    #[must_use]
    pub fn rotatable_modules(&self) -> Vec<bool> {
        self.netlist
            .module_ids()
            .map(|m| {
                self.netlist.module(m).rotation_allowed()
                    && self.constraints.kinds_for(m).is_empty()
            })
            .collect()
    }
}

/// Parameters of the synthetic circuit generator.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Number of modules to generate.
    pub module_count: usize,
    /// RNG seed (same seed ⇒ identical circuit).
    pub seed: u64,
    /// Fraction of basic module sets that carry a symmetry constraint.
    pub symmetry_fraction: f64,
    /// Fraction of basic module sets that carry a common-centroid constraint.
    pub common_centroid_fraction: f64,
    /// Fraction of basic module sets that carry a proximity constraint.
    pub proximity_fraction: f64,
    /// Smallest module edge length in dbu.
    pub min_edge: Coord,
    /// Largest module edge length in dbu.
    pub max_edge: Coord,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            module_count: 20,
            seed: 1,
            symmetry_fraction: 0.35,
            common_centroid_fraction: 0.15,
            proximity_fraction: 0.25,
            min_edge: 20,
            max_edge: 360,
        }
    }
}

/// Generates a synthetic analog circuit.
///
/// Modules are created in basic module sets of 2–4 devices; devices inside a
/// symmetric or common-centroid set are matched (identical dimensions).
/// Basic sets are then clustered 2–4 at a time into higher hierarchy levels
/// until a single root remains. Each basic set gets an internal net; a sprinkle
/// of cross-set nets models the global signal and bias wiring.
///
/// # Panics
///
/// Panics if `module_count` is zero.
#[must_use]
pub fn generate(name: &str, config: GeneratorConfig) -> BenchmarkCircuit {
    assert!(config.module_count > 0, "cannot generate an empty circuit");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut netlist = Netlist::new(name);
    let mut hierarchy = HierarchyTree::new();
    let mut constraints = ConstraintSet::new();

    // 1. carve the module count into basic module sets of 2..=4 (last set may be 1)
    let mut set_sizes: Vec<usize> = Vec::new();
    let mut remaining = config.module_count;
    while remaining > 0 {
        let size = if remaining <= 4 { remaining } else { rng.gen_range(2..=4usize) };
        set_sizes.push(size);
        remaining -= size;
    }

    // 2. create modules + leaves + constraints per basic set
    let mut basic_set_nodes: Vec<HierarchyNodeId> = Vec::new();
    let mut module_cursor = 0usize;
    for (set_idx, &size) in set_sizes.iter().enumerate() {
        let roll: f64 = rng.gen();
        let kind = if size >= 2 && roll < config.symmetry_fraction {
            Some(ConstraintKind::Symmetry)
        } else if size == 4 && roll < config.symmetry_fraction + config.common_centroid_fraction {
            // exact common centroids need an even number of matched units per
            // device, so only 2+2 sets are tagged common-centroid
            Some(ConstraintKind::CommonCentroid)
        } else if roll
            < config.symmetry_fraction + config.common_centroid_fraction + config.proximity_fraction
        {
            Some(ConstraintKind::Proximity)
        } else {
            None
        };

        // analog-like log-uniform edge lengths
        let edge = |rng: &mut StdRng| -> Coord {
            let lo = (config.min_edge as f64).ln();
            let hi = (config.max_edge as f64).ln();
            let v: f64 = rng.gen_range(lo..hi);
            v.exp().round() as Coord
        };

        let mut ids: Vec<ModuleId> = Vec::with_capacity(size);
        match kind {
            Some(ConstraintKind::Symmetry) | Some(ConstraintKind::CommonCentroid) => {
                // matched devices: pairs share dimensions
                let pair_dims = Dims::new(edge(&mut rng), edge(&mut rng));
                for i in 0..size {
                    let dims = if i < size - (size % 2) {
                        pair_dims
                    } else {
                        Dims::new(edge(&mut rng), edge(&mut rng))
                    };
                    let m = Module::new(format!("{name}_s{set_idx}_m{i}"), dims)
                        .with_rotation_allowed(false);
                    ids.push(netlist.add_module(m));
                }
            }
            _ => {
                for i in 0..size {
                    let dims = Dims::new(edge(&mut rng), edge(&mut rng));
                    ids.push(
                        netlist.add_module(Module::new(format!("{name}_s{set_idx}_m{i}"), dims)),
                    );
                }
            }
        }
        module_cursor += size;
        let _ = module_cursor;

        // constraint bookkeeping
        match kind {
            Some(ConstraintKind::Symmetry) => {
                let mut group = SymmetryGroup::new(format!("{name}_sym{set_idx}"));
                let mut i = 0;
                while i + 1 < ids.len() {
                    group = group.with_pair(ids[i], ids[i + 1]);
                    i += 2;
                }
                if ids.len() % 2 == 1 {
                    group = group.with_self_symmetric(ids[ids.len() - 1]);
                }
                constraints.add_symmetry_group(group);
            }
            Some(ConstraintKind::CommonCentroid) => {
                let half = ids.len() / 2;
                constraints.add_common_centroid_group(CommonCentroidGroup::new(
                    format!("{name}_cc{set_idx}"),
                    ids[..half].to_vec(),
                    ids[half..].to_vec(),
                ));
            }
            Some(ConstraintKind::Proximity) => {
                constraints.add_proximity_group(
                    ProximityGroup::new(format!("{name}_prox{set_idx}"), ids.clone())
                        .with_max_gap(10),
                );
            }
            _ => {}
        }

        // hierarchy leaves + basic-set node
        let leaves: Vec<HierarchyNodeId> = ids.iter().map(|&m| hierarchy.add_leaf(m)).collect();
        let node = hierarchy.add_internal(format!("{name}_set{set_idx}"), leaves, kind);
        basic_set_nodes.push(node);

        // intra-set net
        if ids.len() >= 2 {
            netlist.add_weighted_net(
                Net::new(format!("{name}_net_s{set_idx}"), ids.clone()).with_weight(2.0),
            );
        }
    }

    // 3. cluster basic sets into higher levels until one root remains
    let mut level_nodes = basic_set_nodes;
    let mut level = 0usize;
    while level_nodes.len() > 1 {
        let mut next_level: Vec<HierarchyNodeId> = Vec::new();
        let mut i = 0usize;
        while i < level_nodes.len() {
            let take = if level_nodes.len() - i <= 4 {
                level_nodes.len() - i
            } else {
                rng.gen_range(2..=4usize)
            };
            let children = level_nodes[i..i + take].to_vec();
            if children.len() == 1 {
                next_level.push(children[0]);
            } else {
                let node =
                    hierarchy.add_internal(format!("{name}_cluster_l{level}_{i}"), children, None);
                next_level.push(node);
            }
            i += take;
        }
        level_nodes = next_level;
        level += 1;
    }
    hierarchy.set_root(level_nodes[0]);

    // 4. cross-set signal nets: connect a random module of consecutive sets
    let all_ids: Vec<ModuleId> = netlist.module_ids().collect();
    let cross_nets = (config.module_count / 3).max(1);
    for k in 0..cross_nets {
        let fanout = rng.gen_range(2..=4usize).min(all_ids.len());
        let mut pins = Vec::with_capacity(fanout);
        for _ in 0..fanout {
            pins.push(all_ids[rng.gen_range(0..all_ids.len())]);
        }
        pins.sort();
        pins.dedup();
        if pins.len() >= 2 {
            netlist.add_net(format!("{name}_gnet{k}"), pins);
        }
    }

    BenchmarkCircuit { name: name.to_string(), netlist, hierarchy, constraints }
}

fn table1_config(module_count: usize, seed: u64) -> GeneratorConfig {
    GeneratorConfig { module_count, seed, ..GeneratorConfig::default() }
}

/// `Miller V2` — 13 modules (Table I, row 1).
#[must_use]
pub fn miller_v2() -> BenchmarkCircuit {
    generate("miller_v2", table1_config(13, 0xA11E_0001))
}

/// `Comparator V2` — 10 modules (Table I, row 2).
#[must_use]
pub fn comparator_v2() -> BenchmarkCircuit {
    generate("comparator_v2", table1_config(10, 0xA11E_0002))
}

/// `Folded cascode` — 22 modules (Table I, row 3).
#[must_use]
pub fn folded_cascode() -> BenchmarkCircuit {
    generate("folded_cascode", table1_config(22, 0xA11E_0003))
}

/// `Buffer` — 46 modules (Table I, row 4).
#[must_use]
pub fn buffer() -> BenchmarkCircuit {
    generate("buffer", table1_config(46, 0xA11E_0004))
}

/// `biasynth` — 65 modules (Table I, row 5).
#[must_use]
pub fn biasynth() -> BenchmarkCircuit {
    generate("biasynth", table1_config(65, 0xA11E_0005))
}

/// `lnamixbias` — 110 modules (Table I, row 6; also Fig. 8).
#[must_use]
pub fn lnamixbias() -> BenchmarkCircuit {
    generate("lnamixbias", table1_config(110, 0xA11E_0006))
}

/// All six Table I circuits, in row order.
#[must_use]
pub fn table1_circuits() -> Vec<BenchmarkCircuit> {
    vec![miller_v2(), comparator_v2(), folded_cascode(), buffer(), biasynth(), lnamixbias()]
}

/// Names of every bundled benchmark circuit, in lookup order (the six
/// Table I circuits plus the hand-written Fig. 6 Miller op-amp).
#[must_use]
pub fn names() -> Vec<&'static str> {
    vec![
        "miller_opamp_fig6",
        "miller_v2",
        "comparator_v2",
        "folded_cascode",
        "buffer",
        "biasynth",
        "lnamixbias",
    ]
}

/// Looks a bundled benchmark circuit up by name (see [`names`]); `None` for
/// unknown names. This is the lookup behind the `apls` CLI's `--circuit`
/// option.
///
/// # Example
///
/// ```
/// use apls_circuit::benchmarks;
///
/// assert!(benchmarks::by_name("miller_v2").is_some());
/// assert!(benchmarks::by_name("no_such_circuit").is_none());
/// ```
#[must_use]
pub fn by_name(name: &str) -> Option<BenchmarkCircuit> {
    match name {
        "miller_opamp_fig6" => Some(miller_opamp_fig6()),
        "miller_v2" => Some(miller_v2()),
        "comparator_v2" => Some(comparator_v2()),
        "folded_cascode" => Some(folded_cascode()),
        "buffer" => Some(buffer()),
        "biasynth" => Some(biasynth()),
        "lnamixbias" => Some(lnamixbias()),
        _ => None,
    }
}

/// The Miller op-amp of Fig. 6, built explicitly: differential pair `P1/P2`,
/// current-mirror load `N3/N4`, bias mirror `P5/P6/P7`, output device `N8`
/// and compensation capacitor `C`.
///
/// This small, fully hand-written circuit is the quickstart example of the
/// README and the regression anchor for the hierarchy-driven placers.
#[must_use]
pub fn miller_opamp_fig6() -> BenchmarkCircuit {
    let mut netlist = Netlist::new("miller_opamp");
    let p1 = netlist.add_module(Module::new("P1", Dims::new(60, 30)).with_rotation_allowed(false));
    let p2 = netlist.add_module(Module::new("P2", Dims::new(60, 30)).with_rotation_allowed(false));
    let n3 = netlist.add_module(Module::new("N3", Dims::new(40, 24)).with_rotation_allowed(false));
    let n4 = netlist.add_module(Module::new("N4", Dims::new(40, 24)).with_rotation_allowed(false));
    let p5 = netlist.add_module(Module::new("P5", Dims::new(36, 28)));
    let p6 = netlist.add_module(Module::new("P6", Dims::new(36, 28)));
    let p7 = netlist.add_module(Module::new("P7", Dims::new(36, 28)));
    let n8 = netlist.add_module(Module::new("N8", Dims::new(80, 40)));
    let c = netlist.add_module(Module::new("C", Dims::new(90, 90)));

    netlist.add_weighted_net(Net::new("inp", vec![p1]).with_weight(1.0));
    netlist.add_weighted_net(Net::new("inn", vec![p2]).with_weight(1.0));
    netlist.add_weighted_net(Net::new("diff_out", vec![p2, n4, n8, c]).with_weight(2.0));
    netlist.add_weighted_net(Net::new("mirror", vec![p1, n3, n4]).with_weight(1.5));
    netlist.add_weighted_net(Net::new("bias", vec![p5, p6, p7, p1, p2]).with_weight(1.0));
    netlist.add_weighted_net(Net::new("out", vec![n8, c]).with_weight(2.0));

    let mut hierarchy = HierarchyTree::new();
    let lp1 = hierarchy.add_leaf(p1);
    let lp2 = hierarchy.add_leaf(p2);
    let ln3 = hierarchy.add_leaf(n3);
    let ln4 = hierarchy.add_leaf(n4);
    let lp5 = hierarchy.add_leaf(p5);
    let lp6 = hierarchy.add_leaf(p6);
    let lp7 = hierarchy.add_leaf(p7);
    let ln8 = hierarchy.add_leaf(n8);
    let lc = hierarchy.add_leaf(c);
    let dp = hierarchy.add_internal("DP", vec![lp1, lp2], Some(ConstraintKind::Symmetry));
    let cm1 = hierarchy.add_internal("CM1", vec![ln3, ln4], Some(ConstraintKind::CommonCentroid));
    let core = hierarchy.add_internal("CORE", vec![dp, cm1], Some(ConstraintKind::Symmetry));
    let cm2 = hierarchy.add_internal("CM2", vec![lp5, lp6, lp7], Some(ConstraintKind::Proximity));
    let out = hierarchy.add_internal("OUT", vec![ln8, lc], None);
    let top = hierarchy.add_internal("OPAMP", vec![core, cm2, out], None);
    hierarchy.set_root(top);

    let mut constraints = ConstraintSet::new();
    constraints
        .add_symmetry_group(SymmetryGroup::new("dp_sym").with_pair(p1, p2).with_pair(n3, n4));
    constraints.add_common_centroid_group(CommonCentroidGroup::new("load_cc", vec![n3], vec![n4]));
    constraints
        .add_proximity_group(ProximityGroup::new("bias_prox", vec![p5, p6, p7]).with_max_gap(10));

    BenchmarkCircuit { name: "miller_opamp".to_string(), netlist, hierarchy, constraints }
}

/// The 7-cell placement configuration of Fig. 1: cells `A..G` with the
/// symmetry group `γ = { (C, D), (B, G), A, F }`.
///
/// Returns the circuit plus the module ids in alphabetical order `A..G`.
#[must_use]
pub fn fig1_circuit() -> (BenchmarkCircuit, Vec<ModuleId>) {
    let mut netlist = Netlist::new("fig1");
    let dims = [
        Dims::new(40, 30), // A (self-symmetric)
        Dims::new(30, 50), // B
        Dims::new(35, 25), // C
        Dims::new(35, 25), // D (pairs with C)
        Dims::new(45, 70), // E (unconstrained)
        Dims::new(50, 20), // F (self-symmetric)
        Dims::new(30, 50), // G (pairs with B)
    ];
    let names = ["A", "B", "C", "D", "E", "F", "G"];
    let ids: Vec<ModuleId> = names
        .iter()
        .zip(dims.iter())
        .map(|(n, d)| netlist.add_module(Module::new(*n, *d).with_rotation_allowed(false)))
        .collect();

    netlist.add_net("diff", vec![ids[2], ids[3], ids[0]]);
    netlist.add_net("outer", vec![ids[1], ids[6], ids[5]]);
    netlist.add_net("aux", vec![ids[4], ids[0]]);

    let mut constraints = ConstraintSet::new();
    constraints.add_symmetry_group(
        SymmetryGroup::new("gamma")
            .with_pair(ids[2], ids[3]) // (C, D)
            .with_pair(ids[1], ids[6]) // (B, G)
            .with_self_symmetric(ids[0]) // A
            .with_self_symmetric(ids[5]), // F
    );

    let mut hierarchy = HierarchyTree::new();
    let leaves: Vec<HierarchyNodeId> = ids.iter().map(|&m| hierarchy.add_leaf(m)).collect();
    let root = hierarchy.add_internal("fig1_top", leaves, Some(ConstraintKind::Symmetry));
    hierarchy.set_root(root);

    (BenchmarkCircuit { name: "fig1".to_string(), netlist, hierarchy, constraints }, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_module_counts_match_the_paper() {
        let expected = [
            ("miller_v2", 13),
            ("comparator_v2", 10),
            ("folded_cascode", 22),
            ("buffer", 46),
            ("biasynth", 65),
            ("lnamixbias", 110),
        ];
        let circuits = table1_circuits();
        assert_eq!(circuits.len(), expected.len());
        for (c, (name, count)) in circuits.iter().zip(expected.iter()) {
            assert_eq!(c.name, *name);
            assert_eq!(c.module_count(), *count, "{name}");
        }
    }

    #[test]
    fn generated_circuits_are_internally_consistent() {
        for c in table1_circuits() {
            assert!(c.hierarchy.validate(&c.netlist).is_ok(), "{}", c.name);
            assert!(c.constraints.validate(&c.netlist).is_ok(), "{}", c.name);
            assert!(c.netlist.net_count() > 0, "{}", c.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate("x", table1_config(30, 42));
        let b = generate("x", table1_config(30, 42));
        assert_eq!(a.netlist, b.netlist);
        assert_eq!(a.hierarchy, b.hierarchy);
        assert_eq!(a.constraints, b.constraints);
    }

    #[test]
    fn different_seeds_give_different_circuits() {
        let a = generate("x", table1_config(30, 1));
        let b = generate("x", table1_config(30, 2));
        assert_ne!(a.netlist, b.netlist);
    }

    #[test]
    fn basic_module_sets_are_small() {
        for c in table1_circuits() {
            for (_, modules) in c.hierarchy.basic_module_sets() {
                assert!(
                    (1..=4).contains(&modules.len()),
                    "{}: basic module set of size {}",
                    c.name,
                    modules.len()
                );
            }
        }
    }

    #[test]
    fn miller_fig6_has_expected_structure() {
        let c = miller_opamp_fig6();
        assert_eq!(c.module_count(), 9);
        assert!(c.hierarchy.validate(&c.netlist).is_ok());
        assert!(c.constraints.validate(&c.netlist).is_ok());
        assert_eq!(c.constraints.symmetry_groups().len(), 1);
        assert_eq!(c.constraints.proximity_groups().len(), 1);
    }

    #[test]
    fn fig1_symmetry_group_matches_paper() {
        let (c, ids) = fig1_circuit();
        assert_eq!(c.module_count(), 7);
        let g = &c.constraints.symmetry_groups()[0];
        assert_eq!(g.pair_count(), 2);
        assert_eq!(g.self_symmetric_count(), 2);
        // C pairs with D
        assert_eq!(g.partner_of(ids[2]), Some(ids[3]));
        // E is unconstrained
        assert_eq!(g.partner_of(ids[4]), None);
    }

    #[test]
    fn matched_pairs_in_symmetric_sets_share_dimensions() {
        let c = generate("m", GeneratorConfig { module_count: 40, seed: 7, ..Default::default() });
        for g in c.constraints.symmetry_groups() {
            for &(l, r) in g.pairs() {
                assert_eq!(
                    c.netlist.module(l).dims(),
                    c.netlist.module(r).dims(),
                    "pair {l}/{r} in group {}",
                    g.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty circuit")]
    fn zero_modules_panics() {
        let _ = generate("bad", GeneratorConfig { module_count: 0, ..Default::default() });
    }

    #[test]
    fn every_listed_name_resolves() {
        for name in names() {
            let circuit = by_name(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert!(circuit.module_count() > 0, "{name}");
        }
        assert!(by_name("nonexistent").is_none());
    }
}
