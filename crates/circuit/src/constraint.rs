//! Analog layout constraints: symmetry, common-centroid and proximity groups.
//!
//! The DATE 2009 survey (Section III.A, Fig. 3) identifies three basic analog
//! layout constraints plus their hierarchical variants:
//!
//! * **symmetry** — groups of device pairs (and self-symmetric devices) that
//!   must be mirrored about a common axis so that layout-induced parasitics
//!   match in the two halves of a differential signal path;
//! * **common-centroid** — unit devices of a current mirror or differential
//!   pair arranged so that all devices share a common centroid, cancelling
//!   linear process gradients;
//! * **proximity** — devices of a sub-circuit that must form one connected
//!   cluster so they can share a well or guard ring.
//!
//! [`ConstraintSet`] bundles all constraints of a design and offers the
//! compliance checks used by the placement engines and the test-suite.

use crate::{ModuleId, Netlist, Placement};
use apls_geometry::Coord;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The role a module plays inside a symmetry group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SymmetryRole {
    /// Left element of a symmetric pair.
    PairLeft(ModuleId),
    /// Right element of a symmetric pair (the argument is the left partner).
    PairRight(ModuleId),
    /// A self-symmetric module centred on the axis.
    SelfSymmetric,
}

/// Which kind of constraint a group expresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintKind {
    /// Mirror symmetry about a vertical axis.
    Symmetry,
    /// Common-centroid device interleaving.
    CommonCentroid,
    /// Connected-cluster proximity.
    Proximity,
}

/// A symmetry group: pairs of symmetric modules and self-symmetric modules
/// sharing one vertical axis.
///
/// This is the `γ = { (C, D), (B, G), A, F }` structure of Fig. 1 in the
/// paper.
///
/// # Example
///
/// ```
/// use apls_circuit::{SymmetryGroup, ModuleId};
///
/// let c = ModuleId::from_index(2);
/// let d = ModuleId::from_index(3);
/// let a = ModuleId::from_index(0);
/// let group = SymmetryGroup::new("dp")
///     .with_pair(c, d)
///     .with_self_symmetric(a);
/// assert_eq!(group.pair_count(), 1);
/// assert_eq!(group.self_symmetric_count(), 1);
/// assert_eq!(group.partner_of(c), Some(d));
/// assert_eq!(group.partner_of(a), Some(a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymmetryGroup {
    name: String,
    pairs: Vec<(ModuleId, ModuleId)>,
    self_symmetric: Vec<ModuleId>,
}

impl SymmetryGroup {
    /// Creates an empty symmetry group.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        SymmetryGroup { name: name.into(), pairs: Vec::new(), self_symmetric: Vec::new() }
    }

    /// Adds a symmetric pair (builder style).
    #[must_use]
    pub fn with_pair(mut self, left: ModuleId, right: ModuleId) -> Self {
        self.pairs.push((left, right));
        self
    }

    /// Adds a self-symmetric module (builder style).
    #[must_use]
    pub fn with_self_symmetric(mut self, module: ModuleId) -> Self {
        self.self_symmetric.push(module);
        self
    }

    /// Group name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The symmetric pairs.
    #[must_use]
    pub fn pairs(&self) -> &[(ModuleId, ModuleId)] {
        &self.pairs
    }

    /// The self-symmetric modules.
    #[must_use]
    pub fn self_symmetric(&self) -> &[ModuleId] {
        &self.self_symmetric
    }

    /// Number of symmetric pairs (the `p_k` of the counting lemma).
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of self-symmetric modules (the `s_k` of the counting lemma).
    #[must_use]
    pub fn self_symmetric_count(&self) -> usize {
        self.self_symmetric.len()
    }

    /// All modules in the group, pairs first (left then right), then
    /// self-symmetric modules.
    #[must_use]
    pub fn members(&self) -> Vec<ModuleId> {
        let mut out = Vec::with_capacity(self.pairs.len() * 2 + self.self_symmetric.len());
        for &(l, r) in &self.pairs {
            out.push(l);
            out.push(r);
        }
        out.extend_from_slice(&self.self_symmetric);
        out
    }

    /// Returns `true` when the module belongs to this group.
    #[must_use]
    pub fn contains(&self, module: ModuleId) -> bool {
        self.partner_of(module).is_some()
    }

    /// The symmetric partner of a module: the other element of its pair, or
    /// the module itself when it is self-symmetric, or `None` when the module
    /// is not in the group. This is the `sym(x)` map of the paper.
    #[must_use]
    pub fn partner_of(&self, module: ModuleId) -> Option<ModuleId> {
        for &(l, r) in &self.pairs {
            if l == module {
                return Some(r);
            }
            if r == module {
                return Some(l);
            }
        }
        if self.self_symmetric.contains(&module) {
            return Some(module);
        }
        None
    }

    /// Maximum deviation from perfect mirror symmetry about the group's best
    /// vertical axis, in *doubled* database units (0 = exactly symmetric).
    ///
    /// Modules that have not been placed are ignored. The axis is estimated as
    /// the mean of the doubled midpoints implied by each pair / self-symmetric
    /// module; the error is the largest deviation from that axis plus any
    /// vertical-centre mismatch between pair partners.
    #[must_use]
    pub fn axis_error(&self, placement: &Placement) -> Coord {
        self.axis_error_with(|m| placement.get(m).map(|p| p.rect.center_x2()))
    }

    /// [`SymmetryGroup::axis_error`] over an arbitrary doubled-centre lookup
    /// (`None` = unplaced). Hot evaluators that keep coordinates in flat SoA
    /// arrays instead of a [`Placement`] feed their caches through this so
    /// the error — candidate order, f64 accumulation, final `ceil` — stays
    /// bit-identical to the placement-based path.
    #[must_use]
    pub fn axis_error_with(
        &self,
        mut center_x2_of: impl FnMut(ModuleId) -> Option<(Coord, Coord)>,
    ) -> Coord {
        let mut axis_candidates: Vec<f64> = Vec::new();
        for &(l, r) in &self.pairs {
            if let (Some((clx2, _)), Some((crx2, _))) = (center_x2_of(l), center_x2_of(r)) {
                axis_candidates.push((clx2 + crx2) as f64 / 2.0);
            }
        }
        for &m in &self.self_symmetric {
            if let Some((cx2, _)) = center_x2_of(m) {
                axis_candidates.push(cx2 as f64);
            }
        }
        if axis_candidates.is_empty() {
            return 0;
        }
        let axis: f64 = axis_candidates.iter().sum::<f64>() / axis_candidates.len() as f64;

        let mut error = 0.0f64;
        for &(l, r) in &self.pairs {
            if let (Some((clx2, cly2)), Some((crx2, cry2))) = (center_x2_of(l), center_x2_of(r)) {
                error = error.max(((clx2 + crx2) as f64 / 2.0 - axis).abs());
                error = error.max((cly2 - cry2).abs() as f64);
            }
        }
        for &m in &self.self_symmetric {
            if let Some((cx2, _)) = center_x2_of(m) {
                error = error.max((cx2 as f64 - axis).abs());
            }
        }
        error.ceil() as Coord
    }

    /// Returns `true` when the placement is exactly mirror-symmetric for this
    /// group.
    #[must_use]
    pub fn is_satisfied(&self, placement: &Placement) -> bool {
        self.axis_error(placement) == 0
    }
}

/// A common-centroid group: unit devices belonging to two matched devices A
/// and B that must share a common centroid (Fig. 3(a) of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommonCentroidGroup {
    name: String,
    units_a: Vec<ModuleId>,
    units_b: Vec<ModuleId>,
}

impl CommonCentroidGroup {
    /// Creates a common-centroid group from the unit devices of the two
    /// matched devices.
    #[must_use]
    pub fn new(name: impl Into<String>, units_a: Vec<ModuleId>, units_b: Vec<ModuleId>) -> Self {
        CommonCentroidGroup { name: name.into(), units_a, units_b }
    }

    /// Group name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unit devices of device A.
    #[must_use]
    pub fn units_a(&self) -> &[ModuleId] {
        &self.units_a
    }

    /// Unit devices of device B.
    #[must_use]
    pub fn units_b(&self) -> &[ModuleId] {
        &self.units_b
    }

    /// All unit devices in the group.
    #[must_use]
    pub fn members(&self) -> Vec<ModuleId> {
        let mut out = self.units_a.clone();
        out.extend_from_slice(&self.units_b);
        out
    }

    /// Distance between the centroids of the A units and the B units, in
    /// doubled database units (0 = common centroid achieved).
    ///
    /// Unplaced modules are ignored; a group with no placed units on either
    /// side reports 0.
    #[must_use]
    pub fn centroid_error(&self, placement: &Placement) -> Coord {
        fn centroid(ids: &[ModuleId], placement: &Placement) -> Option<(f64, f64)> {
            let mut sx = 0.0;
            let mut sy = 0.0;
            let mut n = 0usize;
            for &id in ids {
                if let Some(p) = placement.get(id) {
                    let (cx2, cy2) = p.rect.center_x2();
                    sx += cx2 as f64;
                    sy += cy2 as f64;
                    n += 1;
                }
            }
            if n == 0 {
                None
            } else {
                Some((sx / n as f64, sy / n as f64))
            }
        }
        match (centroid(&self.units_a, placement), centroid(&self.units_b, placement)) {
            (Some((ax, ay)), Some((bx, by))) => ((ax - bx).abs() + (ay - by).abs()).ceil() as Coord,
            _ => 0,
        }
    }

    /// Returns `true` when the two devices share an exact common centroid.
    #[must_use]
    pub fn is_satisfied(&self, placement: &Placement) -> bool {
        self.centroid_error(placement) == 0
    }
}

/// A proximity group: modules that must form one connected cluster so they can
/// share a well or guard ring (Fig. 3(c) of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProximityGroup {
    name: String,
    members: Vec<ModuleId>,
    max_gap: Coord,
}

impl ProximityGroup {
    /// Creates a proximity group with the default adjacency gap of 0 (modules
    /// must touch or abut to count as connected).
    #[must_use]
    pub fn new(name: impl Into<String>, members: Vec<ModuleId>) -> Self {
        ProximityGroup { name: name.into(), members, max_gap: 0 }
    }

    /// Sets the maximum gap (in dbu) below which two modules are considered
    /// adjacent (builder style).
    #[must_use]
    pub fn with_max_gap(mut self, max_gap: Coord) -> Self {
        self.max_gap = max_gap;
        self
    }

    /// Group name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Modules in the group.
    #[must_use]
    pub fn members(&self) -> &[ModuleId] {
        &self.members
    }

    /// Maximum adjacency gap.
    #[must_use]
    pub fn max_gap(&self) -> Coord {
        self.max_gap
    }

    /// Returns `true` when all placed members form one connected cluster under
    /// the group's adjacency gap.
    ///
    /// Two modules are adjacent when their rectangles, each inflated by half
    /// the gap, overlap or touch. Groups with fewer than two placed members
    /// are trivially connected.
    #[must_use]
    pub fn is_connected(&self, placement: &Placement) -> bool {
        let rects: Vec<_> =
            self.members.iter().filter_map(|&m| placement.get(m).map(|p| p.rect)).collect();
        if rects.len() < 2 {
            return true;
        }
        let gap = self.max_gap;
        let adjacent = |a: &apls_geometry::Rect, b: &apls_geometry::Rect| -> bool {
            // Inflate `a` by gap + 1 so that touching (or within-gap) rectangles
            // register as overlapping.
            let inflated = apls_geometry::Rect::new(
                a.x_min - gap - 1,
                a.y_min - gap - 1,
                a.x_max + gap + 1,
                a.y_max + gap + 1,
            );
            inflated.overlaps(b)
        };
        let mut visited = vec![false; rects.len()];
        let mut queue = VecDeque::new();
        queue.push_back(0usize);
        visited[0] = true;
        let mut seen = 1usize;
        while let Some(i) = queue.pop_front() {
            for j in 0..rects.len() {
                if !visited[j] && adjacent(&rects[i], &rects[j]) {
                    visited[j] = true;
                    seen += 1;
                    queue.push_back(j);
                }
            }
        }
        seen == rects.len()
    }

    /// Spread overhead of the group: bounding-box area of the members divided
    /// by their total module area. Lower is tighter; 1.0 is a perfect packing.
    #[must_use]
    pub fn spread(&self, placement: &Placement) -> f64 {
        let rects: Vec<_> =
            self.members.iter().filter_map(|&m| placement.get(m).map(|p| p.rect)).collect();
        if rects.is_empty() {
            return 1.0;
        }
        let bb: apls_geometry::BoundingBox = rects.iter().copied().collect();
        let total: i128 = rects.iter().map(apls_geometry::Rect::area).sum();
        if total == 0 {
            1.0
        } else {
            bb.area() as f64 / total as f64
        }
    }
}

/// The full set of layout constraints attached to a netlist.
///
/// # Example
///
/// ```
/// use apls_circuit::{ConstraintSet, SymmetryGroup, ModuleId};
///
/// let mut cs = ConstraintSet::new();
/// cs.add_symmetry_group(
///     SymmetryGroup::new("dp").with_pair(ModuleId::from_index(0), ModuleId::from_index(1)),
/// );
/// assert_eq!(cs.symmetry_groups().len(), 1);
/// assert!(cs.symmetry_group_of(ModuleId::from_index(0)).is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstraintSet {
    symmetry: Vec<SymmetryGroup>,
    common_centroid: Vec<CommonCentroidGroup>,
    proximity: Vec<ProximityGroup>,
}

impl ConstraintSet {
    /// Creates an empty constraint set.
    #[must_use]
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Adds a symmetry group.
    pub fn add_symmetry_group(&mut self, group: SymmetryGroup) {
        self.symmetry.push(group);
    }

    /// Adds a common-centroid group.
    pub fn add_common_centroid_group(&mut self, group: CommonCentroidGroup) {
        self.common_centroid.push(group);
    }

    /// Adds a proximity group.
    pub fn add_proximity_group(&mut self, group: ProximityGroup) {
        self.proximity.push(group);
    }

    /// All symmetry groups.
    #[must_use]
    pub fn symmetry_groups(&self) -> &[SymmetryGroup] {
        &self.symmetry
    }

    /// All common-centroid groups.
    #[must_use]
    pub fn common_centroid_groups(&self) -> &[CommonCentroidGroup] {
        &self.common_centroid
    }

    /// All proximity groups.
    #[must_use]
    pub fn proximity_groups(&self) -> &[ProximityGroup] {
        &self.proximity
    }

    /// Returns `true` when no constraints are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symmetry.is_empty() && self.common_centroid.is_empty() && self.proximity.is_empty()
    }

    /// The symmetry group containing a module, if any.
    #[must_use]
    pub fn symmetry_group_of(&self, module: ModuleId) -> Option<&SymmetryGroup> {
        self.symmetry.iter().find(|g| g.contains(module))
    }

    /// All constraint kinds that mention a module.
    #[must_use]
    pub fn kinds_for(&self, module: ModuleId) -> BTreeSet<ConstraintKind> {
        let mut kinds = BTreeSet::new();
        if self.symmetry.iter().any(|g| g.contains(module)) {
            kinds.insert(ConstraintKind::Symmetry);
        }
        if self.common_centroid.iter().any(|g| g.members().contains(&module)) {
            kinds.insert(ConstraintKind::CommonCentroid);
        }
        if self.proximity.iter().any(|g| g.members().contains(&module)) {
            kinds.insert(ConstraintKind::Proximity);
        }
        kinds
    }

    /// Validates the constraint set against a netlist.
    ///
    /// # Errors
    ///
    /// Returns a list of human-readable problems: references to modules that
    /// do not exist, modules appearing in more than one symmetry group, and
    /// modules paired with themselves.
    pub fn validate(&self, netlist: &Netlist) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        let module_count = netlist.module_count();
        let check_id = |id: ModuleId, ctx: &str, problems: &mut Vec<String>| {
            if id.index() >= module_count {
                problems.push(format!("{ctx}: module {id} does not exist in netlist"));
            }
        };

        let mut symmetry_membership: BTreeMap<ModuleId, usize> = BTreeMap::new();
        for (gi, g) in self.symmetry.iter().enumerate() {
            for &(l, r) in g.pairs() {
                check_id(l, g.name(), &mut problems);
                check_id(r, g.name(), &mut problems);
                if l == r {
                    problems.push(format!(
                        "symmetry group '{}' pairs module {l} with itself; use a self-symmetric entry instead",
                        g.name()
                    ));
                }
            }
            for &m in g.self_symmetric() {
                check_id(m, g.name(), &mut problems);
            }
            for m in g.members() {
                if let Some(prev) = symmetry_membership.insert(m, gi) {
                    if prev != gi {
                        problems.push(format!(
                            "module {m} appears in more than one symmetry group ('{}' and '{}')",
                            self.symmetry[prev].name(),
                            g.name()
                        ));
                    } else {
                        problems.push(format!(
                            "module {m} appears more than once in symmetry group '{}'",
                            g.name()
                        ));
                    }
                }
            }
        }
        for g in &self.common_centroid {
            for m in g.members() {
                check_id(m, g.name(), &mut problems);
            }
        }
        for g in &self.proximity {
            for &m in g.members() {
                check_id(m, g.name(), &mut problems);
            }
        }

        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

impl PartialOrd for ConstraintKind {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ConstraintKind {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(k: &ConstraintKind) -> u8 {
            match k {
                ConstraintKind::Symmetry => 0,
                ConstraintKind::CommonCentroid => 1,
                ConstraintKind::Proximity => 2,
            }
        }
        rank(self).cmp(&rank(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Module, Netlist};
    use apls_geometry::{Dims, Orientation, Rect};

    fn netlist(n: usize) -> Netlist {
        let mut nl = Netlist::new("t");
        for i in 0..n {
            nl.add_module(Module::new(format!("M{i}"), Dims::new(10, 10)));
        }
        nl
    }

    fn id(i: usize) -> ModuleId {
        ModuleId::from_index(i)
    }

    #[test]
    fn partner_lookup() {
        let g = SymmetryGroup::new("g").with_pair(id(0), id(1)).with_self_symmetric(id(2));
        assert_eq!(g.partner_of(id(0)), Some(id(1)));
        assert_eq!(g.partner_of(id(1)), Some(id(0)));
        assert_eq!(g.partner_of(id(2)), Some(id(2)));
        assert_eq!(g.partner_of(id(3)), None);
        assert_eq!(g.members(), vec![id(0), id(1), id(2)]);
    }

    #[test]
    fn symmetric_placement_has_zero_axis_error() {
        let nl = netlist(3);
        let g = SymmetryGroup::new("g").with_pair(id(0), id(1)).with_self_symmetric(id(2));
        let mut p = Placement::new(&nl);
        // axis at x = 20
        p.place(id(0), Rect::new(0, 0, 10, 10), Orientation::R0, 0);
        p.place(id(1), Rect::new(30, 0, 40, 10), Orientation::MY, 0);
        p.place(id(2), Rect::new(15, 10, 25, 20), Orientation::R0, 0);
        assert_eq!(g.axis_error(&p), 0);
        assert!(g.is_satisfied(&p));
    }

    #[test]
    fn asymmetric_placement_has_positive_axis_error() {
        let nl = netlist(2);
        let g = SymmetryGroup::new("g").with_pair(id(0), id(1));
        let mut p = Placement::new(&nl);
        p.place(id(0), Rect::new(0, 0, 10, 10), Orientation::R0, 0);
        // vertical centres differ -> error
        p.place(id(1), Rect::new(30, 5, 40, 15), Orientation::R0, 0);
        assert!(g.axis_error(&p) > 0);
        assert!(!g.is_satisfied(&p));
    }

    #[test]
    fn common_centroid_interdigitated_pattern_is_satisfied() {
        // A B / B A pattern: centroids coincide.
        let nl = netlist(4);
        let g = CommonCentroidGroup::new("cm", vec![id(0), id(3)], vec![id(1), id(2)]);
        let mut p = Placement::new(&nl);
        p.place(id(0), Rect::new(0, 0, 10, 10), Orientation::R0, 0); // A
        p.place(id(1), Rect::new(10, 0, 20, 10), Orientation::R0, 0); // B
        p.place(id(2), Rect::new(0, 10, 10, 20), Orientation::R0, 0); // B
        p.place(id(3), Rect::new(10, 10, 20, 20), Orientation::R0, 0); // A
        assert_eq!(g.centroid_error(&p), 0);
        assert!(g.is_satisfied(&p));
    }

    #[test]
    fn side_by_side_pattern_violates_common_centroid() {
        let nl = netlist(2);
        let g = CommonCentroidGroup::new("cm", vec![id(0)], vec![id(1)]);
        let mut p = Placement::new(&nl);
        p.place(id(0), Rect::new(0, 0, 10, 10), Orientation::R0, 0);
        p.place(id(1), Rect::new(10, 0, 20, 10), Orientation::R0, 0);
        assert!(g.centroid_error(&p) > 0);
    }

    #[test]
    fn proximity_connectivity() {
        let nl = netlist(3);
        let g = ProximityGroup::new("prox", vec![id(0), id(1), id(2)]);
        let mut p = Placement::new(&nl);
        p.place(id(0), Rect::new(0, 0, 10, 10), Orientation::R0, 0);
        p.place(id(1), Rect::new(10, 0, 20, 10), Orientation::R0, 0);
        p.place(id(2), Rect::new(0, 10, 10, 20), Orientation::R0, 0);
        assert!(g.is_connected(&p));
        // move one module far away -> disconnected
        p.place(id(2), Rect::new(100, 100, 110, 110), Orientation::R0, 0);
        assert!(!g.is_connected(&p));
        // with a big allowed gap it is connected again
        let loose = ProximityGroup::new("prox", vec![id(0), id(1), id(2)]).with_max_gap(200);
        assert!(loose.is_connected(&p));
    }

    #[test]
    fn proximity_spread_of_tight_cluster_is_low() {
        let nl = netlist(2);
        let g = ProximityGroup::new("prox", vec![id(0), id(1)]);
        let mut p = Placement::new(&nl);
        p.place(id(0), Rect::new(0, 0, 10, 10), Orientation::R0, 0);
        p.place(id(1), Rect::new(10, 0, 20, 10), Orientation::R0, 0);
        assert!((g.spread(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constraint_set_queries() {
        let mut cs = ConstraintSet::new();
        cs.add_symmetry_group(SymmetryGroup::new("s").with_pair(id(0), id(1)));
        cs.add_common_centroid_group(CommonCentroidGroup::new("c", vec![id(2)], vec![id(3)]));
        cs.add_proximity_group(ProximityGroup::new("p", vec![id(0), id(2)]));
        assert!(!cs.is_empty());
        assert!(cs.symmetry_group_of(id(1)).is_some());
        assert!(cs.symmetry_group_of(id(2)).is_none());
        let kinds = cs.kinds_for(id(0));
        assert!(kinds.contains(&ConstraintKind::Symmetry));
        assert!(kinds.contains(&ConstraintKind::Proximity));
        assert!(!kinds.contains(&ConstraintKind::CommonCentroid));
    }

    #[test]
    fn validation_catches_problems() {
        let nl = netlist(2);
        let mut cs = ConstraintSet::new();
        cs.add_symmetry_group(SymmetryGroup::new("bad").with_pair(id(0), id(0)));
        cs.add_symmetry_group(SymmetryGroup::new("dangling").with_self_symmetric(id(9)));
        cs.add_symmetry_group(SymmetryGroup::new("dup").with_self_symmetric(id(0)));
        let errs = cs.validate(&nl).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("pairs module m0 with itself")));
        assert!(errs.iter().any(|e| e.contains("does not exist")));
        assert!(errs.iter().any(|e| e.contains("more than one symmetry group")));
    }

    #[test]
    fn validation_accepts_clean_set() {
        let nl = netlist(4);
        let mut cs = ConstraintSet::new();
        cs.add_symmetry_group(SymmetryGroup::new("s").with_pair(id(0), id(1)));
        cs.add_proximity_group(ProximityGroup::new("p", vec![id(2), id(3)]));
        assert!(cs.validate(&nl).is_ok());
    }
}
