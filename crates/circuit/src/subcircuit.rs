//! Sub-circuit extraction: a netlist and its constraints restricted to a
//! module subset.
//!
//! The hierarchical placement pipeline solves one hierarchy node at a time,
//! and the annealing sub-solvers need a self-contained problem for the node's
//! modules: the nets among them and the symmetry / common-centroid / proximity
//! constraints they inherit from the full design. [`SubCircuit::restrict`]
//! builds exactly that, with dense local module ids and a recorded mapping
//! back to the parent netlist.

use crate::{
    CommonCentroidGroup, ConstraintSet, ModuleId, Net, Netlist, ProximityGroup, SymmetryGroup,
};

/// A netlist plus constraints restricted to a module subset, with the mapping
/// back to the parent netlist's module ids.
///
/// # Example
///
/// ```
/// use apls_circuit::benchmarks::miller_opamp_fig6;
/// use apls_circuit::{ModuleId, SubCircuit};
///
/// let circuit = miller_opamp_fig6();
/// // the differential pair and its current-mirror load
/// let core: Vec<ModuleId> = (0..4).map(ModuleId::from_index).collect();
/// let sub = SubCircuit::restrict(&circuit.netlist, &circuit.constraints, &core);
/// assert_eq!(sub.netlist.module_count(), 4);
/// // the symmetry pairs (P1, P2) and (N3, N4) are inherited
/// assert_eq!(sub.constraints.symmetry_groups()[0].pair_count(), 2);
/// assert!(sub.constraints.validate(&sub.netlist).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct SubCircuit {
    /// The restricted netlist; module ids are dense local indices in the
    /// order of the subset handed to [`SubCircuit::restrict`].
    pub netlist: Netlist,
    /// The inherited constraints, rewritten to local module ids.
    pub constraints: ConstraintSet,
    to_global: Vec<ModuleId>,
}

impl SubCircuit {
    /// Restricts `netlist` and `constraints` to `modules`.
    ///
    /// * modules are copied in subset order, so local id `i` is `modules[i]`;
    /// * nets keep their name and weight but only the pins inside the subset,
    ///   and nets left with fewer than two pins are dropped;
    /// * symmetry groups inherit the pairs whose *both* partners are in the
    ///   subset plus the self-symmetric members in the subset (a pair with one
    ///   partner outside the subset cannot be mirrored locally);
    /// * common-centroid groups are inherited when both devices keep at least
    ///   one unit; proximity groups when at least two members remain.
    ///
    /// # Panics
    ///
    /// Panics if `modules` is empty, contains duplicates, or references a
    /// module that does not exist in `netlist`.
    #[must_use]
    pub fn restrict(
        netlist: &Netlist,
        constraints: &ConstraintSet,
        modules: &[ModuleId],
    ) -> SubCircuit {
        assert!(!modules.is_empty(), "cannot restrict a netlist to an empty module subset");
        let mut to_local: Vec<Option<ModuleId>> = vec![None; netlist.module_count()];
        let mut sub = Netlist::new(format!("{}::subset", netlist.name()));
        for (local, &global) in modules.iter().enumerate() {
            assert!(
                global.index() < netlist.module_count(),
                "subset module {global} does not exist in netlist"
            );
            assert!(
                to_local[global.index()].is_none(),
                "subset module {global} appears more than once"
            );
            to_local[global.index()] = Some(ModuleId::from_index(local));
            let added = sub.add_module(netlist.module(global).clone());
            debug_assert_eq!(added.index(), local);
        }
        let local = |m: ModuleId| -> Option<ModuleId> { to_local[m.index()] };

        for (_, net) in netlist.nets() {
            let pins: Vec<ModuleId> = net.pins().iter().filter_map(|&p| local(p)).collect();
            if pins.len() >= 2 {
                sub.add_weighted_net(Net::new(net.name(), pins).with_weight(net.weight()));
            }
        }

        let mut sub_constraints = ConstraintSet::new();
        for group in constraints.symmetry_groups() {
            let mut inherited = SymmetryGroup::new(group.name());
            let mut non_empty = false;
            for &(l, r) in group.pairs() {
                if let (Some(ll), Some(lr)) = (local(l), local(r)) {
                    inherited = inherited.with_pair(ll, lr);
                    non_empty = true;
                }
            }
            for &s in group.self_symmetric() {
                if let Some(ls) = local(s) {
                    inherited = inherited.with_self_symmetric(ls);
                    non_empty = true;
                }
            }
            if non_empty {
                sub_constraints.add_symmetry_group(inherited);
            }
        }
        for group in constraints.common_centroid_groups() {
            let units_a: Vec<ModuleId> = group.units_a().iter().filter_map(|&m| local(m)).collect();
            let units_b: Vec<ModuleId> = group.units_b().iter().filter_map(|&m| local(m)).collect();
            if !units_a.is_empty() && !units_b.is_empty() {
                sub_constraints.add_common_centroid_group(CommonCentroidGroup::new(
                    group.name(),
                    units_a,
                    units_b,
                ));
            }
        }
        for group in constraints.proximity_groups() {
            let members: Vec<ModuleId> = group.members().iter().filter_map(|&m| local(m)).collect();
            if members.len() >= 2 {
                sub_constraints.add_proximity_group(
                    ProximityGroup::new(group.name(), members).with_max_gap(group.max_gap()),
                );
            }
        }

        SubCircuit { netlist: sub, constraints: sub_constraints, to_global: modules.to_vec() }
    }

    /// The global module id behind a local one.
    ///
    /// # Panics
    ///
    /// Panics if the local id does not belong to this sub-circuit.
    #[must_use]
    pub fn to_global(&self, local: ModuleId) -> ModuleId {
        self.to_global[local.index()]
    }

    /// The full local-to-global mapping, indexed by local module id.
    #[must_use]
    pub fn globals(&self) -> &[ModuleId] {
        &self.to_global
    }

    /// Number of modules in the subset.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.to_global.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::miller_opamp_fig6;
    use crate::Module;
    use apls_geometry::Dims;

    fn id(i: usize) -> ModuleId {
        ModuleId::from_index(i)
    }

    #[test]
    fn restriction_keeps_modules_in_subset_order() {
        let circuit = miller_opamp_fig6();
        let subset = [id(4), id(2), id(7)];
        let sub = SubCircuit::restrict(&circuit.netlist, &circuit.constraints, &subset);
        assert_eq!(sub.module_count(), 3);
        for (local, &global) in subset.iter().enumerate() {
            assert_eq!(sub.to_global(id(local)), global);
            assert_eq!(sub.netlist.module(id(local)).name(), circuit.netlist.module(global).name());
            assert_eq!(sub.netlist.module(id(local)).dims(), circuit.netlist.module(global).dims());
        }
    }

    #[test]
    fn nets_are_filtered_and_reweighted() {
        let circuit = miller_opamp_fig6();
        // P2, N4, N8, C carry the 4-pin "diff_out" net (weight 2.0)
        let sub = SubCircuit::restrict(
            &circuit.netlist,
            &circuit.constraints,
            &[id(1), id(3), id(7), id(8)],
        );
        let diff_out = sub
            .netlist
            .nets()
            .find(|(_, n)| n.name() == "diff_out")
            .map(|(_, n)| n)
            .expect("diff_out survives");
        assert_eq!(diff_out.pins().len(), 4);
        assert_eq!(diff_out.weight(), 2.0);
        // single-pin leftovers are dropped
        assert!(sub.netlist.nets().all(|(_, n)| n.pins().len() >= 2));
    }

    #[test]
    fn symmetry_pairs_with_one_partner_outside_are_dropped() {
        let circuit = miller_opamp_fig6();
        // P1 without P2: the (P1, P2) pair cannot be inherited, but (N3, N4) can
        let sub =
            SubCircuit::restrict(&circuit.netlist, &circuit.constraints, &[id(0), id(2), id(3)]);
        let groups = sub.constraints.symmetry_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].pair_count(), 1);
        assert_eq!(groups[0].partner_of(id(1)), Some(id(2))); // local N3 <-> N4
        assert!(sub.constraints.validate(&sub.netlist).is_ok());
    }

    #[test]
    fn common_centroid_and_proximity_are_inherited() {
        let circuit = miller_opamp_fig6();
        let sub = SubCircuit::restrict(
            &circuit.netlist,
            &circuit.constraints,
            &[id(2), id(3), id(4), id(5), id(6)],
        );
        assert_eq!(sub.constraints.common_centroid_groups().len(), 1);
        assert_eq!(sub.constraints.proximity_groups().len(), 1);
        assert_eq!(sub.constraints.proximity_groups()[0].members().len(), 3);
        assert_eq!(sub.constraints.proximity_groups()[0].max_gap(), 10);
    }

    #[test]
    fn groups_that_lose_all_members_disappear() {
        let circuit = miller_opamp_fig6();
        let sub = SubCircuit::restrict(&circuit.netlist, &circuit.constraints, &[id(7), id(8)]);
        assert!(sub.constraints.is_empty());
    }

    #[test]
    #[should_panic(expected = "more than once")]
    fn duplicate_subset_modules_panic() {
        let mut nl = Netlist::new("t");
        nl.add_module(Module::new("A", Dims::new(10, 10)));
        let _ = SubCircuit::restrict(&nl, &ConstraintSet::new(), &[id(0), id(0)]);
    }

    #[test]
    #[should_panic(expected = "empty module subset")]
    fn empty_subset_panics() {
        let nl = Netlist::new("t");
        let _ = SubCircuit::restrict(&nl, &ConstraintSet::new(), &[]);
    }
}
