//! Circuit substrate for analog layout synthesis.
//!
//! This crate models everything the placement engines need to know about the
//! circuit being laid out:
//!
//! * [`Module`] / [`ModuleId`] — the rectangular devices or device groups to be
//!   placed, possibly with several discrete shape variants;
//! * [`Net`] / [`Netlist`] — connectivity for wirelength estimation;
//! * [`Placement`] — a full assignment of positions and orientations together
//!   with quality metrics (area usage, HPWL, overlap, symmetry error);
//! * [`constraint`] — the analog layout constraints of the DATE 2009 survey:
//!   symmetry groups, common-centroid groups, proximity groups, and their
//!   hierarchical variants;
//! * [`hierarchy`] — layout design hierarchy trees whose leaves are modules and
//!   whose internal nodes are sub-circuits / basic module sets;
//! * [`benchmarks`] — seeded synthetic benchmark circuits whose module counts
//!   match Table I of the paper (`miller_v2`, `comparator_v2`,
//!   `folded_cascode`, `buffer`, `biasynth`, `lnamixbias`).
//!
//! # Example
//!
//! ```
//! use apls_circuit::{Netlist, Module};
//! use apls_geometry::Dims;
//!
//! let mut netlist = Netlist::new("two_transistors");
//! let m1 = netlist.add_module(Module::new("M1", Dims::new(40, 20)));
//! let m2 = netlist.add_module(Module::new("M2", Dims::new(40, 20)));
//! netlist.add_net("drain", [m1, m2]);
//! assert_eq!(netlist.module_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
pub mod benchmarks;
pub mod constraint;
mod delta;
pub mod hierarchy;
mod module;
mod net;
mod netlist;
mod placement;
mod subcircuit;

pub use adjacency::NetAdjacency;
pub use constraint::{
    CommonCentroidGroup, ConstraintKind, ConstraintSet, ProximityGroup, SymmetryGroup, SymmetryRole,
};
pub use delta::DeltaCost;
pub use hierarchy::{HierarchyNode, HierarchyNodeId, HierarchyTree};
pub use module::{Module, ModuleId, ShapeVariant};
pub use net::{Net, NetId};
pub use netlist::Netlist;
pub use placement::{PlacedModule, Placement, PlacementMetrics};
pub use subcircuit::SubCircuit;
