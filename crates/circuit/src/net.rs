//! Nets connecting modules.

use crate::ModuleId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier of a net inside a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The dense index backing this id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A net: a named set of module pins with a wirelength weight.
///
/// Pins are modelled at module granularity (the pin sits at the module
/// centre), which is the standard abstraction for device-level placement
/// wirelength estimation.
///
/// # Example
///
/// ```
/// use apls_circuit::{Net, ModuleId};
///
/// let net = Net::new("vout", vec![ModuleId::from_index(0), ModuleId::from_index(3)])
///     .with_weight(2.0);
/// assert_eq!(net.pins().len(), 2);
/// assert_eq!(net.weight(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    name: String,
    pins: Vec<ModuleId>,
    weight: f64,
}

impl Net {
    /// Creates a net over the given modules with weight 1.
    #[must_use]
    pub fn new(name: impl Into<String>, pins: Vec<ModuleId>) -> Self {
        Net { name: name.into(), pins, weight: 1.0 }
    }

    /// Sets the wirelength weight (builder style).
    ///
    /// Critical nets (e.g. the differential signal path) are typically
    /// weighted higher so the placer keeps them short.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Net name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Modules connected by this net.
    #[must_use]
    pub fn pins(&self) -> &[ModuleId] {
        &self.pins
    }

    /// Wirelength weight.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_defaults_to_unit_weight() {
        let n = Net::new("x", vec![ModuleId::from_index(1)]);
        assert_eq!(n.weight(), 1.0);
        assert_eq!(n.name(), "x");
    }

    #[test]
    fn weight_builder() {
        let n = Net::new("x", vec![]).with_weight(3.5);
        assert_eq!(n.weight(), 3.5);
    }
}
