//! Property-based equivalence of the incremental wirelength evaluator.
//!
//! [`DeltaCost`] promises bit-identity with the from-scratch sweep of
//! [`Placement::wirelength_with`] — not approximate agreement — because the
//! annealing hot paths compare its totals against costs produced by the
//! non-incremental evaluators. These tests drive the evaluator with arbitrary
//! accepted/rejected move sequences over **all seven bundled benchmark
//! circuits** and assert exact equality (`==` on `f64`, no epsilon) against a
//! shadow placement that is re-swept from scratch at every step.

use apls_circuit::{benchmarks, DeltaCost, ModuleId, Placement};
use apls_geometry::{Orientation, Rect};
use proptest::prelude::*;

/// One scripted proposal: place `module` (selected modulo the circuit's
/// module count) at an absolute position, then accept or reject it.
#[derive(Debug, Clone)]
struct ScriptedMove {
    module: usize,
    x: i64,
    y: i64,
    accept: bool,
}

fn arb_script() -> impl Strategy<Value = Vec<ScriptedMove>> {
    proptest::collection::vec(
        (0usize..1024, 0i64..5000, 0i64..5000, 0u8..2)
            .prop_map(|(module, x, y, accept)| ScriptedMove { module, x, y, accept: accept == 1 }),
        1..40,
    )
}

proptest! {
    /// After any sequence of accepted and rejected moves, `delta_hpwl` equals
    /// the full sweep of the proposed geometry, and an `undo` restores the
    /// committed total exactly — on every bundled circuit. Circuits start
    /// unplaced, so early moves also exercise the `resolved < 2` net paths.
    #[test]
    fn delta_hpwl_matches_full_sweep_after_any_move_sequence(script in arb_script()) {
        for name in benchmarks::names() {
            let circuit = benchmarks::by_name(name).expect("bundled name resolves");
            let netlist = &circuit.netlist;
            let adjacency = netlist.adjacency();
            let dims = netlist.default_dims();

            let mut placement = Placement::new(netlist);
            let mut delta = DeltaCost::new(adjacency.clone(), netlist.module_count());
            delta.begin();
            let mut committed = delta.refresh_all(|m| placement.get(m).map(|pm| pm.rect));
            delta.commit();
            prop_assert_eq!(committed, placement.wirelength_with(&adjacency), "{}", name);

            for mv in &script {
                let m = ModuleId::from_index(mv.module % netlist.module_count());
                let d = dims[m.index()];
                let rect = Rect::new(mv.x, mv.y, mv.x + d.w, mv.y + d.h);

                // Incremental proposal: only the moved module is fed in.
                delta.begin();
                let proposed = delta.delta_hpwl(&[m], |q| {
                    if q == m { Some(rect) } else { placement.get(q).map(|pm| pm.rect) }
                });

                // Reference: a from-scratch sweep of the proposed geometry.
                let mut shadow = placement.clone();
                shadow.place(m, rect, Orientation::R0, 0);
                prop_assert_eq!(proposed, shadow.wirelength_with(&adjacency), "{}", name);

                if mv.accept {
                    delta.commit();
                    placement = shadow;
                    committed = proposed;
                } else {
                    delta.undo();
                    prop_assert_eq!(delta.total(), committed, "{}", name);
                }
            }

            // The final caches describe exactly the accepted geometry.
            delta.begin();
            let refreshed = delta.refresh_all(|m| placement.get(m).map(|pm| pm.rect));
            prop_assert_eq!(refreshed, committed, "{}", name);
            prop_assert_eq!(refreshed, placement.wirelength_with(&adjacency), "{}", name);
        }
    }

    /// Unplacing modules mid-sequence (rect `None`) keeps the caches exact:
    /// the evaluator must agree with a full sweep when pins drop below two.
    #[test]
    fn delta_stays_exact_under_unplace_and_replace(script in arb_script()) {
        for name in benchmarks::names() {
            let circuit = benchmarks::by_name(name).expect("bundled name resolves");
            let netlist = &circuit.netlist;
            let adjacency = netlist.adjacency();
            let dims = netlist.default_dims();

            // Start fully placed on a diagonal so unplacing has visible effect.
            let mut placement = Placement::new(netlist);
            for (i, m) in netlist.module_ids().enumerate() {
                let d = dims[i];
                let x = 100 * i as i64;
                placement.place(m, Rect::new(x, x, x + d.w, x + d.h), Orientation::R0, 0);
            }
            let mut delta = DeltaCost::new(adjacency.clone(), netlist.module_count());
            delta.begin();
            delta.refresh_all(|m| placement.get(m).map(|pm| pm.rect));
            delta.commit();

            let mut rects: Vec<Option<Rect>> =
                netlist.module_ids().map(|m| placement.get(m).map(|pm| pm.rect)).collect();
            for (step, mv) in script.iter().enumerate() {
                let m = ModuleId::from_index(mv.module % netlist.module_count());
                // Alternate unplace / replace so both transitions are hit.
                let next = if step % 2 == 0 {
                    None
                } else {
                    let d = dims[m.index()];
                    Some(Rect::new(mv.x, mv.y, mv.x + d.w, mv.y + d.h))
                };
                delta.begin();
                let total = delta.delta_hpwl(&[m], |q| {
                    if q == m { next } else { rects[q.index()] }
                });
                let mut shadow = Placement::new(netlist);
                for (i, q) in netlist.module_ids().enumerate() {
                    let r = if q == m { next } else { rects[i] };
                    if let Some(r) = r {
                        shadow.place(q, r, Orientation::R0, 0);
                    }
                }
                prop_assert_eq!(total, shadow.wirelength_with(&adjacency), "{}", name);
                if mv.accept {
                    delta.commit();
                    rects[m.index()] = next;
                } else {
                    delta.undo();
                }
            }
        }
    }
}
