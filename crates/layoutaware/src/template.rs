//! Procedural layout template for the folded-cascode amplifier.
//!
//! The template plays the role of the Cadence PCELL/SKILL templates of
//! reference [4]: given a sizing it *procedurally* produces a full placement —
//! device blocks in fixed relative positions, mirrored about the differential
//! axis — plus the routed wire lengths the extractor needs. Template
//! generation is cheap (microseconds here, "a few seconds" in the paper),
//! which is what makes it usable inside the sizing loop.

use crate::model::{AmplifierSizing, MosDevice, Technology};
use apls_geometry::{Coord, Dims, Rect};
use serde::{Deserialize, Serialize};

/// Database units per µm used by the template (1 dbu = 1 nm).
pub const DBU_PER_UM: f64 = 1000.0;

/// One placed block of the template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateBlock {
    /// Block name (e.g. `"input_pair"`, `"cascode_left"`).
    pub name: String,
    /// Placed rectangle in dbu.
    pub rect: Rect,
}

/// The generated layout: blocks, outline and routed net lengths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateLayout {
    /// All placed blocks.
    pub blocks: Vec<TemplateBlock>,
    /// Chip outline in dbu.
    pub outline: Dims,
    /// Estimated routed length of the output nets in µm.
    pub output_wire_um: f64,
    /// Estimated routed length of the internal cascode nets in µm.
    pub cascode_wire_um: f64,
}

impl TemplateLayout {
    /// Outline width in µm.
    #[must_use]
    pub fn width_um(&self) -> f64 {
        self.outline.w as f64 / DBU_PER_UM
    }

    /// Outline height in µm.
    #[must_use]
    pub fn height_um(&self) -> f64 {
        self.outline.h as f64 / DBU_PER_UM
    }

    /// Outline area in µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.width_um() * self.height_um()
    }

    /// Aspect ratio (max extent / min extent, ≥ 1).
    #[must_use]
    pub fn aspect_ratio(&self) -> f64 {
        let w = self.width_um();
        let h = self.height_um();
        if w == 0.0 || h == 0.0 {
            return f64::INFINITY;
        }
        (w / h).max(h / w)
    }
}

fn block_dims(device: &MosDevice, tech: &Technology) -> Dims {
    let (w_um, h_um) = device.footprint_um(tech);
    Dims::new((w_um * DBU_PER_UM).round() as Coord, (h_um * DBU_PER_UM).round() as Coord)
}

/// Generates the folded-cascode template for a sizing.
///
/// Floorplan (mirror-symmetric about the vertical centre line):
///
/// ```text
/// +--------------------------------------+
/// |   bias_left        |      bias_right |   (PMOS bias row)
/// |--------------------+-----------------|
/// |           input pair (CC block)      |   (common-centroid pair)
/// |--------------------+-----------------|
/// | cascode_left       |   cascode_right |
/// | mirror_left        |   mirror_right  |
/// +--------------------------------------+
/// ```
#[must_use]
pub fn generate(tech: &Technology, sizing: &AmplifierSizing) -> TemplateLayout {
    let pair = block_dims(&sizing.input_pair, tech);
    let cascode = block_dims(&sizing.cascode, tech);
    let mirror = block_dims(&sizing.mirror, tech);
    let bias = block_dims(&sizing.bias, tech);
    let spacing: Coord = (2.0 * DBU_PER_UM) as Coord; // 2 µm routing channel

    // the differential pair is laid out as one common-centroid block of the
    // two devices side by side
    let pair_block = Dims::new(2 * pair.w + spacing, pair.h);

    // left/right half stacks: mirror under cascode
    let half_stack_w = cascode.w.max(mirror.w);
    let half_stack_h = cascode.h + spacing + mirror.h;

    // bias row: two bias devices side by side
    let bias_row_w = 2 * bias.w + spacing;
    let bias_row_h = bias.h;

    let core_w = (2 * half_stack_w + spacing).max(pair_block.w).max(bias_row_w);
    let total_h = bias_row_h + spacing + pair_block.h + spacing + half_stack_h;
    let outline = Dims::new(core_w, total_h);
    let center_x = core_w / 2;

    let mut blocks = Vec::new();
    // bias row at the top
    let bias_y = total_h - bias_row_h;
    blocks.push(TemplateBlock {
        name: "bias_left".to_string(),
        rect: Rect::from_dims(
            apls_geometry::Point::new(center_x - spacing / 2 - bias.w, bias_y),
            bias,
        ),
    });
    blocks.push(TemplateBlock {
        name: "bias_right".to_string(),
        rect: Rect::from_dims(apls_geometry::Point::new(center_x + spacing / 2, bias_y), bias),
    });
    // input pair centred below the bias row
    let pair_y = bias_y - spacing - pair_block.h;
    blocks.push(TemplateBlock {
        name: "input_pair".to_string(),
        rect: Rect::from_dims(
            apls_geometry::Point::new(center_x - pair_block.w / 2, pair_y),
            pair_block,
        ),
    });
    // cascode + mirror stacks at the bottom, mirrored about the centre line
    let casc_y = mirror.h + spacing;
    blocks.push(TemplateBlock {
        name: "cascode_left".to_string(),
        rect: Rect::from_dims(
            apls_geometry::Point::new(center_x - spacing / 2 - cascode.w, casc_y),
            cascode,
        ),
    });
    blocks.push(TemplateBlock {
        name: "cascode_right".to_string(),
        rect: Rect::from_dims(apls_geometry::Point::new(center_x + spacing / 2, casc_y), cascode),
    });
    blocks.push(TemplateBlock {
        name: "mirror_left".to_string(),
        rect: Rect::from_dims(
            apls_geometry::Point::new(center_x - spacing / 2 - mirror.w, 0),
            mirror,
        ),
    });
    blocks.push(TemplateBlock {
        name: "mirror_right".to_string(),
        rect: Rect::from_dims(apls_geometry::Point::new(center_x + spacing / 2, 0), mirror),
    });

    // wire length estimates: the output net runs from the cascode drains to
    // the chip edge (half the outline width) plus the vertical distance to the
    // pair; the cascode net connects pair drains to cascode sources.
    let output_wire_um = (core_w as f64 / 2.0 + (pair_y - casc_y).abs() as f64) / DBU_PER_UM;
    let cascode_wire_um =
        ((pair_y - casc_y - cascode.h).abs() as f64 + spacing as f64) / DBU_PER_UM;

    TemplateLayout { blocks, outline, output_wire_um, cascode_wire_um }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_geometry::total_overlap_area;

    #[test]
    fn template_blocks_do_not_overlap_and_fit_the_outline() {
        let tech = Technology::default();
        let layout = generate(&tech, &AmplifierSizing::default());
        assert_eq!(layout.blocks.len(), 7);
        let rects: Vec<Rect> = layout.blocks.iter().map(|b| b.rect).collect();
        assert_eq!(total_overlap_area(&rects), 0);
        for b in &layout.blocks {
            assert!(b.rect.x_min >= 0 && b.rect.y_min >= 0, "{}", b.name);
            assert!(b.rect.x_max <= layout.outline.w, "{}", b.name);
            assert!(b.rect.y_max <= layout.outline.h, "{}", b.name);
        }
    }

    #[test]
    fn template_is_mirror_symmetric() {
        let tech = Technology::default();
        let layout = generate(&tech, &AmplifierSizing::default());
        let axis_x2 = layout.outline.w; // doubled centre-line coordinate
        let find = |name: &str| layout.blocks.iter().find(|b| b.name == name).unwrap().rect;
        for (l, r) in [
            ("bias_left", "bias_right"),
            ("cascode_left", "cascode_right"),
            ("mirror_left", "mirror_right"),
        ] {
            let left = find(l);
            let right = find(r);
            assert_eq!(left.mirror_about_vertical_x2(axis_x2), right, "{l}/{r}");
        }
    }

    #[test]
    fn folding_the_devices_changes_the_aspect_ratio() {
        let tech = Technology::default();
        let mut flat = AmplifierSizing::default();
        flat.input_pair.folds = 1;
        flat.cascode.folds = 1;
        flat.mirror.folds = 1;
        flat.bias.folds = 1;
        let mut folded = AmplifierSizing::default();
        folded.input_pair.folds = 6;
        folded.cascode.folds = 4;
        folded.mirror.folds = 4;
        folded.bias.folds = 4;
        let l_flat = generate(&tech, &flat);
        let l_folded = generate(&tech, &folded);
        assert!(
            l_folded.aspect_ratio() < l_flat.aspect_ratio(),
            "folded {} vs flat {}",
            l_folded.aspect_ratio(),
            l_flat.aspect_ratio()
        );
    }

    #[test]
    fn bigger_devices_give_a_bigger_layout() {
        let tech = Technology::default();
        let small = AmplifierSizing::default();
        let mut big = small;
        big.input_pair.width_um *= 3.0;
        big.mirror.width_um *= 3.0;
        let a_small = generate(&tech, &small).area_um2();
        let a_big = generate(&tech, &big).area_um2();
        assert!(a_big > a_small);
    }

    #[test]
    fn wire_lengths_are_positive_and_scale_with_the_outline() {
        let tech = Technology::default();
        let small = generate(&tech, &AmplifierSizing::default());
        assert!(small.output_wire_um > 0.0);
        assert!(small.cascode_wire_um > 0.0);
        // a taller cascode stack lengthens the vertical run of the output net
        let mut huge = AmplifierSizing::default();
        huge.cascode.width_um *= 5.0;
        huge.cascode.folds = 1;
        let big = generate(&tech, &huge);
        assert!(big.output_wire_um > small.output_wire_um);
    }
}
