//! The sizing optimiser: electrical-only vs layout-aware.
//!
//! Both modes run the same simulated-annealing-style search over the design
//! variables of the folded-cascode amplifier. The difference — and the point
//! of Section V of the paper — is what each candidate evaluation sees:
//!
//! * [`SizingMode::ElectricalOnly`] — the classical flow: candidates are
//!   judged on the parasitic-free performance model only. Geometry parameters
//!   (fold counts) are not part of the search because a purely electrical flow
//!   has no notion of them; the layout is instantiated once at the end.
//! * [`SizingMode::LayoutAware`] — the paper's flow: every candidate is pushed
//!   through the layout template, parasitics are extracted, and the candidate
//!   is judged on post-layout performance *plus* geometric objectives (area,
//!   aspect ratio). Fold counts are first-class design variables.
//!
//! The optimiser records how much of the total runtime is spent in extraction,
//! reproducing the paper's "extraction takes only ≈ 17 % of the total sizing
//! time" observation.

use crate::extract::extract;
use crate::model::{
    evaluate, AmplifierSizing, MosDevice, Parasitics, Performance, Specs, Technology,
};
use crate::template::{generate, TemplateLayout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Which flow the optimiser runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizingMode {
    /// Classical flow: no geometry or parasitics inside the loop.
    ElectricalOnly,
    /// Layout-aware flow: template + extraction inside the loop.
    LayoutAware,
}

/// Optimiser configuration.
#[derive(Debug, Clone, Copy)]
pub struct SizingConfig {
    /// Which flow to run.
    pub mode: SizingMode,
    /// Number of candidate evaluations.
    pub iterations: usize,
    /// RNG seed (identical seeds reproduce identical runs).
    pub seed: u64,
}

/// Result of one sizing run.
#[derive(Debug, Clone)]
pub struct SizingResult {
    /// Flow that produced the result.
    pub mode: SizingMode,
    /// The final sizing.
    pub sizing: AmplifierSizing,
    /// Performance without any layout parasitics (what the electrical-only
    /// flow believes).
    pub pre_layout: Performance,
    /// Performance including the parasitics extracted from the final layout.
    pub post_layout: Performance,
    /// The instantiated layout of the final sizing.
    pub layout: TemplateLayout,
    /// Whether the specs hold before layout parasitics.
    pub specs_met_pre_layout: bool,
    /// Whether the specs hold after layout parasitics.
    pub specs_met_post_layout: bool,
    /// Total wall-clock time of the run.
    pub total_time: Duration,
    /// Time spent in parasitic extraction.
    pub extraction_time: Duration,
}

impl SizingResult {
    /// Fraction of the total runtime spent extracting parasitics.
    #[must_use]
    pub fn extraction_fraction(&self) -> f64 {
        if self.total_time.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.extraction_time.as_secs_f64() / self.total_time.as_secs_f64()
        }
    }
}

/// The sizing optimiser.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct SizingOptimizer {
    tech: Technology,
    specs: Specs,
}

impl SizingOptimizer {
    /// Creates an optimiser for the default technology and the given specs.
    #[must_use]
    pub fn new(specs: Specs) -> Self {
        SizingOptimizer { tech: Technology::default(), specs }
    }

    /// Overrides the technology (builder style).
    #[must_use]
    pub fn with_technology(mut self, tech: Technology) -> Self {
        self.tech = tech;
        self
    }

    /// The specs being targeted.
    #[must_use]
    pub fn specs(&self) -> &Specs {
        &self.specs
    }

    /// Runs the optimisation.
    #[must_use]
    pub fn run(&self, config: &SizingConfig) -> SizingResult {
        let start = Instant::now();
        let mut extraction_time = Duration::ZERO;
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut current = initial_sizing(config.mode);
        let mut current_cost = self.cost(config.mode, &current, &mut extraction_time);
        let mut best = current;
        let mut best_cost = current_cost;

        let mut temperature = 1.0f64;
        let cooling = 0.995f64;
        for _ in 0..config.iterations {
            let candidate = perturb(&current, config.mode, &mut rng);
            let cost = self.cost(config.mode, &candidate, &mut extraction_time);
            let accept = cost <= current_cost
                || rng.gen::<f64>() < (-(cost - current_cost) / temperature.max(1e-9)).exp();
            if accept {
                current = candidate;
                current_cost = cost;
                if cost < best_cost {
                    best = candidate;
                    best_cost = cost;
                }
            }
            temperature *= cooling;
        }

        // final reporting: instantiate the layout of the best sizing once and
        // evaluate with and without its parasitics
        let layout = generate(&self.tech, &best);
        let t_ex = Instant::now();
        let parasitics = extract(&self.tech, &best, &layout);
        extraction_time += t_ex.elapsed();
        let pre_layout = evaluate(&self.tech, &best, &Parasitics::default());
        let post_layout = evaluate(&self.tech, &best, &parasitics);

        SizingResult {
            mode: config.mode,
            sizing: best,
            pre_layout,
            post_layout,
            specs_met_pre_layout: self.specs.satisfied_by(&pre_layout),
            specs_met_post_layout: self.specs.satisfied_by(&post_layout),
            layout,
            total_time: start.elapsed(),
            extraction_time,
        }
    }

    fn cost(
        &self,
        mode: SizingMode,
        sizing: &AmplifierSizing,
        extraction_time: &mut Duration,
    ) -> f64 {
        match mode {
            SizingMode::ElectricalOnly => {
                let perf = evaluate(&self.tech, sizing, &Parasitics::default());
                // meet the specs, then minimise power
                1000.0 * self.specs.violation(&perf) + perf.power_w / self.specs.max_power_w
            }
            SizingMode::LayoutAware => {
                let layout = generate(&self.tech, sizing);
                let t = Instant::now();
                let parasitics = extract(&self.tech, sizing, &layout);
                *extraction_time += t.elapsed();
                let perf = evaluate(&self.tech, sizing, &parasitics);
                // meet the specs post-layout, then minimise power, area and
                // aspect-ratio deviation from square
                1000.0 * self.specs.violation(&perf)
                    + perf.power_w / self.specs.max_power_w
                    + layout.area_um2() / 100_000.0
                    + 0.2 * (layout.aspect_ratio() - 1.0)
            }
        }
    }
}

fn initial_sizing(mode: SizingMode) -> AmplifierSizing {
    let mut s = AmplifierSizing::default();
    if mode == SizingMode::ElectricalOnly {
        // a purely electrical flow has no concept of folding
        s.input_pair.folds = 1;
        s.cascode.folds = 1;
        s.mirror.folds = 1;
        s.bias.folds = 1;
    }
    s
}

fn perturb(sizing: &AmplifierSizing, mode: SizingMode, rng: &mut StdRng) -> AmplifierSizing {
    let mut s = *sizing;
    let scale = |rng: &mut StdRng| 0.8 + 0.4 * rng.gen::<f64>(); // ±20 %
    match rng.gen_range(0..6u32) {
        0 => s.input_pair.width_um = (s.input_pair.width_um * scale(rng)).clamp(10.0, 600.0),
        1 => s.cascode.width_um = (s.cascode.width_um * scale(rng)).clamp(5.0, 400.0),
        2 => s.mirror.width_um = (s.mirror.width_um * scale(rng)).clamp(5.0, 400.0),
        3 => s.bias.width_um = (s.bias.width_um * scale(rng)).clamp(5.0, 400.0),
        4 => s.tail_current = (s.tail_current * scale(rng)).clamp(50e-6, 2e-3),
        _ => {
            if mode == SizingMode::LayoutAware {
                // fold counts are layout parameters: only the layout-aware
                // flow explores them
                let device = rng.gen_range(0..4u32);
                let delta: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
                let bump = |d: &mut MosDevice| {
                    let folds = i64::from(d.folds) + delta;
                    d.folds = folds.clamp(1, 12) as u32;
                };
                match device {
                    0 => bump(&mut s.input_pair),
                    1 => bump(&mut s.cascode),
                    2 => bump(&mut s.mirror),
                    _ => bump(&mut s.bias),
                }
            } else {
                s.input_pair.length_um = (s.input_pair.length_um * scale(rng)).clamp(0.35, 2.0);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mode: SizingMode, seed: u64) -> SizingResult {
        SizingOptimizer::new(Specs::default()).run(&SizingConfig { mode, iterations: 400, seed })
    }

    #[test]
    fn layout_aware_flow_meets_specs_post_layout() {
        let result = quick(SizingMode::LayoutAware, 7);
        assert!(
            result.specs_met_post_layout,
            "post-layout performance {:?} misses the specs",
            result.post_layout
        );
    }

    #[test]
    fn electrical_only_flow_meets_specs_only_before_layout() {
        let result = quick(SizingMode::ElectricalOnly, 7);
        assert!(
            result.specs_met_pre_layout,
            "the electrical flow should at least satisfy its own (parasitic-free) view: {:?}",
            result.pre_layout
        );
        // The headline claim of Fig. 10(a): once parasitics are included, the
        // electrically-sized circuit degrades (post-layout performance is
        // strictly worse than what the flow believed).
        assert!(result.post_layout.gbw_hz < result.pre_layout.gbw_hz);
        assert!(result.post_layout.phase_margin_deg < result.pre_layout.phase_margin_deg);
    }

    #[test]
    fn layout_aware_layout_is_more_square_than_electrical_only() {
        let aware = quick(SizingMode::LayoutAware, 3);
        let electrical = quick(SizingMode::ElectricalOnly, 3);
        assert!(
            aware.layout.aspect_ratio() < electrical.layout.aspect_ratio(),
            "aware {:.2} vs electrical {:.2}",
            aware.layout.aspect_ratio(),
            electrical.layout.aspect_ratio()
        );
    }

    #[test]
    fn extraction_is_a_minor_fraction_of_layout_aware_runtime() {
        let result = quick(SizingMode::LayoutAware, 11);
        let fraction = result.extraction_fraction();
        assert!(fraction > 0.0);
        assert!(fraction < 0.6, "extraction fraction {fraction} unexpectedly dominates");
    }

    #[test]
    fn runs_are_reproducible() {
        let a = quick(SizingMode::LayoutAware, 21);
        let b = quick(SizingMode::LayoutAware, 21);
        assert_eq!(a.sizing, b.sizing);
        assert_eq!(a.post_layout, b.post_layout);
    }

    #[test]
    fn electrical_only_never_explores_folds() {
        let result = quick(SizingMode::ElectricalOnly, 5);
        assert_eq!(result.sizing.input_pair.folds, 1);
        assert_eq!(result.sizing.cascode.folds, 1);
        assert_eq!(result.sizing.mirror.folds, 1);
        assert_eq!(result.sizing.bias.folds, 1);
    }
}
