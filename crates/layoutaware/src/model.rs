//! Square-law MOS models and the folded-cascode amplifier performance model.
//!
//! The models are deliberately first-order (square-law devices, single
//! non-dominant pole) — they replace SPICE in the sizing loop, and what
//! matters for reproducing the paper's Fig. 10 is that the *same* evaluator is
//! used by both sizing modes and that layout parasitics degrade the metrics in
//! a physically sensible direction (extra capacitance lowers bandwidth and
//! phase margin, bigger devices burn area, …).

use serde::{Deserialize, Serialize};

/// Technology constants of the synthetic 0.35 µm-class process used by the
/// models. Values are typical textbook numbers; absolute accuracy is not the
/// point (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// NMOS transconductance factor `µ·Cox` in A/V².
    pub kn: f64,
    /// PMOS transconductance factor in A/V².
    pub kp: f64,
    /// Channel-length modulation coefficient per µm of channel length (1/V·µm).
    pub lambda_per_um: f64,
    /// Gate capacitance per µm² of gate area (fF/µm²).
    pub cox_ff_per_um2: f64,
    /// Junction capacitance per µm² of drain diffusion (fF/µm²).
    pub cj_ff_per_um2: f64,
    /// Drain diffusion length per finger (µm).
    pub diff_length_um: f64,
    /// Wire capacitance per µm of routed length (fF/µm).
    pub cwire_ff_per_um: f64,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl Default for Technology {
    fn default() -> Self {
        Technology {
            kn: 170e-6,
            kp: 58e-6,
            lambda_per_um: 0.06,
            cox_ff_per_um2: 4.5,
            cj_ff_per_um2: 0.9,
            diff_length_um: 0.85,
            cwire_ff_per_um: 0.08,
            vdd: 3.3,
        }
    }
}

/// One sized MOS device of the amplifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosDevice {
    /// Total channel width in µm.
    pub width_um: f64,
    /// Channel length in µm.
    pub length_um: f64,
    /// Number of fingers the device is folded into (≥ 1).
    pub folds: u32,
}

impl MosDevice {
    /// Creates a device, clamping the fold count to at least 1.
    #[must_use]
    pub fn new(width_um: f64, length_um: f64, folds: u32) -> Self {
        MosDevice { width_um, length_um, folds: folds.max(1) }
    }

    /// Transconductance at the given drain current (square law, strong
    /// inversion): `gm = sqrt(2 k (W/L) Id)`.
    #[must_use]
    pub fn gm(&self, k: f64, id: f64) -> f64 {
        (2.0 * k * (self.width_um / self.length_um) * id).sqrt()
    }

    /// Output conductance `gds = λ/L · Id`.
    #[must_use]
    pub fn gds(&self, tech: &Technology, id: f64) -> f64 {
        tech.lambda_per_um / self.length_um * id
    }

    /// Gate capacitance in farads.
    #[must_use]
    pub fn cgate(&self, tech: &Technology) -> f64 {
        self.width_um * self.length_um * tech.cox_ff_per_um2 * 1e-15
    }

    /// Drain junction capacitance in farads.
    ///
    /// Folding splits the device into `folds` fingers; fingers share drain
    /// diffusions pairwise, so the drain area — and with it the junction
    /// capacitance — shrinks roughly as `(folds/2 + 1)/folds` relative to a
    /// single-finger device of the same total width.
    #[must_use]
    pub fn cdrain(&self, tech: &Technology) -> f64 {
        let folds = f64::from(self.folds);
        let drain_fingers = (folds / 2.0).ceil().max(1.0);
        let finger_width = self.width_um / folds;
        drain_fingers * finger_width * tech.diff_length_um * tech.cj_ff_per_um2 * 1e-15
    }

    /// Footprint of the folded device in µm (width, height), including the
    /// per-finger diffusion overhead.
    #[must_use]
    pub fn footprint_um(&self, tech: &Technology) -> (f64, f64) {
        let folds = f64::from(self.folds);
        let finger_width = self.width_um / folds;
        let w = folds * (self.length_um + tech.diff_length_um) + tech.diff_length_um;
        let h = finger_width + 2.0 * tech.diff_length_um;
        (w, h)
    }
}

/// The design variables of the fully-differential folded-cascode amplifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmplifierSizing {
    /// Input differential pair (PMOS).
    pub input_pair: MosDevice,
    /// Cascode devices (NMOS).
    pub cascode: MosDevice,
    /// Current-source / mirror devices (NMOS).
    pub mirror: MosDevice,
    /// Bias devices (PMOS).
    pub bias: MosDevice,
    /// Tail current in amperes.
    pub tail_current: f64,
    /// Explicit load capacitance in farads (per output).
    pub load_cap: f64,
}

impl Default for AmplifierSizing {
    fn default() -> Self {
        AmplifierSizing {
            input_pair: MosDevice::new(120.0, 0.5, 4),
            cascode: MosDevice::new(60.0, 0.5, 2),
            mirror: MosDevice::new(80.0, 1.0, 2),
            bias: MosDevice::new(100.0, 1.0, 2),
            tail_current: 400e-6,
            load_cap: 0.5e-12,
        }
    }
}

/// Extracted layout parasitics fed back into the performance model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Parasitics {
    /// Extra capacitance at each output node (F).
    pub output_cap: f64,
    /// Extra capacitance at the cascode (folding) node (F).
    pub cascode_node_cap: f64,
}

/// Amplifier performance figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Performance {
    /// Low-frequency differential gain in dB.
    pub gain_db: f64,
    /// Unity-gain bandwidth in Hz.
    pub gbw_hz: f64,
    /// Phase margin in degrees.
    pub phase_margin_deg: f64,
    /// Static power consumption in watts.
    pub power_w: f64,
}

/// Performance specifications (the "dc-gain higher than 50 dB" style
/// constraints of Section V).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Specs {
    /// Minimum dc gain (dB).
    pub min_gain_db: f64,
    /// Minimum unity-gain bandwidth (Hz).
    pub min_gbw_hz: f64,
    /// Minimum phase margin (degrees).
    pub min_phase_margin_deg: f64,
    /// Maximum power (W).
    pub max_power_w: f64,
}

impl Default for Specs {
    fn default() -> Self {
        Specs {
            min_gain_db: 55.0,
            min_gbw_hz: 300e6,
            min_phase_margin_deg: 60.0,
            max_power_w: 5e-3,
        }
    }
}

impl Specs {
    /// Returns `true` when every specification is met.
    #[must_use]
    pub fn satisfied_by(&self, perf: &Performance) -> bool {
        self.violation(perf) == 0.0
    }

    /// Total normalised spec violation (0 when all specs are met). Used as the
    /// constraint term of the sizing cost function.
    #[must_use]
    pub fn violation(&self, perf: &Performance) -> f64 {
        let mut v = 0.0;
        if perf.gain_db < self.min_gain_db {
            v += (self.min_gain_db - perf.gain_db) / self.min_gain_db;
        }
        if perf.gbw_hz < self.min_gbw_hz {
            v += (self.min_gbw_hz - perf.gbw_hz) / self.min_gbw_hz;
        }
        if perf.phase_margin_deg < self.min_phase_margin_deg {
            v += (self.min_phase_margin_deg - perf.phase_margin_deg) / self.min_phase_margin_deg;
        }
        if perf.power_w > self.max_power_w {
            v += (perf.power_w - self.max_power_w) / self.max_power_w;
        }
        v
    }
}

/// Evaluates the folded-cascode amplifier for a sizing and (optional)
/// parasitics.
///
/// First-order model: `gain = gm1 · Rout` with both output branches cascoded,
/// `GBW = gm1 / (2π C_out)`, the non-dominant pole sits at the cascode node
/// (`gm_casc / C_casc`) and sets the phase margin, and power is
/// `VDD · (I_tail + 2·I_branch)`.
///
/// The node capacitances seen here are only the ones an electrical designer
/// knows *before* layout: the explicit load and the cascode gate loading.
/// Everything that depends on the physical implementation — drain junction
/// capacitances (which change with the folding style, as Section V of the
/// paper points out) and wiring — enters exclusively through `parasitics`,
/// i.e. through [`crate::extract::extract`]. This is exactly the split that
/// makes the electrical-only flow over-estimate its bandwidth.
#[must_use]
pub fn evaluate(
    tech: &Technology,
    sizing: &AmplifierSizing,
    parasitics: &Parasitics,
) -> Performance {
    let id_input = sizing.tail_current / 2.0;
    let id_branch = sizing.tail_current / 2.0;

    let gm1 = sizing.input_pair.gm(tech.kp, id_input);
    let gm_casc = sizing.cascode.gm(tech.kn, id_branch);
    let gds_casc = sizing.cascode.gds(tech, id_branch);
    let gds_mirror = sizing.mirror.gds(tech, id_branch);
    let gds_input = sizing.input_pair.gds(tech, id_input);
    let gds_bias = sizing.bias.gds(tech, id_branch);

    // both output branches are cascoded: the NMOS cascode boosts the mirror
    // side, the PMOS cascode boosts the bias/input side
    let r_down = gm_casc / (gds_casc * gds_mirror).max(1e-18);
    let r_up = gm_casc / (gds_bias * (gds_input + gds_bias)).max(1e-18);
    let r_out = 1.0 / (1.0 / r_down + 1.0 / r_up);
    let gain = gm1 * r_out;
    let gain_db = 20.0 * gain.max(1e-9).log10();

    // output node capacitance: explicit load + layout parasitics
    let c_out = sizing.load_cap + parasitics.output_cap;
    let gbw_hz = gm1 / (2.0 * std::f64::consts::PI * c_out.max(1e-18));

    // non-dominant pole at the folding node: cascode gate loading + layout
    // parasitics (junctions + wiring)
    let c_casc = 0.5 * sizing.cascode.cgate(tech) + parasitics.cascode_node_cap;
    let p2_hz = gm_casc / (2.0 * std::f64::consts::PI * c_casc.max(1e-18));
    let phase_margin_deg = 90.0 - (gbw_hz / p2_hz).atan().to_degrees();

    let power_w = tech.vdd * (sizing.tail_current + 2.0 * id_branch);

    Performance { gain_db, gbw_hz, phase_margin_deg, power_w }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizing_is_in_a_sane_regime() {
        let tech = Technology::default();
        let perf = evaluate(&tech, &AmplifierSizing::default(), &Parasitics::default());
        assert!(perf.gain_db > 40.0 && perf.gain_db < 120.0, "gain {}", perf.gain_db);
        assert!(perf.gbw_hz > 1e6 && perf.gbw_hz < 1e10, "gbw {}", perf.gbw_hz);
        assert!(perf.phase_margin_deg > 0.0 && perf.phase_margin_deg < 90.0);
        assert!(perf.power_w > 0.0 && perf.power_w < 0.1);
    }

    #[test]
    fn parasitics_degrade_bandwidth_and_phase_margin() {
        let tech = Technology::default();
        let sizing = AmplifierSizing::default();
        let clean = evaluate(&tech, &sizing, &Parasitics::default());
        let loaded =
            evaluate(&tech, &sizing, &Parasitics { output_cap: 1e-12, cascode_node_cap: 0.8e-12 });
        assert!(loaded.gbw_hz < clean.gbw_hz);
        assert!(loaded.phase_margin_deg < clean.phase_margin_deg);
        assert_eq!(loaded.gain_db, clean.gain_db, "capacitance does not change dc gain");
    }

    #[test]
    fn wider_input_pair_raises_gain_and_bandwidth() {
        let tech = Technology::default();
        let base = AmplifierSizing::default();
        let mut wide = base;
        wide.input_pair =
            MosDevice::new(base.input_pair.width_um * 2.0, base.input_pair.length_um, 4);
        let p_base = evaluate(&tech, &base, &Parasitics::default());
        let p_wide = evaluate(&tech, &wide, &Parasitics::default());
        assert!(p_wide.gain_db > p_base.gain_db);
        assert!(p_wide.gbw_hz > p_base.gbw_hz);
    }

    #[test]
    fn folding_reduces_drain_capacitance_but_not_gate_cap() {
        let tech = Technology::default();
        let flat = MosDevice::new(100.0, 0.5, 1);
        let folded = MosDevice::new(100.0, 0.5, 8);
        assert!(folded.cdrain(&tech) < flat.cdrain(&tech));
        assert!((folded.cgate(&tech) - flat.cgate(&tech)).abs() < 1e-20);
    }

    #[test]
    fn folding_squares_up_the_footprint() {
        let tech = Technology::default();
        let flat = MosDevice::new(100.0, 0.5, 1);
        let folded = MosDevice::new(100.0, 0.5, 10);
        let (wf, hf) = flat.footprint_um(&tech);
        let (wg, hg) = folded.footprint_um(&tech);
        assert!(hf / wf > 10.0, "an unfolded wide device is extremely tall/thin");
        assert!(hg / wg < hf / wf, "folding moves the aspect ratio toward square");
    }

    #[test]
    fn spec_violation_is_zero_only_when_all_specs_met() {
        let specs = Specs::default();
        let good =
            Performance { gain_db: 70.0, gbw_hz: 400e6, phase_margin_deg: 65.0, power_w: 3e-3 };
        let bad =
            Performance { gain_db: 40.0, gbw_hz: 400e6, phase_margin_deg: 65.0, power_w: 3e-3 };
        assert!(specs.satisfied_by(&good));
        assert_eq!(specs.violation(&good), 0.0);
        assert!(!specs.satisfied_by(&bad));
        assert!(specs.violation(&bad) > 0.0);
    }
}
