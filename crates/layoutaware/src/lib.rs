//! Layout-aware analog sizing (Section V of the DATE 2009 survey).
//!
//! The layout-aware sizing technique of reference [4] closes the loop between
//! electrical sizing and physical layout: every candidate sizing evaluated by
//! the optimiser is turned into a layout through a *template*, parasitics are
//! extracted from that layout, and the performance is judged **including**
//! those parasitics and the geometric objectives (area, aspect ratio). This
//! avoids the classical sizing → layout → extraction → re-sizing iterations.
//!
//! The paper's implementation uses SPICE simulation and Cadence PCELL
//! templates; this crate substitutes both with self-contained Rust models
//! (documented in DESIGN.md §2) that preserve the loop structure and the
//! trade-offs:
//!
//! * [`model`] — square-law MOS device models and an analytical performance
//!   model of a fully-differential folded-cascode amplifier (dc gain, GBW,
//!   phase margin, power);
//! * [`template`] — a procedural layout template that turns a sizing into
//!   module rectangles, wire lengths and a chip outline;
//! * [`extract`] — parasitic extraction from the template geometry (junction
//!   and wire capacitances) feeding back into the performance model;
//! * [`sizing`] — the simulated-annealing sizing optimiser with two modes:
//!   electrical-only (the classical flow) and layout-aware (the paper's flow),
//!   reproducing the Fig. 10 comparison and the "extraction is a small
//!   fraction of total sizing time" observation.
//!
//! # Example
//!
//! ```
//! use apls_layoutaware::sizing::{SizingOptimizer, SizingConfig, SizingMode};
//! use apls_layoutaware::model::Specs;
//!
//! let specs = Specs::default();
//! let optimizer = SizingOptimizer::new(specs);
//! let result = optimizer.run(&SizingConfig { mode: SizingMode::LayoutAware, iterations: 300, seed: 1 });
//! assert!(result.post_layout.gain_db > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod model;
pub mod sizing;
pub mod template;
