//! Parasitic extraction from template layouts.
//!
//! The extractor turns the geometry produced by [`crate::template::generate`]
//! into the [`Parasitics`] consumed by the performance model: wire capacitance
//! proportional to routed length, plus the fold-dependent drain junction
//! capacitances of the devices hanging on each node. The paper's observation
//! that "extraction within sizing is not as expensive as it has been
//! traditionally considered" (≈ 17 % of total sizing time) is reproduced by
//! the timing breakdown of the sizing optimiser.

use crate::model::{AmplifierSizing, Parasitics, Technology};
use crate::template::TemplateLayout;

/// Extracts node parasitics from a template layout.
///
/// * every output node sees its routing plus the drain junction capacitances
///   of the cascode and bias devices attached to it;
/// * the internal cascode (folding) node sees its short routing plus the
///   input-pair and mirror drain junctions.
///
/// Drain junction capacitances are layout parasitics on purpose: they depend
/// on the folding style chosen when the device is drawn (Section V of the
/// paper: "different foldings change the junction capacitances of a MOS
/// transistor"), so the electrical-only flow never sees them until the layout
/// is instantiated. On top of that, layouts far from square pay a sprawl
/// penalty for the longer cross-connections between the mirrored halves.
#[must_use]
pub fn extract(tech: &Technology, sizing: &AmplifierSizing, layout: &TemplateLayout) -> Parasitics {
    // wire capacitance from routed lengths
    let wire_out = layout.output_wire_um * tech.cwire_ff_per_um * 1e-15;
    let wire_casc = layout.cascode_wire_um * tech.cwire_ff_per_um * 1e-15;

    // sprawl factor: a layout far from square needs longer cross-connections
    // between the mirrored halves; model it as extra wiring proportional to
    // (aspect_ratio - 1) times the mean edge length.
    let mean_edge_um = (layout.width_um() + layout.height_um()) / 2.0;
    let sprawl_um = (layout.aspect_ratio() - 1.0).max(0.0) * 0.5 * mean_edge_um;
    let sprawl_cap = sprawl_um * tech.cwire_ff_per_um * 1e-15;

    // folding-dependent drain junction capacitances
    let junction_out = sizing.cascode.cdrain(tech) + sizing.bias.cdrain(tech);
    let junction_casc = sizing.input_pair.cdrain(tech) + sizing.mirror.cdrain(tech);

    Parasitics {
        output_cap: wire_out + sprawl_cap + junction_out,
        cascode_node_cap: wire_casc + 0.5 * sprawl_cap + junction_casc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AmplifierSizing;
    use crate::template::generate;

    #[test]
    fn extraction_is_positive_and_finite() {
        let tech = Technology::default();
        let sizing = AmplifierSizing::default();
        let layout = generate(&tech, &sizing);
        let p = extract(&tech, &sizing, &layout);
        assert!(p.output_cap > 0.0 && p.output_cap.is_finite());
        assert!(p.cascode_node_cap > 0.0 && p.cascode_node_cap.is_finite());
        // parasitics should be in the fF .. pF range for a cell this size
        assert!(p.output_cap < 10e-12);
        assert!(p.cascode_node_cap < 10e-12);
    }

    #[test]
    fn sprawling_layouts_extract_more_capacitance() {
        let tech = Technology::default();
        let mut compact = AmplifierSizing::default();
        compact.input_pair.folds = 6;
        compact.cascode.folds = 4;
        compact.mirror.folds = 4;
        compact.bias.folds = 4;
        let mut sprawling = compact;
        sprawling.input_pair.folds = 1;
        sprawling.cascode.folds = 1;
        sprawling.mirror.folds = 1;
        sprawling.bias.folds = 1;
        let p_compact = {
            let l = generate(&tech, &compact);
            extract(&tech, &compact, &l)
        };
        let p_sprawl = {
            let l = generate(&tech, &sprawling);
            extract(&tech, &sprawling, &l)
        };
        assert!(
            p_sprawl.output_cap + p_sprawl.cascode_node_cap
                > p_compact.output_cap + p_compact.cascode_node_cap,
            "sprawling {:?} vs compact {:?}",
            p_sprawl,
            p_compact
        );
    }

    #[test]
    fn parasitics_degrade_the_evaluated_performance() {
        use crate::model::{evaluate, Parasitics};
        let tech = Technology::default();
        let sizing = AmplifierSizing::default();
        let layout = generate(&tech, &sizing);
        let extracted = extract(&tech, &sizing, &layout);
        let ideal = evaluate(&tech, &sizing, &Parasitics::default());
        let real = evaluate(&tech, &sizing, &extracted);
        assert!(real.gbw_hz < ideal.gbw_hz);
        assert!(real.phase_margin_deg < ideal.phase_margin_deg);
    }
}
