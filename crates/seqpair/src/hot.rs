//! The incremental sequence-pair evaluation hot path.
//!
//! [`HotSpEval`] reproduces the cost that [`crate::place::SymmetricPlacer`]
//! plus [`apls_circuit::Placement::hot_cost`] compute for a sequence-pair
//! — bit-identically — without building a [`apls_circuit::Placement`], a
//! [`crate::pack::PackedFloorplan`], or any other per-move allocation:
//!
//! * coordinates live in flat SoA `Vec<Coord>` arrays (one per axis, indexed
//!   by module), so the full legalisation sweeps are simple linear loops over
//!   primitive arrays that the optimiser can vectorise;
//! * the *base pack* (weighted-LCS, FAST-SP) is evaluated **incrementally**:
//!   a local move (swap / position swap) touches at most a handful of α
//!   positions, so the x sweep is replayed only from the smallest touched α
//!   position and the y sweep only up to the largest one, with the prefix
//!   state rebuilt in O(n) from the cached per-step insertions of the
//!   committed evaluation. A move with no undo record (or an invalidated
//!   cache) falls back to the full sweep — the same code path with the
//!   resweep window widened to the whole sequence;
//! * the symmetry legalisation replays the exact iterative-tightening /
//!   symmetry-island decision of `SymmetricPlacer::place`, sharing its
//!   kernels ([`crate::place::tighten_group_with`],
//!   [`crate::place::island_geometry`]) so the two code paths cannot drift;
//!   island internal geometry (and its local bounding box) is computed once
//!   per run and cached, and the per-member island assembly is deferred until
//!   a move actually selects the island construction;
//! * wirelength is evaluated through [`DeltaCost`], which recomputes only
//!   the nets incident to modules whose final coordinates actually changed.
//!
//! The committed/proposal sweep caches are double-buffered: `commit` is a
//! buffer swap, rejection simply discards the proposal buffer (plus a
//! [`DeltaCost::undo`]), so rollback is O(touched nets).

use crate::pack::{LowerBounds, MaxFenwick};
use crate::place::{island_geometry, tighten_group_with, IslandGeometry};
use crate::SequencePair;
use apls_circuit::{ConstraintSet, DeltaCost, ModuleId, NetAdjacency};
use apls_geometry::{Coord, Dims, Rect};

/// Per-step state of the committed (or proposed) weighted-LCS sweeps, cached
/// so the next move can replay only the affected window.
#[derive(Debug, Clone, Default)]
struct SweepCache {
    /// β position of the module at α position `k` (at sweep time).
    bp: Vec<usize>,
    /// Value inserted into the x prefix structure at step `k` (`x + w`).
    vx: Vec<Coord>,
    /// Value inserted into the y prefix structure at step `k` of the reverse
    /// sweep (`y + h`).
    vy: Vec<Coord>,
    /// Base-pack coordinates, by module index.
    x0: Vec<Coord>,
    y0: Vec<Coord>,
}

impl SweepCache {
    fn ensure_len(&mut self, n: usize) {
        self.bp.resize(n, 0);
        self.vx.resize(n, 0);
        self.vy.resize(n, 0);
        self.x0.resize(n, 0);
        self.y0.resize(n, 0);
    }

    fn copy_from(&mut self, other: &SweepCache) {
        self.bp.clear();
        self.bp.extend_from_slice(&other.bp);
        self.vx.clear();
        self.vx.extend_from_slice(&other.vx);
        self.vy.clear();
        self.vy.extend_from_slice(&other.vy);
        self.x0.clear();
        self.x0.extend_from_slice(&other.x0);
        self.y0.clear();
        self.y0.extend_from_slice(&other.y0);
    }
}

/// Prefix-max structure for the weighted-LCS sweeps.
///
/// Coordinates are defined by the recurrence alone, so the structure is free
/// to pick whichever implementation is fastest: a flat array with linear
/// prefix scans for small sequences (the scans auto-vectorize and beat the
/// Fenwick constant by a wide margin up to well past typical analog sizes),
/// and a [`MaxFenwick`] above that for the O(n log n) asymptotics.
#[derive(Debug, Clone)]
struct SweepMax {
    vals: Vec<Coord>,
    fenwick: Option<MaxFenwick>,
}

impl SweepMax {
    /// Largest sequence length packed with linear prefix scans.
    const LINEAR_MAX: usize = 64;

    fn new(n: usize) -> Self {
        SweepMax { vals: vec![0; n], fenwick: (n > Self::LINEAR_MAX).then(|| MaxFenwick::new(n)) }
    }

    /// Starts a sweep over `n` positions with every prefix value zero.
    /// Positions may then be seeded via [`SweepMax::seed`]; call
    /// [`SweepMax::finish_seeding`] before the first query.
    fn begin(&mut self, n: usize) {
        self.vals.clear();
        self.vals.resize(n, 0);
    }

    /// Restores the cached insertion `v` at position `p` (bulk prefix replay).
    fn seed(&mut self, p: usize, v: Coord) {
        self.vals[p] = v;
    }

    fn finish_seeding(&mut self) {
        if let Some(f) = &mut self.fenwick {
            f.rebuild_from(&self.vals);
        }
    }

    /// Max over positions `[0, p)`, 0 when empty.
    fn prefix_max(&self, p: usize) -> Coord {
        match &self.fenwick {
            Some(f) => f.prefix_max(p),
            None => self.vals[..p].iter().copied().max().unwrap_or(0),
        }
    }

    fn update(&mut self, p: usize, v: Coord) {
        if let Some(f) = &mut self.fenwick {
            f.update(p, v);
        }
        let slot = &mut self.vals[p];
        if v > *slot {
            *slot = v;
        }
    }
}

/// How the evaluator scores a sequence-pair (mirrors
/// [`crate::anneal::SymmetryMode`] without borrowing the config).
#[derive(Debug, Clone, Copy)]
pub(crate) enum HotMode {
    /// Full symmetric legalisation (iterative tightening + island fallback).
    Exact,
    /// Plain packing plus `weight · symmetry_error`.
    Penalty {
        /// Cost weight of one doubled-dbu of symmetry error.
        weight: f64,
    },
}

/// Allocation-free, incrementally updated evaluator for the sequence-pair
/// annealing loop.
#[derive(Debug, Clone)]
pub(crate) struct HotSpEval<'a> {
    constraints: &'a ConstraintSet,
    dims: Vec<Dims>,
    n: usize,
    max_iterations: usize,
    mode: HotMode,
    wirelength_weight: f64,
    delta: DeltaCost,

    cur: SweepCache,
    prop: SweepCache,
    cache_valid: bool,

    sweep: SweepMax,

    // iterative-legalisation scratch
    bounds: LowerBounds,
    xi: Vec<Coord>,
    yi: Vec<Coord>,

    // symmetry islands: geometry cached per run (it only depends on the
    // groups, the dims and the member set, never on the encoding order)
    islands: Vec<IslandGeometry>,
    /// Local bounding box of each island's member rectangles.
    island_bbox: Vec<Rect>,
    module_to_island: Vec<Option<u32>>,
    reps: Vec<ModuleId>,
    outer_alpha: Vec<ModuleId>,
    outer_beta: Vec<ModuleId>,
    outer_beta_pos: Vec<usize>,
    outer_dims: Vec<Dims>,
    seen: Vec<bool>,
    ox: Vec<Coord>,
    oy: Vec<Coord>,
    isl_x: Vec<Coord>,
    isl_y: Vec<Coord>,
    // final (post-decision) coordinates of the open proposal
    fx: Vec<Coord>,
    fy: Vec<Coord>,
}

impl<'a> HotSpEval<'a> {
    pub(crate) fn new(
        constraints: &'a ConstraintSet,
        dims: Vec<Dims>,
        adjacency: NetAdjacency,
        initial_sp: &SequencePair,
        mode: HotMode,
        wirelength_weight: f64,
    ) -> Self {
        let n = dims.len();
        let max_iterations = 3 * n + 20;
        let mut islands = Vec::new();
        let mut island_bbox = Vec::new();
        let mut module_to_island: Vec<Option<u32>> = vec![None; n];
        for group in constraints.symmetry_groups() {
            let Some(geometry) = island_geometry(group, &dims, |m| initial_sp.contains(m)) else {
                continue;
            };
            let gi = u32::try_from(islands.len()).expect("island count fits in u32");
            for &m in &geometry.members {
                module_to_island[m.index()] = Some(gi);
            }
            let mut bbox = geometry.rects[0].1;
            for &(_, r) in &geometry.rects[1..] {
                bbox = bbox.union(&r);
            }
            island_bbox.push(bbox);
            islands.push(geometry);
        }
        let island_count = islands.len();
        HotSpEval {
            constraints,
            delta: DeltaCost::new(adjacency, n),
            n,
            max_iterations,
            mode,
            wirelength_weight,
            cur: SweepCache::default(),
            prop: SweepCache::default(),
            cache_valid: false,
            sweep: SweepMax::new(n),
            bounds: LowerBounds::empty(n),
            xi: vec![0; n],
            yi: vec![0; n],
            islands,
            island_bbox,
            module_to_island,
            reps: vec![ModuleId::from_index(0); island_count],
            outer_alpha: Vec::with_capacity(n),
            outer_beta: Vec::with_capacity(n),
            outer_beta_pos: vec![usize::MAX; n],
            outer_dims: dims.clone(),
            seen: vec![false; island_count],
            ox: vec![0; n],
            oy: vec![0; n],
            isl_x: vec![0; n],
            isl_y: vec![0; n],
            fx: vec![0; n],
            fy: vec![0; n],
            dims,
        }
    }

    /// Evaluates one proposal. `touched` lists the modules whose α/β
    /// positions may have changed since the last *committed* evaluation
    /// (duplicates allowed); pass `None` to force a full resweep.
    pub(crate) fn evaluate(&mut self, sp: &SequencePair, touched: Option<&[ModuleId]>) -> f64 {
        let n = self.n;
        debug_assert_eq!(sp.len(), n);
        if n == 0 {
            self.delta.begin();
            let wl = self.delta.total();
            self.finish_initial_if_needed();
            return self.wirelength_weight * wl;
        }
        self.cur.ensure_len(n);
        self.prop.copy_from(&self.cur);

        // --- 1. base pack, incrementally resweeped --------------------------
        let window = match touched {
            Some(t) if self.cache_valid => {
                let mut lo = n;
                let mut hi = 0usize;
                for &m in t {
                    let p = sp.alpha_position(m);
                    lo = lo.min(p);
                    hi = hi.max(p);
                }
                if lo == n {
                    None // no-op move: the committed sweeps are still exact
                } else {
                    Some((lo, hi))
                }
            }
            _ => Some((0, n - 1)),
        };
        if let Some((s_min, s_max)) = window {
            let alpha = sp.alpha();
            // x sweep, replayed from s_min: restore the prefix state from the
            // cached insertions of steps 0..s_min in O(n).
            self.sweep.begin(n);
            for k in 0..s_min {
                self.sweep.seed(self.prop.bp[k], self.prop.vx[k]);
            }
            self.sweep.finish_seeding();
            for (k, &m) in alpha.iter().enumerate().skip(s_min) {
                let i = m.index();
                let bp = sp.beta_position(m);
                let start = self.sweep.prefix_max(bp);
                self.prop.x0[i] = start;
                self.prop.bp[k] = bp;
                self.prop.vx[k] = start + self.dims[i].w;
                self.sweep.update(bp, self.prop.vx[k]);
            }
            // y sweep runs in reverse α order, so its unchanged prefix is the
            // suffix s_max+1..n; replay down from s_max.
            self.sweep.begin(n);
            for k in (s_max + 1)..n {
                self.sweep.seed(self.prop.bp[k], self.prop.vy[k]);
            }
            self.sweep.finish_seeding();
            for k in (0..=s_max).rev() {
                let m = alpha[k];
                let i = m.index();
                let bp = self.prop.bp[k];
                let start = self.sweep.prefix_max(bp);
                self.prop.y0[i] = start;
                self.prop.vy[k] = start + self.dims[i].h;
                self.sweep.update(bp, self.prop.vy[k]);
            }
        }

        let mut plain_width: Coord = 0;
        for &m in sp.alpha() {
            let i = m.index();
            plain_width = plain_width.max(self.prop.x0[i] + self.dims[i].w);
        }

        // --- 2. symmetry handling -------------------------------------------
        let cost = match self.mode {
            HotMode::Penalty { weight } => {
                self.fx.copy_from_slice(&self.prop.x0);
                self.fy.copy_from_slice(&self.prop.y0);
                let err = self.symmetry_error_of(sp, SymmetrySource::Final);
                self.hot_cost(sp) + weight * err as f64
            }
            HotMode::Exact => {
                if self.islands.is_empty() {
                    // No populated symmetry group: the first tightening pass
                    // changes nothing, and the island construction reduces to
                    // the identical plain packing, so the decision always
                    // keeps the base coordinates.
                    self.fx.copy_from_slice(&self.prop.x0);
                    self.fy.copy_from_slice(&self.prop.y0);
                } else {
                    self.legalise(sp, plain_width);
                }
                self.hot_cost(sp)
            }
        };
        self.finish_initial_if_needed();
        cost
    }

    /// Accepts the open proposal: the proposal sweep cache becomes the
    /// committed one and the wirelength journal is dropped.
    pub(crate) fn commit(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.prop);
        self.delta.commit();
    }

    /// Rejects the open proposal: the wirelength caches roll back from the
    /// journal; the proposal sweep buffer is simply abandoned.
    pub(crate) fn rollback(&mut self) {
        self.delta.undo();
    }

    /// The very first evaluation scores the *current* state, not a proposal:
    /// promote it to committed immediately (the annealing driver only calls
    /// `commit`/`rollback` for proposals).
    fn finish_initial_if_needed(&mut self) {
        if !self.cache_valid {
            std::mem::swap(&mut self.cur, &mut self.prop);
            self.delta.commit();
            self.cache_valid = true;
        }
    }

    /// Replays `SymmetricPlacer::place` exactly: iterative tightening with
    /// bounded repacks, divergence guard, island fallback, compactness
    /// decision. Leaves the chosen coordinates in `fx`/`fy`.
    fn legalise(&mut self, sp: &SequencePair, plain_width: Coord) {
        let n = self.n;
        // iterative legalisation from the base pack
        self.bounds.min_x.clear();
        self.bounds.min_x.resize(self.dims.len(), 0);
        self.bounds.min_y.clear();
        self.bounds.min_y.resize(self.dims.len(), 0);
        self.xi.copy_from_slice(&self.prop.x0[..n]);
        self.yi.copy_from_slice(&self.prop.y0[..n]);
        let mut converged = false;
        for it in 0..self.max_iterations {
            let mut changed = false;
            for group in self.constraints.symmetry_groups() {
                let xi = &self.xi;
                let yi = &self.yi;
                let dims = &self.dims;
                changed |= tighten_group_with(
                    group,
                    &self.dims,
                    |m| {
                        if sp.contains(m) {
                            let i = m.index();
                            Some(Rect::new(xi[i], yi[i], xi[i] + dims[i].w, yi[i] + dims[i].h))
                        } else {
                            None
                        }
                    },
                    &mut self.bounds,
                );
            }
            if !changed {
                converged = true;
                break;
            }
            let (width, moved) = self.repack_with_bounds(sp);
            // Divergence guard: crossed-pair encodings can keep pushing each
            // other's mirror targets (see `SymmetricPlacer::place`).
            if width > 3 * plain_width.max(1) {
                converged = false;
                break;
            }
            // Tightening targets are a function of the coordinates alone, so a
            // repack that reproduced the current coordinates cannot raise any
            // bound on the next pass: it is guaranteed to report "unchanged".
            // Skipping that verification pass is exact as long as the cold
            // loop would still have had an iteration left to run it in.
            if !moved && it + 1 < self.max_iterations {
                converged = true;
                break;
            }
        }

        // island construction (the outer pack is always computed, exactly
        // like the cold path; the per-member assembly is deferred until the
        // decision actually selects the islands)
        self.build_outer(sp);

        let use_iterative = converged
            && self.symmetry_error_of(sp, SymmetrySource::Iterative) == 0
            && self.bbox_area(sp, &self.xi, &self.yi) <= self.islands_bbox_area();
        if use_iterative {
            self.fx.copy_from_slice(&self.xi);
            self.fy.copy_from_slice(&self.yi);
        } else {
            self.assemble_islands();
            self.fx.copy_from_slice(&self.isl_x);
            self.fy.copy_from_slice(&self.isl_y);
        }
    }

    /// Full bounded weighted-LCS repack into `xi`/`yi`; returns the packed
    /// width and whether any coordinate differs from the previous `xi`/`yi`.
    /// Identical coordinates to `pack_with_bounds_constraint_graph` (same
    /// recurrence — see `pack_with_bounds_lcs`).
    fn repack_with_bounds(&mut self, sp: &SequencePair) -> (Coord, bool) {
        let n = self.n;
        self.sweep.begin(n);
        self.sweep.finish_seeding();
        let mut width: Coord = 0;
        let mut moved = false;
        // `prop.bp` already holds every module's β-position for this proposal
        // (written by the base-pack resweep, prefix copied from the committed
        // buffer), so the per-module β lookups can be plain array reads.
        for (k, &m) in sp.alpha().iter().enumerate() {
            let i = m.index();
            let bp = self.prop.bp[k];
            let start = self.bounds.min_x[i].max(self.sweep.prefix_max(bp));
            moved |= self.xi[i] != start;
            self.xi[i] = start;
            let top = start + self.dims[i].w;
            width = width.max(top);
            self.sweep.update(bp, top);
        }
        self.sweep.begin(n);
        self.sweep.finish_seeding();
        for (k, &m) in sp.alpha().iter().enumerate().rev() {
            let i = m.index();
            let bp = self.prop.bp[k];
            let start = self.bounds.min_y[i].max(self.sweep.prefix_max(bp));
            moved |= self.yi[i] != start;
            self.yi[i] = start;
            self.sweep.update(bp, start + self.dims[i].h);
        }
        (width, moved)
    }

    /// The reduction + outer pack of the symmetry-island construction over
    /// the cached island geometry: representative choice, outer sequence
    /// reduction, and one outer LCS pack into `ox`/`oy`.
    fn build_outer(&mut self, sp: &SequencePair) {
        // representative of each island = its member first in α
        for (gi, geometry) in self.islands.iter().enumerate() {
            self.reps[gi] = geometry
                .members
                .iter()
                .copied()
                .min_by_key(|m| sp.alpha_position(*m))
                .expect("non-empty island");
        }
        // outer sequences: islands collapse onto their representative
        self.outer_alpha.clear();
        self.seen.fill(false);
        for &m in sp.alpha() {
            match self.module_to_island[m.index()] {
                Some(gi) => {
                    if !self.seen[gi as usize] {
                        self.seen[gi as usize] = true;
                        self.outer_alpha.push(self.reps[gi as usize]);
                    }
                }
                None => self.outer_alpha.push(m),
            }
        }
        self.outer_beta.clear();
        self.seen.fill(false);
        for &m in sp.beta() {
            match self.module_to_island[m.index()] {
                Some(gi) => {
                    if !self.seen[gi as usize] {
                        self.seen[gi as usize] = true;
                        self.outer_beta.push(self.reps[gi as usize]);
                    }
                }
                None => self.outer_beta.push(m),
            }
        }
        // outer dims: the representative slot carries the island footprint
        self.outer_dims.clear();
        self.outer_dims.extend_from_slice(&self.dims);
        for (gi, geometry) in self.islands.iter().enumerate() {
            self.outer_dims[self.reps[gi].index()] = geometry.dims;
        }
        // outer pack (plain LCS over the reduced sequences)
        let outer_n = self.outer_alpha.len();
        for (p, &m) in self.outer_beta.iter().enumerate() {
            self.outer_beta_pos[m.index()] = p;
        }
        self.sweep.begin(outer_n);
        self.sweep.finish_seeding();
        for &m in &self.outer_alpha {
            let i = m.index();
            let bp = self.outer_beta_pos[i];
            let start = self.sweep.prefix_max(bp);
            self.ox[i] = start;
            self.sweep.update(bp, start + self.outer_dims[i].w);
        }
        self.sweep.begin(outer_n);
        self.sweep.finish_seeding();
        for &m in self.outer_alpha.iter().rev() {
            let i = m.index();
            let bp = self.outer_beta_pos[i];
            let start = self.sweep.prefix_max(bp);
            self.oy[i] = start;
            self.sweep.update(bp, start + self.outer_dims[i].h);
        }
    }

    /// Translates the cached island-local rectangles to their island origins;
    /// free modules take their outer coordinates directly. Requires
    /// [`HotSpEval::build_outer`] for the current proposal.
    fn assemble_islands(&mut self) {
        for &m in &self.outer_alpha {
            match self.module_to_island[m.index()] {
                Some(gi) => {
                    let geometry = &self.islands[gi as usize];
                    let (gx, gy) = (self.ox[m.index()], self.oy[m.index()]);
                    for &(member, local) in &geometry.rects {
                        self.isl_x[member.index()] = gx + local.x_min;
                        self.isl_y[member.index()] = gy + local.y_min;
                    }
                }
                None => {
                    self.isl_x[m.index()] = self.ox[m.index()];
                    self.isl_y[m.index()] = self.oy[m.index()];
                }
            }
        }
    }

    /// Bounding-box area the island construction would produce, from the
    /// outer pack and the cached per-island local bounding boxes — without
    /// materialising the per-member coordinates.
    fn islands_bbox_area(&self) -> i128 {
        let mut any = false;
        let mut min_x = Coord::MAX;
        let mut min_y = Coord::MAX;
        let mut max_x = Coord::MIN;
        let mut max_y = Coord::MIN;
        for &m in &self.outer_alpha {
            let i = m.index();
            let (lo_x, lo_y, hi_x, hi_y) = match self.module_to_island[i] {
                Some(gi) => {
                    let b = self.island_bbox[gi as usize];
                    (
                        self.ox[i] + b.x_min,
                        self.oy[i] + b.y_min,
                        self.ox[i] + b.x_max,
                        self.oy[i] + b.y_max,
                    )
                }
                None => (
                    self.ox[i],
                    self.oy[i],
                    self.ox[i] + self.dims[i].w,
                    self.oy[i] + self.dims[i].h,
                ),
            };
            min_x = min_x.min(lo_x);
            min_y = min_y.min(lo_y);
            max_x = max_x.max(hi_x);
            max_y = max_y.max(hi_y);
            any = true;
        }
        if !any {
            return i128::MAX;
        }
        i128::from(max_x - min_x) * i128::from(max_y - min_y)
    }

    /// Bounding-box area of the modules of `sp` at the given coordinates
    /// (matches `Placement::bounding_rect().area()`).
    fn bbox_area(&self, sp: &SequencePair, x: &[Coord], y: &[Coord]) -> i128 {
        let mut any = false;
        let mut min_x = Coord::MAX;
        let mut min_y = Coord::MAX;
        let mut max_x = Coord::MIN;
        let mut max_y = Coord::MIN;
        for &m in sp.alpha() {
            let i = m.index();
            min_x = min_x.min(x[i]);
            min_y = min_y.min(y[i]);
            max_x = max_x.max(x[i] + self.dims[i].w);
            max_y = max_y.max(y[i] + self.dims[i].h);
            any = true;
        }
        if !any {
            return i128::MAX;
        }
        i128::from(max_x - min_x) * i128::from(max_y - min_y)
    }

    /// `Placement::symmetry_error` over one of the coordinate sets.
    fn symmetry_error_of(&self, sp: &SequencePair, source: SymmetrySource) -> Coord {
        let (x, y) = match source {
            SymmetrySource::Iterative => (&self.xi, &self.yi),
            SymmetrySource::Final => (&self.fx, &self.fy),
        };
        self.constraints
            .symmetry_groups()
            .iter()
            .map(|g| {
                g.axis_error_with(|m| {
                    if sp.contains(m) {
                        let i = m.index();
                        Some((2 * x[i] + self.dims[i].w, 2 * y[i] + self.dims[i].h))
                    } else {
                        None
                    }
                })
            })
            .max()
            .unwrap_or(0)
    }

    /// `Placement::hot_cost` over the final coordinates, with the wirelength
    /// evaluated incrementally through [`DeltaCost`].
    fn hot_cost(&mut self, sp: &SequencePair) -> f64 {
        self.delta.begin();
        let mut min_x = Coord::MAX;
        let mut min_y = Coord::MAX;
        let mut max_x = Coord::MIN;
        let mut max_y = Coord::MIN;
        let mut any = false;
        for &m in sp.alpha() {
            let i = m.index();
            let rect = Rect::new(
                self.fx[i],
                self.fy[i],
                self.fx[i] + self.dims[i].w,
                self.fy[i] + self.dims[i].h,
            );
            min_x = min_x.min(rect.x_min);
            min_y = min_y.min(rect.y_min);
            max_x = max_x.max(rect.x_max);
            max_y = max_y.max(rect.y_max);
            any = true;
            self.delta.update(m, Some(rect));
        }
        let wirelength = self.delta.total();
        let area: i128 =
            if any { i128::from(max_x - min_x) * i128::from(max_y - min_y) } else { 0 };
        area as f64 + self.wirelength_weight * wirelength
    }
}

/// Which coordinate set a symmetry-error query reads.
#[derive(Debug, Clone, Copy)]
enum SymmetrySource {
    Iterative,
    Final,
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::pack::pack_lcs;
    use apls_circuit::{Module, Netlist};
    use proptest::prelude::*;

    fn id(i: usize) -> ModuleId {
        ModuleId::from_index(i)
    }

    /// A circuit whose nets give every module a wirelength stake: a chain of
    /// two-pin nets plus one net spanning everything.
    fn chain_netlist(dims: &[Dims]) -> Netlist {
        let mut nl = Netlist::new("prop");
        let ids: Vec<ModuleId> = dims
            .iter()
            .enumerate()
            .map(|(i, &d)| nl.add_module(Module::new(format!("m{i}"), d)))
            .collect();
        for w in ids.windows(2) {
            nl.add_net(format!("c{}", w[0].index()), [w[0], w[1]]);
        }
        if ids.len() >= 2 {
            nl.add_net("all", ids.clone());
        }
        nl
    }

    /// One scripted perturbation of the encoding (or the geometry).
    #[derive(Debug, Clone)]
    enum Step {
        /// Swap two α positions.
        SwapAlpha(usize, usize),
        /// Swap two β positions.
        SwapBeta(usize, usize),
        /// Swap two modules in both sequences.
        SwapBoth(usize, usize),
        /// Rotate one module (swap its width and height). Changes the dims
        /// the sweep caches were built over, so the evaluator must take the
        /// full-resweep fallback (`touched = None`).
        Rotate(usize),
    }

    type ArbCase = (Vec<Dims>, Vec<ModuleId>, Vec<ModuleId>, Vec<(Step, bool)>);

    fn arb_case() -> impl Strategy<Value = ArbCase> {
        (2usize..12).prop_flat_map(|n| {
            let perm = || {
                Just((0..n).collect::<Vec<usize>>())
                    .prop_shuffle()
                    .prop_map(|v| v.into_iter().map(id).collect::<Vec<ModuleId>>())
            };
            let step = (0u8..4, 0usize..n, 0usize..n, 0u8..2).prop_map(|(kind, i, j, acc)| {
                let step = match kind {
                    0 => Step::SwapAlpha(i, j),
                    1 => Step::SwapBeta(i, j),
                    2 => Step::SwapBoth(i, j),
                    _ => Step::Rotate(i),
                };
                (step, acc == 1)
            });
            (
                proptest::collection::vec((5i64..60, 5i64..60), n)
                    .prop_map(|v| v.into_iter().map(|(w, h)| Dims::new(w, h)).collect()),
                perm(),
                perm(),
                proptest::collection::vec(step, 1..30),
            )
        })
    }

    proptest! {
        /// The incremental evaluator's base pack equals `pack_lcs` — exact
        /// coordinates, exact cost — after arbitrary accepted/rejected
        /// swap/rotate sequences, including the full-resweep fallback that a
        /// dims change (rotation) forces.
        #[test]
        fn incremental_pack_matches_pack_lcs_under_swaps_and_rotations(
            (dims, alpha, beta, script) in arb_case()
        ) {
            let n = dims.len();
            let netlist = chain_netlist(&dims);
            let adjacency = NetAdjacency::new(&netlist);
            let constraints = ConstraintSet::new();
            let mut sp = SequencePair::from_sequences(alpha, beta).expect("same module set");
            let mut dims = dims;

            let mut eval = HotSpEval::new(
                &constraints,
                dims.clone(),
                adjacency.clone(),
                &sp,
                HotMode::Exact,
                0.5,
            );

            // Reference cost of the current encoding: a fresh `pack_lcs` and a
            // fresh full wirelength sweep every time.
            let reference = |sp: &SequencePair, dims: &[Dims], adj: &NetAdjacency| -> (Vec<Option<Rect>>, f64) {
                let fp = pack_lcs(sp, dims);
                let mut delta = DeltaCost::new(adj.clone(), dims.len());
                delta.begin();
                let wl = delta.refresh_all(|m| fp.rect_of(m));
                let mut bbox: Option<Rect> = None;
                for &(_, r) in fp.rects() {
                    bbox = Some(match bbox {
                        Some(b) => b.union(&r),
                        None => r,
                    });
                }
                let area = bbox.map_or(0i128, |b| b.area());
                let rects = (0..dims.len()).map(|i| fp.rect_of(id(i))).collect();
                (rects, area as f64 + 0.5 * wl)
            };

            // Initial evaluation (auto-commits inside the evaluator).
            let cost = eval.evaluate(&sp, None);
            let (rects, want) = reference(&sp, &dims, &adjacency);
            prop_assert_eq!(cost, want);
            for (i, r) in rects.iter().enumerate() {
                let r = r.expect("packed");
                prop_assert_eq!((eval.fx[i], eval.fy[i]), (r.x_min, r.y_min));
            }

            for (step, accept) in script {
                // Apply the proposal, remembering how to revert it.
                let touched: Option<Vec<ModuleId>> = match step {
                    Step::SwapAlpha(i, j) => {
                        let (a, b) = (sp.alpha()[i], sp.alpha()[j]);
                        sp.swap_in_alpha(i, j);
                        Some(vec![a, b])
                    }
                    Step::SwapBeta(i, j) => {
                        let (a, b) = (sp.beta()[i], sp.beta()[j]);
                        sp.swap_in_beta(i, j);
                        Some(vec![a, b])
                    }
                    Step::SwapBoth(i, j) => {
                        let (a, b) = (sp.alpha()[i], sp.alpha()[j]);
                        sp.swap_in_alpha(i, j);
                        let (bi, bj) = (sp.beta_position(a), sp.beta_position(b));
                        sp.swap_in_beta(bi, bj);
                        Some(vec![a, b])
                    }
                    Step::Rotate(i) => {
                        dims[i] = Dims::new(dims[i].h, dims[i].w);
                        eval.dims[i] = dims[i];
                        None // dims changed: the incremental window is invalid
                    }
                };

                let cost = eval.evaluate(&sp, touched.as_deref());
                let (rects, want) = reference(&sp, &dims, &adjacency);
                prop_assert_eq!(cost, want);
                for (i, r) in rects.iter().enumerate() {
                    let r = r.expect("packed");
                    prop_assert_eq!((eval.fx[i], eval.fy[i]), (r.x_min, r.y_min));
                }

                if accept {
                    eval.commit();
                } else {
                    eval.rollback();
                    // Revert the proposal (every step is an involution).
                    match step {
                        Step::SwapAlpha(i, j) => sp.swap_in_alpha(i, j),
                        Step::SwapBeta(i, j) => sp.swap_in_beta(i, j),
                        Step::SwapBoth(i, j) => {
                            let (a, b) = (sp.alpha()[i], sp.alpha()[j]);
                            sp.swap_in_alpha(i, j);
                            let (bi, bj) = (sp.beta_position(a), sp.beta_position(b));
                            sp.swap_in_beta(bi, bj);
                        }
                        Step::Rotate(i) => {
                            dims[i] = Dims::new(dims[i].h, dims[i].w);
                            eval.dims[i] = dims[i];
                        }
                    }
                }
            }
        }
    }
}
