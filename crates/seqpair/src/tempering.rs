//! Parallel-tempering sequence-pair placer.
//!
//! The fifth portfolio lane: `K` replicas of the symmetric-feasible
//! sequence-pair annealer run at a geometric ladder of temperatures and
//! exchange configurations between rounds (see
//! [`apls_anneal::tempering`]). Every replica scores proposals through the
//! incremental [`crate::anneal`] hot path, so the lane inherits the
//! delta-HPWL and suffix-resweep packing machinery unchanged.
//!
//! Determinism: replica RNGs derive from `SeedStream::seed_for(lane, k)` and
//! the swap schedule from one serial pinned-seed RNG, so a run is a pure
//! function of its configuration — bit-identical at any worker thread count.

use crate::anneal::{SeqPairPlacer, SeqPairPlacerConfig, SymmetryMode};
use crate::SequencePair;
use apls_anneal::tempering::{run_tempering_traced, TemperingConfig, TemperingStats};
use apls_anneal::Schedule;
use apls_circuit::{ConstraintSet, Netlist, Placement, PlacementMetrics};
use apls_telemetry::Telemetry;

/// The seed-stream lane of the tempering engine (lanes 1–4 belong to the
/// portfolio's other engines; see `apls-portfolio`'s `PortfolioEngine::lane`).
pub const TEMPERING_LANE: u64 = 5;

/// Configuration of the parallel-tempering sequence-pair placer.
#[derive(Debug, Clone)]
pub struct TemperingPlacerConfig {
    /// Root seed; replica and swap RNGs derive from it deterministically.
    pub seed: u64,
    /// Base cooling schedule (slot 0 of the ladder follows it exactly).
    pub schedule: Schedule,
    /// Weight of the wirelength term relative to the area term.
    pub wirelength_weight: f64,
    /// Symmetry handling mode of every replica.
    pub symmetry_mode: SymmetryMode,
    /// Number of temperature replicas.
    pub replicas: usize,
    /// Geometric spacing between adjacent ladder slots.
    pub ladder_ratio: f64,
}

impl Default for TemperingPlacerConfig {
    fn default() -> Self {
        TemperingPlacerConfig {
            seed: 1,
            schedule: Schedule::for_problem_size(32),
            wirelength_weight: 0.5,
            symmetry_mode: SymmetryMode::Exact,
            replicas: 4,
            ladder_ratio: 2.0,
        }
    }
}

impl TemperingPlacerConfig {
    /// A configuration scaled to the circuit size.
    #[must_use]
    pub fn for_netlist(netlist: &Netlist) -> Self {
        TemperingPlacerConfig {
            schedule: Schedule::for_problem_size(netlist.module_count()),
            ..TemperingPlacerConfig::default()
        }
    }

    /// A fast configuration for tests and smoke runs.
    #[must_use]
    pub fn fast(seed: u64) -> Self {
        TemperingPlacerConfig {
            seed,
            schedule: Schedule::fast(),
            ..TemperingPlacerConfig::default()
        }
    }
}

/// Result of a parallel-tempering placement run.
#[derive(Debug, Clone)]
pub struct TemperingResult {
    /// The best placement found across all replicas.
    pub placement: Placement,
    /// Metrics of that placement.
    pub metrics: PlacementMetrics,
    /// Largest symmetry deviation of the placement (doubled dbu).
    pub symmetry_error: i64,
    /// Best sequence-pair encoding.
    pub sequence_pair: SequencePair,
    /// Tempering statistics (aggregated over all replicas).
    pub stats: TemperingStats,
}

/// The parallel-tempering sequence-pair placer.
///
/// # Example
///
/// ```
/// use apls_circuit::benchmarks::fig1_circuit;
/// use apls_seqpair::tempering::{TemperingPlacerConfig, TemperingSeqPairPlacer};
///
/// let (circuit, _) = fig1_circuit();
/// let placer = TemperingSeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
/// let result = placer.run(&TemperingPlacerConfig::fast(7));
/// assert_eq!(result.metrics.overlap_area, 0);
/// assert_eq!(result.symmetry_error, 0);
/// ```
#[derive(Debug, Clone)]
pub struct TemperingSeqPairPlacer<'a> {
    netlist: &'a Netlist,
    constraints: &'a ConstraintSet,
}

impl<'a> TemperingSeqPairPlacer<'a> {
    /// Creates a placer for a netlist and its constraints.
    #[must_use]
    pub fn new(netlist: &'a Netlist, constraints: &'a ConstraintSet) -> Self {
        TemperingSeqPairPlacer { netlist, constraints }
    }

    /// Runs the parallel-tempering placement.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (no replicas or a ladder
    /// ratio below 1).
    #[must_use]
    pub fn run(&self, config: &TemperingPlacerConfig) -> TemperingResult {
        self.run_traced(config, &Telemetry::disabled())
    }

    /// [`TemperingSeqPairPlacer::run`] with telemetry (observe-only; results
    /// are bit-identical whatever collector is installed).
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (no replicas or a ladder
    /// ratio below 1).
    #[must_use]
    pub fn run_traced(
        &self,
        config: &TemperingPlacerConfig,
        telemetry: &Telemetry,
    ) -> TemperingResult {
        let base = SeqPairPlacerConfig {
            seed: config.seed,
            schedule: config.schedule,
            wirelength_weight: config.wirelength_weight,
            symmetry_mode: config.symmetry_mode,
        };
        let placer = SeqPairPlacer::new(self.netlist, self.constraints);
        // Every replica starts from the same canonical symmetric-feasible
        // encoding; their private RNG streams diverge from move 1.
        let states: Vec<_> = (0..config.replicas).map(|_| placer.make_state(&base)).collect();
        let tempering = TemperingConfig {
            seed: config.seed,
            lane: TEMPERING_LANE,
            replicas: config.replicas,
            ladder_ratio: config.ladder_ratio,
            schedule: config.schedule,
        };
        let (states, stats) = run_tempering_traced(states, &tempering, telemetry);

        let winner = &states[stats.best_replica];
        let best_sp = winner.best.clone().map(|(sp, _)| sp).unwrap_or_else(|| winner.sp.clone());
        let placement = winner.build_placement(&best_sp);
        let metrics = placement.metrics(self.netlist);
        let symmetry_error = placement.symmetry_error(self.constraints);
        TemperingResult { placement, metrics, symmetry_error, sequence_pair: best_sp, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::benchmarks::{self, fig1_circuit};

    #[test]
    fn tempering_produces_legal_symmetric_placements() {
        let (circuit, _) = fig1_circuit();
        let placer = TemperingSeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
        let result = placer.run(&TemperingPlacerConfig::fast(3));
        assert!(result.placement.is_complete());
        assert_eq!(result.metrics.overlap_area, 0);
        assert_eq!(result.symmetry_error, 0);
        assert!(result.stats.moves.attempted > 0);
        assert!(result.stats.rounds > 0);
    }

    #[test]
    fn tempering_does_not_worsen_the_initial_cost() {
        let circuit = benchmarks::comparator_v2();
        let placer = TemperingSeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
        let result = placer.run(&TemperingPlacerConfig::fast(4));
        assert!(result.stats.best_cost <= result.stats.initial_cost);
    }

    #[test]
    fn identical_seeds_reproduce_identical_results() {
        let (circuit, _) = fig1_circuit();
        let placer = TemperingSeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
        let a = placer.run(&TemperingPlacerConfig::fast(9));
        let b = placer.run(&TemperingPlacerConfig::fast(9));
        assert_eq!(a.sequence_pair, b.sequence_pair);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.stats.moves.accepted, b.stats.moves.accepted);
        assert_eq!(a.stats.swaps_accepted, b.stats.swaps_accepted);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let circuit = benchmarks::comparator_v2();
        let run_with = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| {
                TemperingSeqPairPlacer::new(&circuit.netlist, &circuit.constraints)
                    .run(&TemperingPlacerConfig::fast(11))
            })
        };
        let a = run_with(1);
        let b = run_with(4);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.sequence_pair, b.sequence_pair);
        assert_eq!(a.stats.best_cost, b.stats.best_cost);
        assert_eq!(a.stats.swaps_accepted, b.stats.swaps_accepted);
    }
}
