//! Packing a sequence-pair into coordinates.
//!
//! Two algorithms are provided:
//!
//! * [`pack_constraint_graph`] — the textbook O(n²) evaluation: build the
//!   horizontal and vertical constraint relations implied by the sequence-pair
//!   and compute longest paths;
//! * [`pack_lcs`] — the FAST-SP-style evaluation (Tang & Wong, reference [26]
//!   of the survey): x coordinates are a weighted longest-common-subsequence
//!   computation between α and β, y coordinates between reverse(α) and β. A
//!   Fenwick tree over β positions gives O(n log n).
//!
//! Both produce identical coordinates; the property tests in this crate assert
//! it and the `packing` Criterion bench compares their scaling (experiment E8
//! of DESIGN.md).

use crate::SequencePair;
use apls_circuit::ModuleId;
use apls_geometry::{Coord, Dims, Rect};

/// Which packing algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackAlgorithm {
    /// O(n²) constraint-graph longest path.
    ConstraintGraph,
    /// O(n log n) weighted-LCS (FAST-SP).
    #[default]
    WeightedLcs,
}

/// The result of packing a sequence-pair: one rectangle per module plus the
/// floorplan extents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedFloorplan {
    rects: Vec<(ModuleId, Rect)>,
    /// Slot of each module id in `rects` (`u32::MAX` = not in the floorplan),
    /// so [`PackedFloorplan::rect_of`] is an O(1) table lookup instead of a
    /// linear scan.
    slots: Vec<u32>,
    width: Coord,
    height: Coord,
}

impl PackedFloorplan {
    /// Rectangles of all modules, in α order.
    #[must_use]
    pub fn rects(&self) -> &[(ModuleId, Rect)] {
        &self.rects
    }

    /// Rectangle of one module (O(1), indexed by [`ModuleId::index`]).
    #[must_use]
    pub fn rect_of(&self, module: ModuleId) -> Option<Rect> {
        match self.slots.get(module.index()) {
            Some(&s) if s != u32::MAX => Some(self.rects[s as usize].1),
            _ => None,
        }
    }

    /// Floorplan width.
    #[must_use]
    pub fn width(&self) -> Coord {
        self.width
    }

    /// Floorplan height.
    #[must_use]
    pub fn height(&self) -> Coord {
        self.height
    }

    /// Floorplan bounding-box area.
    #[must_use]
    pub fn area(&self) -> i128 {
        i128::from(self.width) * i128::from(self.height)
    }
}

/// Looks up the footprint of a module by id.
///
/// The dimension table is indexed by [`ModuleId::index`]; the sequence-pair
/// packers require every module of the encoding to have an entry.
fn dims_of(dims: &[Dims], module: ModuleId) -> Dims {
    dims[module.index()]
}

/// Packs with the selected algorithm.
#[must_use]
pub fn pack(sp: &SequencePair, dims: &[Dims], algorithm: PackAlgorithm) -> PackedFloorplan {
    match algorithm {
        PackAlgorithm::ConstraintGraph => pack_constraint_graph(sp, dims),
        PackAlgorithm::WeightedLcs => pack_lcs(sp, dims),
    }
}

/// O(n²) constraint-graph packing.
///
/// `x(b) = max over a left-of b of x(a) + w(a)`, evaluated in α order (which
/// is a topological order of the horizontal constraint graph); symmetrically
/// for y with the below relation, evaluated in reverse-α order.
#[must_use]
pub fn pack_constraint_graph(sp: &SequencePair, dims: &[Dims]) -> PackedFloorplan {
    pack_with_bounds_constraint_graph(sp, dims, &LowerBounds::empty(sp.len()))
}

/// O(n log n) weighted-LCS packing (FAST-SP).
#[must_use]
pub fn pack_lcs(sp: &SequencePair, dims: &[Dims]) -> PackedFloorplan {
    let n = sp.len();
    if n == 0 {
        return PackedFloorplan { rects: Vec::new(), slots: Vec::new(), width: 0, height: 0 };
    }
    // X coordinates: process modules in alpha order. x(m) = prefix maximum of
    // (x(a) + w(a)) over already-processed modules a with beta_pos(a) <
    // beta_pos(m). A Fenwick tree over beta positions stores the running
    // maxima.
    let mut x = vec![0 as Coord; dims.len()];
    let mut fenwick = MaxFenwick::new(n);
    for &m in sp.alpha() {
        let bp = sp.beta_position(m);
        let start = fenwick.prefix_max(bp); // strictly-before positions
        x[m.index()] = start;
        fenwick.update(bp, start + dims_of(dims, m).w);
    }
    // Y coordinates: process modules in reverse alpha order; a is below b iff
    // a follows b in alpha and precedes it in beta, so among already-processed
    // modules (those after m in alpha) the ones with smaller beta position are
    // below m... (they are below m ⇒ m sits on top of them).
    let mut y = vec![0 as Coord; dims.len()];
    let mut fenwick_y = MaxFenwick::new(n);
    for &m in sp.alpha().iter().rev() {
        let bp = sp.beta_position(m);
        let start = fenwick_y.prefix_max(bp);
        y[m.index()] = start;
        fenwick_y.update(bp, start + dims_of(dims, m).h);
    }

    build_floorplan(sp, dims, &x, &y)
}

/// Per-module lower bounds on the packed coordinates.
///
/// The symmetric placement construction (see [`crate::place`]) repacks a
/// sequence-pair while forcing some modules to the right/up so that symmetry
/// constraints are met; lower bounds express that without changing the
/// encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerBounds {
    /// Minimum x of each module (indexed by module id index).
    pub min_x: Vec<Coord>,
    /// Minimum y of each module (indexed by module id index).
    pub min_y: Vec<Coord>,
}

impl LowerBounds {
    /// No additional bounds for `n` module-id slots.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        LowerBounds { min_x: vec![0; n], min_y: vec![0; n] }
    }

    /// Resizes the tables to cover at least `n` slots.
    pub fn ensure_len(&mut self, n: usize) {
        if self.min_x.len() < n {
            self.min_x.resize(n, 0);
            self.min_y.resize(n, 0);
        }
    }
}

/// Constraint-graph packing with per-module lower bounds.
#[must_use]
pub fn pack_with_bounds_constraint_graph(
    sp: &SequencePair,
    dims: &[Dims],
    bounds: &LowerBounds,
) -> PackedFloorplan {
    let n = sp.len();
    if n == 0 {
        return PackedFloorplan { rects: Vec::new(), slots: Vec::new(), width: 0, height: 0 };
    }
    let mut x = vec![0 as Coord; dims.len()];
    let mut y = vec![0 as Coord; dims.len()];

    // Horizontal: alpha order is a topological order of the left-of DAG.
    let alpha = sp.alpha();
    for (i, &b) in alpha.iter().enumerate() {
        let mut best = bounds.min_x.get(b.index()).copied().unwrap_or(0);
        for &a in &alpha[..i] {
            if sp.is_left_of(a, b) {
                best = best.max(x[a.index()] + dims_of(dims, a).w);
            }
        }
        x[b.index()] = best;
    }
    // Vertical: reverse alpha order is a topological order of the below DAG
    // (a below b ⇒ a after b in alpha).
    for (i, &b) in alpha.iter().enumerate().rev() {
        let mut best = bounds.min_y.get(b.index()).copied().unwrap_or(0);
        for &a in &alpha[i + 1..] {
            if sp.is_below(a, b) {
                best = best.max(y[a.index()] + dims_of(dims, a).h);
            }
        }
        y[b.index()] = best;
    }

    build_floorplan(sp, dims, &x, &y)
}

/// Weighted-LCS packing with per-module lower bounds.
///
/// Identical recurrence to [`pack_with_bounds_constraint_graph`]: the Fenwick
/// prefix maximum equals the maximum of `x(a) + w(a)` over all left-of
/// predecessors (modules earlier in both α and β), and the lower bound enters
/// the same `max`. Coordinates are therefore equal module-by-module; the
/// property tests assert it.
#[must_use]
pub fn pack_with_bounds_lcs(
    sp: &SequencePair,
    dims: &[Dims],
    bounds: &LowerBounds,
) -> PackedFloorplan {
    let n = sp.len();
    if n == 0 {
        return PackedFloorplan { rects: Vec::new(), slots: Vec::new(), width: 0, height: 0 };
    }
    let mut x = vec![0 as Coord; dims.len()];
    let mut fenwick = MaxFenwick::new(n);
    for &m in sp.alpha() {
        let bp = sp.beta_position(m);
        let bound = bounds.min_x.get(m.index()).copied().unwrap_or(0);
        let start = bound.max(fenwick.prefix_max(bp));
        x[m.index()] = start;
        fenwick.update(bp, start + dims_of(dims, m).w);
    }
    let mut y = vec![0 as Coord; dims.len()];
    let mut fenwick_y = MaxFenwick::new(n);
    for &m in sp.alpha().iter().rev() {
        let bp = sp.beta_position(m);
        let bound = bounds.min_y.get(m.index()).copied().unwrap_or(0);
        let start = bound.max(fenwick_y.prefix_max(bp));
        y[m.index()] = start;
        fenwick_y.update(bp, start + dims_of(dims, m).h);
    }

    build_floorplan(sp, dims, &x, &y)
}

fn build_floorplan(sp: &SequencePair, dims: &[Dims], x: &[Coord], y: &[Coord]) -> PackedFloorplan {
    let mut rects = Vec::with_capacity(sp.len());
    let mut slots = vec![u32::MAX; dims.len()];
    let mut width = 0;
    let mut height = 0;
    for &m in sp.alpha() {
        let d = dims_of(dims, m);
        let r = Rect::new(x[m.index()], y[m.index()], x[m.index()] + d.w, y[m.index()] + d.h);
        width = width.max(r.x_max);
        height = height.max(r.y_max);
        slots[m.index()] = u32::try_from(rects.len()).expect("module count fits in u32");
        rects.push((m, r));
    }
    PackedFloorplan { rects, slots, width, height }
}

/// Fenwick (binary indexed) tree over sequence positions storing prefix
/// maxima. Supports "maximum over positions strictly smaller than p" queries
/// and point updates that only ever increase values, which is exactly what the
/// weighted-LCS packing needs.
#[derive(Debug, Clone)]
pub(crate) struct MaxFenwick {
    tree: Vec<Coord>,
}

impl MaxFenwick {
    pub(crate) fn new(n: usize) -> Self {
        MaxFenwick { tree: vec![0; n + 1] }
    }

    /// Maximum over positions `0..p` (strictly before `p`), 0 when empty.
    pub(crate) fn prefix_max(&self, p: usize) -> Coord {
        let mut i = p; // 1-based internal indexing: positions 1..=p map to prefix of length p
        let mut best = 0;
        while i > 0 {
            best = best.max(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        best
    }

    /// Raises the value stored at position `p` (0-based) to at least `value`.
    pub(crate) fn update(&mut self, p: usize, value: Coord) {
        let mut i = p + 1;
        while i < self.tree.len() {
            if self.tree[i] < value {
                self.tree[i] = value;
            }
            i += i & i.wrapping_neg();
        }
    }

    /// Rebuilds the tree from one value per 0-based position (0 = no entry)
    /// in O(n), reusing the allocation. Equivalent to `new(n)` followed by
    /// `update(p, values[p])` for every position.
    pub(crate) fn rebuild_from(&mut self, values: &[Coord]) {
        let n = values.len();
        self.tree.clear();
        self.tree.resize(n + 1, 0);
        for (p, &v) in values.iter().enumerate() {
            if self.tree[p + 1] < v {
                self.tree[p + 1] = v;
            }
        }
        for i in 1..=n {
            let parent = i + (i & i.wrapping_neg());
            if parent <= n && self.tree[parent] < self.tree[i] {
                self.tree[parent] = self.tree[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_geometry::total_overlap_area;

    fn id(i: usize) -> ModuleId {
        ModuleId::from_index(i)
    }

    fn square_dims(n: usize, side: Coord) -> Vec<Dims> {
        vec![Dims::new(side, side); n]
    }

    #[test]
    fn identity_packs_into_a_row() {
        let sp = SequencePair::identity((0..3).map(id).collect());
        let dims = vec![Dims::new(10, 5), Dims::new(20, 8), Dims::new(5, 3)];
        for algo in [PackAlgorithm::ConstraintGraph, PackAlgorithm::WeightedLcs] {
            let fp = pack(&sp, &dims, algo);
            assert_eq!(fp.width(), 35);
            assert_eq!(fp.height(), 8);
            assert_eq!(fp.rect_of(id(0)).unwrap().origin().x, 0);
            assert_eq!(fp.rect_of(id(1)).unwrap().origin().x, 10);
            assert_eq!(fp.rect_of(id(2)).unwrap().origin().x, 30);
        }
    }

    #[test]
    fn reversed_alpha_packs_into_a_column() {
        // alpha: 2 1 0, beta: 0 1 2 => 0 below 1 below 2
        let sp = SequencePair::from_sequences(vec![id(2), id(1), id(0)], vec![id(0), id(1), id(2)])
            .unwrap();
        let dims = square_dims(3, 10);
        let fp = pack_lcs(&sp, &dims);
        assert_eq!(fp.width(), 10);
        assert_eq!(fp.height(), 30);
    }

    #[test]
    fn packing_is_overlap_free() {
        let sp = SequencePair::from_sequences(
            vec![id(4), id(1), id(0), id(5), id(2), id(3), id(6)],
            vec![id(4), id(1), id(2), id(3), id(5), id(0), id(6)],
        )
        .unwrap();
        let dims = vec![
            Dims::new(40, 30),
            Dims::new(30, 50),
            Dims::new(35, 25),
            Dims::new(35, 25),
            Dims::new(45, 70),
            Dims::new(50, 20),
            Dims::new(30, 50),
        ];
        for algo in [PackAlgorithm::ConstraintGraph, PackAlgorithm::WeightedLcs] {
            let fp = pack(&sp, &dims, algo);
            let rects: Vec<Rect> = fp.rects().iter().map(|(_, r)| *r).collect();
            assert_eq!(total_overlap_area(&rects), 0, "{algo:?}");
        }
    }

    #[test]
    fn both_algorithms_agree() {
        // a small pseudo-random stress over fixed permutations
        let perms: Vec<(Vec<usize>, Vec<usize>)> = vec![
            (vec![0, 1, 2, 3, 4], vec![4, 3, 2, 1, 0]),
            (vec![2, 0, 4, 1, 3], vec![0, 1, 2, 3, 4]),
            (vec![3, 1, 4, 0, 2], vec![1, 3, 0, 2, 4]),
        ];
        let dims = vec![
            Dims::new(12, 7),
            Dims::new(5, 20),
            Dims::new(9, 9),
            Dims::new(16, 4),
            Dims::new(3, 14),
        ];
        for (a, b) in perms {
            let sp = SequencePair::from_sequences(
                a.into_iter().map(id).collect(),
                b.into_iter().map(id).collect(),
            )
            .unwrap();
            let cg = pack_constraint_graph(&sp, &dims);
            let lcs = pack_lcs(&sp, &dims);
            assert_eq!(cg, lcs, "{sp}");
        }
    }

    #[test]
    fn lower_bounds_push_modules_right() {
        let sp = SequencePair::identity((0..2).map(id).collect());
        let dims = square_dims(2, 10);
        let mut bounds = LowerBounds::empty(2);
        bounds.min_x[1] = 50;
        let fp = pack_with_bounds_constraint_graph(&sp, &dims, &bounds);
        assert_eq!(fp.rect_of(id(1)).unwrap().origin().x, 50);
        assert_eq!(fp.width(), 60);
    }

    #[test]
    fn empty_pair_packs_to_nothing() {
        let sp = SequencePair::identity(vec![]);
        let fp = pack_lcs(&sp, &[]);
        assert_eq!(fp.width(), 0);
        assert_eq!(fp.height(), 0);
        assert!(fp.rects().is_empty());
    }

    #[test]
    fn area_is_width_times_height() {
        let sp = SequencePair::identity((0..4).map(id).collect());
        let dims = square_dims(4, 25);
        let fp = pack_lcs(&sp, &dims);
        assert_eq!(fp.area(), i128::from(fp.width()) * i128::from(fp.height()));
    }

    #[test]
    fn bounded_lcs_matches_bounded_constraint_graph() {
        let perms: Vec<(Vec<usize>, Vec<usize>)> = vec![
            (vec![0, 1, 2, 3, 4], vec![4, 3, 2, 1, 0]),
            (vec![2, 0, 4, 1, 3], vec![0, 1, 2, 3, 4]),
            (vec![3, 1, 4, 0, 2], vec![1, 3, 0, 2, 4]),
        ];
        let dims = vec![
            Dims::new(12, 7),
            Dims::new(5, 20),
            Dims::new(9, 9),
            Dims::new(16, 4),
            Dims::new(3, 14),
        ];
        let mut bounds = LowerBounds::empty(5);
        bounds.min_x[1] = 40;
        bounds.min_x[3] = 7;
        bounds.min_y[0] = 13;
        bounds.min_y[4] = 22;
        for (a, b) in perms {
            let sp = SequencePair::from_sequences(
                a.into_iter().map(id).collect(),
                b.into_iter().map(id).collect(),
            )
            .unwrap();
            let cg = pack_with_bounds_constraint_graph(&sp, &dims, &bounds);
            let lcs = pack_with_bounds_lcs(&sp, &dims, &bounds);
            assert_eq!(cg, lcs, "{sp}");
        }
    }

    #[test]
    fn fenwick_rebuild_matches_incremental_updates() {
        let values = [0, 5, 0, 12, 3, 0, 7, 9];
        let mut incremental = MaxFenwick::new(values.len());
        for (p, &v) in values.iter().enumerate() {
            incremental.update(p, v);
        }
        let mut rebuilt = MaxFenwick::new(0);
        rebuilt.rebuild_from(&values);
        for p in 0..=values.len() {
            assert_eq!(rebuilt.prefix_max(p), incremental.prefix_max(p), "prefix {p}");
        }
    }

    #[test]
    fn fenwick_prefix_max_behaviour() {
        let mut f = MaxFenwick::new(8);
        assert_eq!(f.prefix_max(8), 0);
        f.update(3, 10);
        assert_eq!(f.prefix_max(3), 0); // strictly before position 3
        assert_eq!(f.prefix_max(4), 10);
        f.update(0, 4);
        assert_eq!(f.prefix_max(1), 4);
        f.update(7, 99);
        assert_eq!(f.prefix_max(8), 99);
        assert_eq!(f.prefix_max(7), 10);
    }
}
