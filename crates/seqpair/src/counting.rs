//! The search-space reduction lemma of Section II.
//!
//! > *Lemma.* The number of symmetric-feasible sequence-pairs corresponding to
//! > a placement configuration with `n` cells and `G` symmetry groups, each
//! > group `k` containing `p_k` pairs of symmetric cells and `s_k`
//! > self-symmetric cells, is upper-bounded by
//! > `(n!)² / ((2p₁+s₁)! · … · (2p_G+s_G)!)`.
//!
//! For the Fig. 1 example (`n = 7`, one group with `p = s = 2`) this gives
//! `(7!)²/6! = 35,280` against `(7!)² = 25,401,600` sequence-pairs in total —
//! a 99.86 % reduction of the search space. [`sf_upper_bound`] evaluates the
//! formula, [`brute_force_sf_count`] enumerates all sequence-pairs of a small
//! configuration and counts the symmetric-feasible ones so that the lemma can
//! be cross-checked (experiment E3).

use crate::symmetry::is_symmetric_feasible;
use crate::SequencePair;
use apls_circuit::{ModuleId, SymmetryGroup};

/// Factorial as `f64` (exact up to 22!, far beyond any analog module count
/// where enumeration claims are made).
#[must_use]
pub fn factorial(n: u64) -> f64 {
    (1..=n).map(|v| v as f64).product()
}

/// Factorial as `u128`, or `None` on overflow (n ≥ 35).
#[must_use]
pub fn factorial_u128(n: u64) -> Option<u128> {
    let mut acc: u128 = 1;
    for v in 1..=u128::from(n) {
        acc = acc.checked_mul(v)?;
    }
    Some(acc)
}

/// Total number of sequence-pairs of `n` cells, `(n!)²`.
#[must_use]
pub fn total_sequence_pairs(n: u64) -> f64 {
    let f = factorial(n);
    f * f
}

/// The lemma's upper bound on the number of symmetric-feasible sequence-pairs.
///
/// `groups` lists `(p_k, s_k)` for every symmetry group.
///
/// # Example
///
/// ```
/// use apls_seqpair::counting::sf_upper_bound;
///
/// // Fig. 1: n = 7, one group with 2 pairs and 2 self-symmetric cells
/// let bound = sf_upper_bound(7, &[(2, 2)]);
/// assert_eq!(bound.round() as u64, 35_280);
/// ```
#[must_use]
pub fn sf_upper_bound(n: u64, groups: &[(u64, u64)]) -> f64 {
    let mut denom = 1.0;
    for &(p, s) in groups {
        denom *= factorial(2 * p + s);
    }
    total_sequence_pairs(n) / denom
}

/// Search-space reduction achieved by restricting to symmetric-feasible
/// encodings, as a percentage of the full sequence-pair space.
#[must_use]
pub fn reduction_percentage(n: u64, groups: &[(u64, u64)]) -> f64 {
    100.0 * (1.0 - sf_upper_bound(n, groups) / total_sequence_pairs(n))
}

/// Exhaustively counts the sequence-pairs of `modules` that satisfy property
/// (1) for `group`.
///
/// The complexity is `(n!)²` evaluations; keep `n ≤ 6` in tests and `n ≤ 7`
/// in release binaries.
#[must_use]
pub fn brute_force_sf_count(modules: &[ModuleId], group: &SymmetryGroup) -> u64 {
    let mut count = 0u64;
    let alphas = permutations(modules);
    let betas = alphas.clone();
    for alpha in &alphas {
        for beta in &betas {
            let sp = SequencePair::from_sequences(alpha.clone(), beta.clone())
                .expect("permutations of the same set");
            if is_symmetric_feasible(&sp, group) {
                count += 1;
            }
        }
    }
    count
}

/// Exhaustively counts all sequence-pairs of `modules` (sanity check:
/// `(n!)²`).
#[must_use]
pub fn brute_force_total_count(modules: &[ModuleId]) -> u64 {
    let f = permutations(modules).len() as u64;
    f * f
}

/// All permutations of a slice (lexicographic by construction order).
fn permutations(items: &[ModuleId]) -> Vec<Vec<ModuleId>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest: Vec<ModuleId> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            let mut perm = Vec::with_capacity(items.len());
            perm.push(head);
            perm.append(&mut tail);
            out.push(perm);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> ModuleId {
        ModuleId::from_index(i)
    }

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(5), 120.0);
        assert_eq!(factorial_u128(20), Some(2_432_902_008_176_640_000));
        assert_eq!(factorial_u128(40), None);
    }

    #[test]
    fn paper_example_numbers() {
        // (7!)² = 25,401,600 total; bound = 35,280; reduction 99.86 %
        assert_eq!(total_sequence_pairs(7) as u64, 25_401_600);
        assert_eq!(sf_upper_bound(7, &[(2, 2)]).round() as u64, 35_280);
        let red = reduction_percentage(7, &[(2, 2)]);
        assert!((red - 99.86).abs() < 0.01, "reduction was {red}");
    }

    #[test]
    fn bound_with_no_groups_is_total() {
        assert_eq!(sf_upper_bound(5, &[]), total_sequence_pairs(5));
        assert_eq!(reduction_percentage(5, &[]), 0.0);
    }

    #[test]
    fn brute_force_matches_total_for_small_n() {
        let modules: Vec<ModuleId> = (0..4).map(id).collect();
        assert_eq!(brute_force_total_count(&modules), 24 * 24);
    }

    #[test]
    fn brute_force_single_pair_matches_lemma() {
        // n = 3: one pair + one free cell. Lemma bound: (3!)²/2! = 18.
        let modules: Vec<ModuleId> = (0..3).map(id).collect();
        let group = SymmetryGroup::new("g").with_pair(id(0), id(1));
        let count = brute_force_sf_count(&modules, &group);
        let bound = sf_upper_bound(3, &[(1, 0)]) as u64;
        assert_eq!(bound, 18);
        assert_eq!(count, bound, "for a single group the lemma bound is attained");
    }

    #[test]
    fn brute_force_pair_plus_self_matches_lemma() {
        // n = 4: one group with one pair and one self-symmetric cell, one free
        // cell. Bound: (4!)²/3! = 96.
        let modules: Vec<ModuleId> = (0..4).map(id).collect();
        let group = SymmetryGroup::new("g").with_pair(id(0), id(1)).with_self_symmetric(id(2));
        let count = brute_force_sf_count(&modules, &group);
        let bound = sf_upper_bound(4, &[(1, 1)]) as u64;
        assert_eq!(bound, 96);
        assert_eq!(count, bound);
    }

    #[test]
    fn brute_force_two_pairs_is_within_bound() {
        // n = 5: two pairs + one free cell. Bound: (5!)²/4! = 600.
        let modules: Vec<ModuleId> = (0..5).map(id).collect();
        let group = SymmetryGroup::new("g").with_pair(id(0), id(1)).with_pair(id(2), id(3));
        let count = brute_force_sf_count(&modules, &group);
        let bound = sf_upper_bound(5, &[(2, 0)]) as u64;
        assert_eq!(bound, 600);
        assert!(count <= bound, "count {count} exceeds bound {bound}");
        assert!(count > 0);
    }

    #[test]
    fn permutation_count_is_factorial() {
        let modules: Vec<ModuleId> = (0..5).map(id).collect();
        assert_eq!(permutations(&modules).len(), 120);
    }
}
