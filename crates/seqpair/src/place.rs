//! Building symmetric placements from symmetric-feasible sequence-pairs.
//!
//! Packing an S-F sequence-pair with the plain longest-path evaluation yields
//! a legal placement, but not yet an exactly mirror-symmetric one: the paper
//! (references [2], [13]) constructs the symmetric placement during
//! evaluation. [`SymmetricPlacer`] implements that construction as an
//! iterative legalisation:
//!
//! 1. pack the sequence-pair (respecting any lower bounds accumulated so far);
//! 2. for every symmetry group, derive the smallest axis position compatible
//!    with the current coordinates, then raise per-module lower bounds so that
//!    every pair mirrors exactly about that axis and pair partners share a
//!    vertical centre;
//! 3. repeat until no bound changes.
//!
//! Because bounds only ever push modules right/up and the repacking step keeps
//! every sequence-pair ordering constraint satisfied, the intermediate and
//! final placements are always overlap-free; for symmetric-feasible encodings
//! with matched pair dimensions the iteration reaches an exactly symmetric
//! fixpoint (symmetry error 0).

use crate::pack::{pack_with_bounds_constraint_graph, LowerBounds, PackedFloorplan};
use crate::SequencePair;
use apls_circuit::{ConstraintSet, ModuleId, Netlist, Placement, SymmetryGroup};
use apls_geometry::{Coord, Dims, Orientation, Point, Rect};

/// Builds exactly symmetric placements from sequence-pairs.
#[derive(Debug, Clone)]
pub struct SymmetricPlacer<'a> {
    netlist: &'a Netlist,
    constraints: &'a ConstraintSet,
    dims: Vec<Dims>,
    max_iterations: usize,
}

impl<'a> SymmetricPlacer<'a> {
    /// Creates a placer for a netlist and its constraints.
    #[must_use]
    pub fn new(netlist: &'a Netlist, constraints: &'a ConstraintSet) -> Self {
        let dims = netlist.default_dims();
        let max_iterations = 3 * netlist.module_count() + 20;
        SymmetricPlacer { netlist, constraints, dims, max_iterations }
    }

    /// Overrides the module dimension table (e.g. to account for rotations or
    /// alternative shape variants chosen by the annealer).
    #[must_use]
    pub fn with_dims(mut self, dims: Vec<Dims>) -> Self {
        assert_eq!(
            dims.len(),
            self.netlist.module_count(),
            "dimension table must cover every module"
        );
        self.dims = dims;
        self
    }

    /// The dimension table currently in use.
    #[must_use]
    pub fn dims(&self) -> &[Dims] {
        &self.dims
    }

    /// Packs the sequence-pair *without* symmetry legalisation.
    ///
    /// Used by the penalty-based ablation mode (experiment E9): the resulting
    /// placement is legal but generally not symmetric.
    #[must_use]
    pub fn place_unconstrained(&self, sp: &SequencePair) -> Placement {
        let fp =
            pack_with_bounds_constraint_graph(sp, &self.dims, &LowerBounds::empty(self.dims.len()));
        self.floorplan_to_placement(&fp)
    }

    /// Packs the sequence-pair and legalises every symmetry group to an exact
    /// mirror placement.
    ///
    /// Two constructions are combined:
    ///
    /// 1. the *iterative legalisation* described in the module docs, which
    ///    keeps the compactness of the plain packing and converges to an exact
    ///    mirror placement for the common (non-crossed) encodings;
    /// 2. an always-exact *symmetry-island* construction (in the spirit of the
    ///    symmetry islands of reference [16] of the survey) used as a fallback
    ///    when the iteration does not reach an exact fixpoint, e.g. for
    ///    encodings where two pairs of the same group appear "crossed" so that
    ///    mirroring one pair keeps pushing the other.
    ///
    /// The returned placement is always overlap-free; its symmetry error is
    /// zero whenever pair partners have matched dimensions and the
    /// self-symmetric cells of each group share a width parity (exact axes do
    /// not exist on the integer grid otherwise).
    #[must_use]
    pub fn place(&self, sp: &SequencePair) -> Placement {
        let mut bounds = LowerBounds::empty(self.dims.len());
        let mut fp = pack_with_bounds_constraint_graph(sp, &self.dims, &bounds);
        let plain_width = fp.width();
        let mut converged = false;
        for _ in 0..self.max_iterations {
            let changed = self.tighten_bounds(&fp, &mut bounds);
            if !changed {
                converged = true;
                break;
            }
            fp = pack_with_bounds_constraint_graph(sp, &self.dims, &bounds);
            // Divergence guard: crossed-pair encodings can keep pushing each
            // other's mirror targets; once the floorplan has blown up well past
            // the unconstrained width the iteration will not recover.
            if fp.width() > 3 * plain_width.max(1) {
                converged = false;
                break;
            }
        }
        let islands = self.place_symmetry_islands(sp);
        let iterative = self.floorplan_to_placement(&fp);
        if converged && iterative.symmetry_error(self.constraints) == 0 {
            // both constructions are exact; keep the more compact one
            let area_iterative = iterative.bounding_rect().map_or(i128::MAX, |r| r.area());
            let area_islands = islands.bounding_rect().map_or(i128::MAX, |r| r.area());
            if area_iterative <= area_islands {
                return iterative;
            }
        }
        islands
    }

    /// Always-exact construction: every symmetry group becomes a rigid,
    /// internally mirrored island; islands and free cells are then packed with
    /// the sequence-pair restricted to one representative per island.
    #[must_use]
    pub fn place_symmetry_islands(&self, sp: &SequencePair) -> Placement {
        use std::collections::BTreeMap;

        // --- build each island's internal geometry --------------------------
        // island key = index of the symmetry group in the constraint set
        let groups = self.constraints.symmetry_groups();
        let mut islands: Vec<(ModuleId, IslandGeometry)> = Vec::new();
        let mut module_to_island: BTreeMap<ModuleId, usize> = BTreeMap::new();

        for group in groups {
            let Some(geometry) = island_geometry(group, &self.dims, |m| sp.contains(m)) else {
                continue;
            };
            // The representative is the member that appears first in alpha.
            let representative = geometry
                .members
                .iter()
                .copied()
                .min_by_key(|m| sp.alpha_position(*m))
                .expect("non-empty island");
            let island_index = islands.len();
            for &m in &geometry.members {
                module_to_island.insert(m, island_index);
            }
            islands.push((representative, geometry));
        }

        // --- outer sequence-pair over islands (keyed by their representative)
        // and free modules ---------------------------------------------------
        let reduce = |seq: &[ModuleId]| -> Vec<ModuleId> {
            let mut out = Vec::new();
            let mut seen_island = vec![false; islands.len()];
            for &m in seq {
                match module_to_island.get(&m) {
                    Some(&gi) => {
                        if !seen_island[gi] {
                            seen_island[gi] = true;
                            out.push(islands[gi].0);
                        }
                    }
                    None => out.push(m),
                }
            }
            out
        };
        let outer_alpha = reduce(sp.alpha());
        let outer_beta = reduce(sp.beta());
        let outer_sp = SequencePair::from_sequences(outer_alpha, outer_beta)
            .expect("reduction keeps both sequences over the same set");
        let mut outer_dims = self.dims.clone();
        for (representative, geometry) in &islands {
            outer_dims[representative.index()] = geometry.dims;
        }
        let outer_fp = pack_with_bounds_constraint_graph(
            &outer_sp,
            &outer_dims,
            &LowerBounds::empty(outer_dims.len()),
        );

        // --- assemble the final placement -----------------------------------
        let mut placement = Placement::new(self.netlist);
        for &(m, r) in outer_fp.rects() {
            match module_to_island.get(&m) {
                Some(&gi) => {
                    let (_, geometry) = &islands[gi];
                    let origin = r.origin();
                    for &(member, local) in &geometry.rects {
                        let orientation = self.orientation_for(member);
                        placement.place(member, local.translated(origin), orientation, 0);
                    }
                }
                None => {
                    placement.place(m, r, Orientation::R0, 0);
                }
            }
        }
        placement
    }

    fn orientation_for(&self, m: apls_circuit::ModuleId) -> Orientation {
        match self.constraints.symmetry_group_of(m) {
            Some(g) if g.pairs().iter().any(|&(_, right)| right == m) => Orientation::MY,
            _ => Orientation::R0,
        }
    }

    /// Raises the lower bounds needed to make every symmetry group exact given
    /// the current floorplan. Returns `true` when any bound increased beyond a
    /// module's current coordinate.
    fn tighten_bounds(&self, fp: &PackedFloorplan, bounds: &mut LowerBounds) -> bool {
        let mut changed = false;
        for group in self.constraints.symmetry_groups() {
            changed |= self.tighten_group(group, fp, bounds);
        }
        changed
    }

    fn tighten_group(
        &self,
        group: &SymmetryGroup,
        fp: &PackedFloorplan,
        bounds: &mut LowerBounds,
    ) -> bool {
        tighten_group_with(group, &self.dims, |m| fp.rect_of(m), bounds)
    }

    fn floorplan_to_placement(&self, fp: &PackedFloorplan) -> Placement {
        let mut placement = Placement::new(self.netlist);
        for &(m, r) in fp.rects() {
            // Right partners of symmetric pairs are conventionally mirrored so
            // that their internal geometry reflects about the axis.
            let orientation = match self.constraints.symmetry_group_of(m) {
                Some(g) => {
                    let is_right_partner = g.pairs().iter().any(|&(_, right)| right == m);
                    if is_right_partner {
                        Orientation::MY
                    } else {
                        Orientation::R0
                    }
                }
                None => Orientation::R0,
            };
            placement.place(m, r, orientation, 0);
        }
        placement
    }
}

/// The internal geometry of one symmetry island: a rigid, exactly mirrored
/// sub-floorplan shared by the cold placer and the incremental hot evaluator
/// (which caches it per run — it depends only on the group, the dimension
/// table, and which members are present, never on the sequence-pair order).
#[derive(Debug, Clone)]
pub(crate) struct IslandGeometry {
    /// Present members, pairs first (left then right), then self-symmetric.
    pub(crate) members: Vec<ModuleId>,
    /// Footprint of the island in the outer packing.
    pub(crate) dims: Dims,
    /// Island-relative rectangles of the members.
    pub(crate) rects: Vec<(ModuleId, Rect)>,
}

/// Builds the mirrored internal geometry of one symmetry group, or `None`
/// when no member is present under `contains`.
pub(crate) fn island_geometry(
    group: &SymmetryGroup,
    dims: &[Dims],
    contains: impl Fn(ModuleId) -> bool,
) -> Option<IslandGeometry> {
    let members: Vec<_> = group.members().into_iter().filter(|m| contains(*m)).collect();
    if members.is_empty() {
        return None;
    }
    let max_pair_width = group
        .pairs()
        .iter()
        .flat_map(|&(l, r)| [l, r])
        .filter(|m| contains(*m))
        .map(|m| dims[m.index()].w)
        .max()
        .unwrap_or(0);
    let self_widths: Vec<Coord> = group
        .self_symmetric()
        .iter()
        .filter(|m| contains(**m))
        .map(|m| dims[m.index()].w)
        .collect();
    let max_self_width = self_widths.iter().copied().max().unwrap_or(0);

    // island width: two pair columns or the widest self-symmetric cell, with
    // the parity chosen so self-symmetric cells centre exactly on the axis
    let mut width = (2 * max_pair_width).max(max_self_width).max(1);
    if let Some(&w0) = self_widths.first() {
        if (width - w0).rem_euclid(2) != 0 {
            width += 1;
        }
    }
    let axis_x2 = width; // doubled axis coordinate
    let right_start = width / 2 + width % 2; // ceil(width / 2)

    let mut rects: Vec<(ModuleId, Rect)> = Vec::new();
    let mut pair_y: Coord = 0;
    for &(l, r) in group.pairs() {
        if !contains(l) || !contains(r) {
            continue;
        }
        let dl = dims[l.index()];
        let dr = dims[r.index()];
        let row_h = dl.h.max(dr.h);
        // right member left-aligned at the axis, left member its mirror
        let ry = pair_y + (row_h - dr.h) / 2;
        let right_rect = Rect::from_dims(Point::new(right_start, ry), dr);
        let ly = pair_y + (row_h - dl.h) / 2;
        let left_rect = Rect::from_dims(Point::new(axis_x2 - right_start - dl.w, ly), dl);
        rects.push((r, right_rect));
        rects.push((l, left_rect));
        pair_y += row_h;
    }
    // self-symmetric cells stacked above the pair rows, centred on the axis
    let mut self_y: Coord = pair_y;
    for &s in group.self_symmetric() {
        if !contains(s) {
            continue;
        }
        let ds = dims[s.index()];
        let sx = (width - ds.w) / 2;
        rects.push((s, Rect::from_dims(Point::new(sx, self_y), ds)));
        self_y += ds.h;
    }
    let height = self_y.max(pair_y);
    Some(IslandGeometry { members, dims: Dims::new(width, height.max(1)), rects })
}

/// Raises the lower bounds one symmetry group needs to become exactly
/// mirrored, reading current coordinates through `rect_of`. Shared by the
/// clone-free cold path ([`SymmetricPlacer`]) and the SoA hot evaluator so
/// the two legalisations cannot diverge.
pub(crate) fn tighten_group_with(
    group: &SymmetryGroup,
    dims: &[Dims],
    rect_of: impl Fn(ModuleId) -> Option<Rect>,
    bounds: &mut LowerBounds,
) -> bool {
    let mut changed = false;

    // --- vertical alignment of pair partners -------------------------
    for &(a, b) in group.pairs() {
        let (Some(ra), Some(rb)) = (rect_of(a), rect_of(b)) else { continue };
        let target_c2y = ra.center_x2().1.max(rb.center_x2().1);
        for (m, r) in [(a, ra), (b, rb)] {
            let h = r.height();
            // smallest y with 2y + h >= target, i.e. mirror-aligned centres
            let required_y = div_ceil(target_c2y - h, 2);
            if required_y > r.y_min {
                bounds.min_y[m.index()] = bounds.min_y[m.index()].max(required_y);
                changed = true;
            }
        }
    }

    // --- horizontal mirroring about a common axis --------------------
    // A is the doubled axis coordinate: pairs need c2x(p) + c2x(q) = 2A,
    // self-symmetric cells need c2x(s) = A.
    let mut required_a: Coord = 0;
    let mut have_any = false;
    for &(a, b) in group.pairs() {
        let (Some(ra), Some(rb)) = (rect_of(a), rect_of(b)) else { continue };
        required_a = required_a.max(div_ceil(ra.center_x2().0 + rb.center_x2().0, 2));
        have_any = true;
    }
    for &s in group.self_symmetric() {
        let Some(rs) = rect_of(s) else { continue };
        required_a = required_a.max(rs.center_x2().0);
        have_any = true;
    }
    if !have_any {
        return changed;
    }
    // Parity adjustment: self-symmetric cells need A ≡ w_s (mod 2); take
    // the first self-symmetric cell as the reference (mixed parities
    // cannot be exact on an integer grid and fall back to rounding).
    if let Some(&s) = group.self_symmetric().first() {
        let w = dims[s.index()].w;
        if (required_a - w).rem_euclid(2) != 0 {
            required_a += 1;
        }
    }

    for &(a, b) in group.pairs() {
        let (Some(ra), Some(rb)) = (rect_of(a), rect_of(b)) else { continue };
        // p is the left partner, q the right partner.
        let (p, rp, q, rq) =
            if ra.center_x2().0 <= rb.center_x2().0 { (a, ra, b, rb) } else { (b, rb, a, ra) };
        let _ = p;
        let wq = rq.width();
        let required_xq = div_ceil(2 * required_a - rp.center_x2().0 - wq, 2);
        if required_xq > rq.x_min {
            bounds.min_x[q.index()] = bounds.min_x[q.index()].max(required_xq);
            changed = true;
        }
    }
    for &s in group.self_symmetric() {
        let Some(rs) = rect_of(s) else { continue };
        let required_xs = div_ceil(required_a - rs.width(), 2);
        if required_xs > rs.x_min {
            bounds.min_x[s.index()] = bounds.min_x[s.index()].max(required_xs);
            changed = true;
        }
    }
    changed
}

/// Ceiling division for possibly-negative numerators with positive divisors.
pub(crate) fn div_ceil(value: Coord, divisor: Coord) -> Coord {
    debug_assert!(divisor > 0);
    value.div_euclid(divisor) + if value.rem_euclid(divisor) != 0 { 1 } else { 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetry::{
        canonical_symmetric_feasible, is_symmetric_feasible_for_all, SymmetricMoveSet,
    };
    use apls_anneal::rng::SeededRng;
    use apls_circuit::benchmarks::{self, fig1_circuit};
    use apls_circuit::ModuleId;

    #[test]
    fn fig1_sequence_pair_builds_an_exact_symmetric_placement() {
        let (circuit, ids) = fig1_circuit();
        let alpha = vec![ids[4], ids[1], ids[0], ids[5], ids[2], ids[3], ids[6]];
        let beta = vec![ids[4], ids[1], ids[2], ids[3], ids[5], ids[0], ids[6]];
        let sp = SequencePair::from_sequences(alpha, beta).unwrap();
        let placer = SymmetricPlacer::new(&circuit.netlist, &circuit.constraints);
        let placement = placer.place(&sp);
        assert!(placement.is_complete());
        let metrics = placement.metrics(&circuit.netlist);
        assert_eq!(metrics.overlap_area, 0);
        assert_eq!(placement.symmetry_error(&circuit.constraints), 0);
    }

    #[test]
    fn canonical_encoding_of_fig1_is_symmetric_too() {
        let (circuit, ids) = fig1_circuit();
        let sp = canonical_symmetric_feasible(&ids, &circuit.constraints);
        let placer = SymmetricPlacer::new(&circuit.netlist, &circuit.constraints);
        let placement = placer.place(&sp);
        assert_eq!(placement.metrics(&circuit.netlist).overlap_area, 0);
        assert_eq!(placement.symmetry_error(&circuit.constraints), 0);
    }

    #[test]
    fn random_sf_encodings_stay_legal_and_symmetric() {
        let (circuit, ids) = fig1_circuit();
        let moves = SymmetricMoveSet::new(circuit.constraints.clone());
        let mut sp = canonical_symmetric_feasible(&ids, &circuit.constraints);
        let mut rng = SeededRng::new(2024);
        let placer = SymmetricPlacer::new(&circuit.netlist, &circuit.constraints);
        for step in 0..200 {
            moves.perturb(&mut sp, &mut rng);
            assert!(is_symmetric_feasible_for_all(&sp, &circuit.constraints));
            let placement = placer.place(&sp);
            let metrics = placement.metrics(&circuit.netlist);
            assert_eq!(metrics.overlap_area, 0, "overlap at step {step}: {sp}");
            assert_eq!(
                placement.symmetry_error(&circuit.constraints),
                0,
                "asymmetric at step {step}: {sp}"
            );
        }
    }

    #[test]
    fn benchmark_circuits_with_symmetry_groups_legalise_exactly() {
        let circuit = benchmarks::miller_v2();
        let ids: Vec<ModuleId> = circuit.netlist.module_ids().collect();
        let sp = canonical_symmetric_feasible(&ids, &circuit.constraints);
        let placer = SymmetricPlacer::new(&circuit.netlist, &circuit.constraints);
        let placement = placer.place(&sp);
        assert_eq!(placement.metrics(&circuit.netlist).overlap_area, 0);
        assert_eq!(placement.symmetry_error(&circuit.constraints), 0);
    }

    #[test]
    fn unconstrained_placement_is_legal_but_not_necessarily_symmetric() {
        let (circuit, ids) = fig1_circuit();
        let sp = canonical_symmetric_feasible(&ids, &circuit.constraints);
        let placer = SymmetricPlacer::new(&circuit.netlist, &circuit.constraints);
        let placement = placer.place_unconstrained(&sp);
        assert_eq!(placement.metrics(&circuit.netlist).overlap_area, 0);
    }

    #[test]
    fn symmetric_construction_stays_above_the_module_area_lower_bound() {
        let (circuit, ids) = fig1_circuit();
        let sp = canonical_symmetric_feasible(&ids, &circuit.constraints);
        let placer = SymmetricPlacer::new(&circuit.netlist, &circuit.constraints);
        let plain = placer.place_unconstrained(&sp).metrics(&circuit.netlist);
        let symmetric = placer.place(&sp).metrics(&circuit.netlist);
        let total = circuit.netlist.total_module_area();
        assert!(plain.bounding_area >= total);
        assert!(symmetric.bounding_area >= total);
        // the symmetric construction may rearrange the floorplan (symmetry
        // islands), but it must never blow up past a loose multiple of the
        // unconstrained packing
        assert!(symmetric.bounding_area <= 4 * plain.bounding_area);
    }

    #[test]
    fn island_construction_is_exact_even_for_crossed_encodings() {
        // the crossed-pair encoding that defeats the iterative legalisation
        // (two pairs of one group interleaved with free cells) must still come
        // out exactly symmetric via the island construction
        let mut netlist = Netlist::new("crossed");
        let mut ids = Vec::new();
        for i in 0..7 {
            ids.push(netlist.add_module(apls_circuit::Module::new(
                format!("M{i}"),
                apls_geometry::Dims::new(5, 5),
            )));
        }
        let mut constraints = ConstraintSet::new();
        constraints.add_symmetry_group(
            apls_circuit::SymmetryGroup::new("g")
                .with_pair(ids[0], ids[1])
                .with_pair(ids[2], ids[3]),
        );
        let order = vec![ids[1], ids[3], ids[2], ids[5], ids[4], ids[0], ids[6]];
        let sp = SequencePair::from_sequences(order.clone(), order).unwrap();
        let placer = SymmetricPlacer::new(&netlist, &constraints);
        let placement = placer.place(&sp);
        assert_eq!(placement.metrics(&netlist).overlap_area, 0);
        assert_eq!(placement.symmetry_error(&constraints), 0);
    }

    #[test]
    fn div_ceil_handles_negatives() {
        assert_eq!(div_ceil(5, 2), 3);
        assert_eq!(div_ceil(4, 2), 2);
        assert_eq!(div_ceil(-3, 2), -1);
        assert_eq!(div_ceil(-4, 2), -2);
        assert_eq!(div_ceil(0, 2), 0);
    }
}
